#!/usr/bin/env bash
# Full local gate: formatting, lints, build, tests, schedule verification.
# Everything runs offline — the workspace vendors its few external
# dependencies as stub crates under vendor/ (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo test --workspace (HPDR_FORCE_SCALAR=1: scalar kernel dispatch)"
HPDR_FORCE_SCALAR=1 cargo test --workspace --quiet

echo "==> cargo bench --no-run (compile gate)"
cargo bench --workspace --no-run --quiet

echo "==> hpdr verify"
cargo run --release -p hpdr --bin hpdr -- verify

echo "==> hpdr audit (effect diff + interleaving exploration, schema-valid json)"
cargo run --release -p hpdr --bin hpdr -- audit --json --out target/AUDIT_ci.json \
  > /dev/null
test -s target/AUDIT_ci.json
grep -q '"schema":"hpdr-audit/v1"' target/AUDIT_ci.json
grep -q '"ok":true' target/AUDIT_ci.json

echo "==> loom model checking (pool handoff, shared cells, context cache)"
# Separate target dir: --cfg loom changes every crate's fingerprint and
# would otherwise evict the regular build cache.
CARGO_TARGET_DIR=target/loom RUSTFLAGS="--cfg loom" \
  cargo test -p hpdr-core --test loom --quiet

echo "==> hpdr retrieve (progressive smoke: looser bound fetches strictly less)"
cargo run --release -p hpdr --bin hpdr -- retrieve --side 16 --tolerance 1e-1 \
  --json --out target/RETRIEVE_loose.json > /dev/null
cargo run --release -p hpdr --bin hpdr -- retrieve --side 16 --tolerance 1e-3 \
  --refine 1e-5 --json --out target/RETRIEVE_ci.json > /dev/null
grep -q '"schema":"hpdr-progressive/v1"' target/RETRIEVE_ci.json
grep -q '"refine":{' target/RETRIEVE_ci.json
# The command itself asserts measured error <= tolerance and the
# zero-re-fetch refine guarantee; here assert the multi-fidelity
# economics: the loose bound must fetch strictly fewer bytes.
loose=$(sed 's/.*"fetched_bytes":\([0-9]*\).*/\1/' target/RETRIEVE_loose.json)
tight=$(sed 's/.*"fetched_bytes":\([0-9]*\).*/\1/' target/RETRIEVE_ci.json)
test "$loose" -lt "$tight"

echo "==> hpdr profile (trace smoke: non-empty trace, utilization in (0,1])"
cargo run --release -p hpdr --bin hpdr -- profile | tail -n 1 | grep -q "invariants ok"
cargo run --release -p hpdr --bin hpdr -- profile --figure fig1

echo "==> hpdr bench --quick (wall-clock smoke: schema-valid BENCH json)"
cargo run --release -p hpdr --bin hpdr -- bench --quick --json --label ci \
  --out target/BENCH_ci.json > /dev/null
test -s target/BENCH_ci.json
grep -q '"schema":"hpdr-bench/v2"' target/BENCH_ci.json
grep -q '"simd":"' target/BENCH_ci.json

echo "==> hpdr loadgen --quick (serving smoke: schema-valid latency report)"
cargo run --release -p hpdr --bin hpdr -- loadgen --quick --json \
  --out target/LOADGEN_ci.json > /dev/null
test -s target/LOADGEN_ci.json
grep -q '"schema": "hpdr-loadgen/v1"' target/LOADGEN_ci.json

echo "==> hpdr loadgen --metrics (scrape determinism: two runs, byte-identical)"
cargo run --release -p hpdr --bin hpdr -- loadgen --quick --seed 7 --metrics \
  --out target/LOADGEN_m1.json --expo target/METRICS_1.prom > /dev/null
cargo run --release -p hpdr --bin hpdr -- loadgen --quick --seed 7 --metrics \
  --out target/LOADGEN_m2.json --expo target/METRICS_2.prom > /dev/null
cmp target/LOADGEN_m1.json target/LOADGEN_m2.json
cmp target/METRICS_1.prom target/METRICS_2.prom
grep -q '"schema": "hpdr-metrics/v1"' target/LOADGEN_m1.json
grep -q '# TYPE serve_queue_jobs gauge' target/METRICS_1.prom

echo "==> hpdr cluster --quick (sharded serving: deterministic, zero lost jobs)"
# The command itself validates the hpdr-shard/v1 report and exits
# non-zero on any lost job; here additionally pin byte-determinism
# across two same-seed runs and the failure-injection zero-loss case.
cargo run --release -p hpdr --bin hpdr -- cluster --quick --json \
  --out target/CLUSTER_ci.json --flight-out target/FLIGHT_ci.json > /dev/null
test -s target/CLUSTER_ci.json
grep -q '"schema":"hpdr-shard/v1"' target/CLUSTER_ci.json
grep -q '"lost": 0' target/CLUSTER_ci.json
test -s target/FLIGHT_ci.json
grep -q '"schema":"hpdr-flight/v1"' target/FLIGHT_ci.json
cargo run --release -p hpdr --bin hpdr -- cluster --quick --json \
  --out target/CLUSTER_ci2.json --flight-out target/FLIGHT_ci2.json > /dev/null
cmp target/CLUSTER_ci.json target/CLUSTER_ci2.json
cmp target/FLIGHT_ci.json target/FLIGHT_ci2.json
cargo run --release -p hpdr --bin hpdr -- cluster --quick \
  --fail-node 0@125000 --json --out target/CLUSTER_fail.json \
  --flight-out target/FLIGHT_fail.json > /dev/null
grep -q '"lost": 0' target/CLUSTER_fail.json
grep -q '"rerouted"' target/CLUSTER_fail.json
# The dead node's ring buffer must surface as the black-box dump.
grep -q '"blackbox": {"shard":0,' target/FLIGHT_fail.json

echo "==> hpdr explain (latency root-cause smoke over the cluster report)"
# Plain grep (not -q): -q closes the pipe at first match and the tool's
# remaining prints die with SIGPIPE under pipefail.
cargo run --release -p hpdr --bin hpdr -- explain --report target/CLUSTER_ci.json \
  --worst 3 | grep "flight report:" > /dev/null

echo "==> hpdr slo --report (per-tenant SLO attainment from the metered run)"
# Plain grep (not -q): -q closes the pipe at first match and the tool's
# remaining prints die with SIGPIPE under pipefail.
cargo run --release -p hpdr --bin hpdr -- slo --report target/LOADGEN_m1.json \
  | grep "latency target" > /dev/null

echo "==> hpdr bench --compare (paired metering + flight overhead within 2%)"
# Row threshold is deliberately loose: cross-run quick-bench wall-clock
# noise reaches ~30% on a loaded machine, so per-codec throughput rows
# only catch order-of-magnitude regressions here. The real contract is
# the *paired* gates built into compare (2% ceiling on the candidate's
# serve-metering and flight-recorder overheads), which are measured
# within one process and are immune to that noise.
cargo run --release -p hpdr --bin hpdr -- bench --compare \
  BENCH_baseline.json target/BENCH_ci.json --threshold 0.5

echo "==> hpdr bench --compare (committed scalar baseline vs committed SIMD run)"
# Both documents are committed artifacts recorded back-to-back on one
# host (baseline under HPDR_FORCE_SCALAR=1), so a tight 5% gate holds:
# any regression here means the checked-in numbers themselves moved.
cargo run --release -p hpdr --bin hpdr -- bench --compare \
  BENCH_baseline.json BENCH_simd.json --threshold 0.05

echo "All checks passed."
