#!/usr/bin/env bash
# Record the committed bench artifact pair:
#   BENCH_baseline.json — scalar kernels (HPDR_FORCE_SCALAR=1)
#   BENCH_simd.json     — auto-dispatched SIMD kernels
#
# A single `hpdr bench` process is a noisy sample: per-process memory
# layout, pool-thread placement, and host bandwidth state shift whole
# documents by 5-20% run to run (measurably — two *identical* scalar
# runs on the reference host disagree beyond 5% on a dozen rows).
# Wall-clock noise is strictly additive, so the same minimum-estimator
# argument that picks best-of-N reps inside one run extends across
# runs: each committed document is the per-row best over $RUNS full
# invocations, applied identically to both sides. ASLR is disabled
# (setarch -R) so every invocation samples the same code/heap layout.
#
# The pair is then checked with the 5% compare gate that check.sh
# enforces on the committed files.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-4}"
EXTRA_FLAGS="${EXTRA_FLAGS:-}"

cargo build --release -p hpdr --quiet

# Merge N bench documents: per (codec, adapter, side, threads) row keep
# each direction's best (max GB/s) measurement; header sections come
# from the run with the lowest paired metering-overhead estimate.
merge() {
  jq -c -s '
    (map(.serve_overhead.overhead) | min) as $mo
    | (map(select(.serve_overhead.overhead == $mo)) | .[0]) as $base
    | (map(.results[])
       | group_by([.codec, .adapter, .side, .threads])
       | map((max_by(.compress.gbps).compress) as $c
             | (max_by(.decompress.gbps).decompress) as $d
             | (.[0] | .compress = $c | .decompress = $d))) as $rows
    | $base | .results = $rows
  ' "$@"
}

record() { # record <label> <out> [env...]
  local label="$1" out="$2"; shift 2
  local parts=()
  for i in $(seq 1 "$RUNS"); do
    local part="target/BENCH_${label}_run${i}.json"
    env "$@" setarch -R ./target/release/hpdr bench --json \
      --label "$label" --out "$part" $EXTRA_FLAGS > /dev/null
    parts+=("$part")
    echo "  $label run $i/$RUNS done"
  done
  merge "${parts[@]}" > "$out"
}

echo "==> recording scalar baseline ($RUNS runs)"
record baseline BENCH_baseline.json HPDR_FORCE_SCALAR=1

echo "==> recording simd ($RUNS runs)"
record simd BENCH_simd.json

echo "==> gate: committed pair within 5%"
./target/release/hpdr bench --compare BENCH_baseline.json BENCH_simd.json \
  --threshold 0.05
