//! Portability walk-through: one array is compressed on each of the five
//! processors the paper evaluates (two CPUs + simulated V100, A100,
//! MI250X) and every stream is reconstructed on every *other* processor.
//! All twenty-five combinations must agree bit-for-bit — the property
//! that lets data written at one facility be read at any other.
//!
//! ```text
//! cargo run --release -p examples-bin --bin portability
//! ```

use hpdr::{Codec, MgardConfig};
use hpdr_core::{
    ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, GpuSimAdapter, SerialAdapter,
};

fn main() {
    let field = hpdr::data::nyx_density(48, 123);
    let meta = ArrayMeta::new(DType::F32, field.shape.clone());
    let codec = Codec::Mgard(MgardConfig::relative(1e-3));
    println!(
        "compressing NYX {} with {} on five processors...\n",
        field.shape,
        codec.name()
    );

    let adapters: Vec<(&str, Box<dyn DeviceAdapter>)> = vec![
        ("serial-cpu", Box::new(SerialAdapter::new())),
        ("openmp-cpu", Box::new(CpuParallelAdapter::with_defaults())),
        (
            "cuda V100",
            Box::new(GpuSimAdapter::new(hpdr::sim::spec::v100())),
        ),
        (
            "cuda A100",
            Box::new(GpuSimAdapter::new(hpdr::sim::spec::a100())),
        ),
        (
            "hip MI250X",
            Box::new(GpuSimAdapter::new(hpdr::sim::spec::mi250x())),
        ),
    ];

    // Compress everywhere.
    let mut streams = Vec::new();
    for (name, adapter) in &adapters {
        let (stream, stats) =
            hpdr::compress(adapter.as_ref(), &field.bytes, &meta, codec).expect("compress");
        println!(
            "  {name:<11} -> {} bytes (ratio {:.1}x)",
            stream.len(),
            stats.ratio
        );
        streams.push(stream);
    }
    let identical = streams.windows(2).all(|w| w[0] == w[1]);
    println!("\nall five compressed streams bit-identical: {identical}");
    assert!(identical);

    // Decompress the first stream everywhere.
    let mut outputs = Vec::new();
    for (name, adapter) in &adapters {
        let (bytes, _) = hpdr::decompress(adapter.as_ref(), &streams[0]).expect("decompress");
        println!("  reconstructed on {name:<11}: {} bytes", bytes.len());
        outputs.push(bytes);
    }
    let identical = outputs.windows(2).all(|w| w[0] == w[1]);
    println!("all five reconstructions bit-identical: {identical}");
    assert!(identical);
    println!("\nportability verified: 5 producers x 5 consumers, one answer");
}
