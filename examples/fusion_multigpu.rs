//! Fusion-simulation scenario: XGC-like 4D distribution data reduced on a
//! dense multi-GPU node (a Summit node: 6 × V100 sharing one runtime),
//! showing why the Context Memory Model is what makes dense nodes scale
//! (paper §III-B / Fig. 16).
//!
//! ```text
//! cargo run --release -p examples-bin --bin fusion_multigpu
//! ```

use hpdr::{Codec, CpuParallelAdapter, MgardConfig, PipelineOptions};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter};
use hpdr_pipeline::{average_scalability, scalability_sweep};
use std::sync::Arc;

fn main() {
    // One poloidal-plane slab of XGC-like e_f data per GPU.
    let field = hpdr::data::xgc_ef(96, 7);
    let meta = ArrayMeta::new(DType::F64, field.shape.clone());
    let input = Arc::new(field.bytes.clone());
    println!(
        "XGC e_f slab per GPU: {} f64 ({:.1} MB)",
        field.shape,
        input.len() as f64 / 1e6
    );

    let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::with_defaults());
    let reducer = Codec::Mgard(MgardConfig::relative(1e-4)).reducer();
    let spec = hpdr::sim::spec::v100();
    let opts = PipelineOptions::fixed(2 << 20);

    for (label, opts) in [
        ("HPDR (context memory model ON)", opts),
        (
            "per-call allocation (CMM OFF)",
            PipelineOptions { cmm: false, ..opts },
        ),
    ] {
        let mk = || Arc::clone(&input);
        let sweep = scalability_sweep(
            &spec,
            6,
            Arc::clone(&work),
            Arc::clone(&reducer),
            mk,
            &meta,
            &opts,
        )
        .expect("sweep");
        println!("\n{label}");
        println!("{:>6} {:>14} {:>12}", "GPUs", "aggregate GB/s", "of ideal");
        for (n, gbps, ratio) in &sweep {
            println!("{n:>6} {gbps:>14.2} {:>11.1}%", ratio * 100.0);
        }
        println!(
            "average scalability: {:.1}%",
            average_scalability(&sweep) * 100.0
        );
    }
    println!(
        "\nAll six GPUs share one runtime; without the CMM every chunk's \
         allocations serialize on the runtime lock, exactly the contention \
         the paper measured on Summit nodes."
    );
}
