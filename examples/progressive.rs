//! Progressive retrieval: refactor an array once, then reconstruct at
//! increasing accuracy by fetching one more level segment at a time —
//! MGARD's "data refactoring" usage (paper intro, refs [23]–[25]).
//!
//! Also dumps a Chrome-trace JSON of an adaptive pipeline run so the
//! virtual-time schedule can be inspected in chrome://tracing.
//!
//! ```text
//! cargo run --release -p examples-bin --bin progressive
//! ```

use hpdr::mgard::{refactor, retrieve, RefactorConfig};
use hpdr::{Codec, CpuParallelAdapter, MgardConfig, PipelineOptions};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter};
use std::sync::Arc;

fn main() {
    let adapter = CpuParallelAdapter::with_defaults();
    let dataset = hpdr::data::nyx_density(48, 7);
    let values = dataset.as_f32();
    println!(
        "refactoring {} {} ({:.1} MB raw)...\n",
        dataset.name,
        dataset.shape,
        dataset.num_bytes() as f64 / 1e6
    );

    let refactored = refactor(
        &adapter,
        &values,
        &dataset.shape,
        &RefactorConfig {
            rel_bound: 1e-5,
            dict_size: 8192,
        },
    )
    .expect("refactor");

    println!(
        "{:>7} {:>12} {:>14} {:>12}",
        "levels", "bytes read", "of raw", "max error"
    );
    for k in 0..refactored.levels {
        let (approx, _) = retrieve::<f32>(&adapter, &refactored, k).expect("retrieve");
        let err = values
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let bytes = refactored.bytes_up_to(k);
        println!(
            "{:>4}/{:<2} {:>12} {:>13.1}% {:>12.3e}",
            k + 1,
            refactored.levels,
            bytes,
            bytes as f64 / dataset.num_bytes() as f64 * 100.0,
            err
        );
    }
    println!("\neach added level refines the reconstruction; the full set meets the bound.");

    // Bonus: trace an adaptive pipeline run for chrome://tracing.
    let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::with_defaults());
    let meta = ArrayMeta::new(DType::F32, dataset.shape.clone());
    let (_, report) = hpdr_pipeline::compress_pipelined(
        &hpdr::sim::spec::v100(),
        work,
        Codec::Mgard(MgardConfig::relative(1e-2)).reducer(),
        Arc::new(dataset.bytes.clone()),
        &meta,
        &PipelineOptions::fixed(256 * 1024),
    )
    .expect("pipeline");
    let path = std::env::temp_dir().join("hpdr-pipeline-trace.json");
    std::fs::write(&path, report.timeline.to_chrome_trace()).expect("write trace");
    println!(
        "\npipeline schedule ({} ops, makespan {}) written to {} — open in chrome://tracing",
        report.timeline.len(),
        report.makespan,
        path.display()
    );
}
