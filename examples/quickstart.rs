//! Quickstart: compress a cosmology density field with every built-in
//! reduction pipeline and print what you get.
//!
//! ```text
//! cargo run --release -p examples-bin --bin quickstart
//! ```

use hpdr::{Codec, CpuParallelAdapter, MgardConfig, SzConfig, ZfpConfig};
use hpdr_core::{DeviceAdapter, Float};

fn main() {
    // A 64^3 synthetic NYX-like baryon density field (Table III analogue).
    let dataset = hpdr::data::nyx_density(64, 42);
    let values = dataset.as_f32();
    println!(
        "dataset: {} / {} — {} ({} values, {:.1} MB)",
        dataset.name,
        dataset.field,
        dataset.shape,
        values.len(),
        dataset.num_bytes() as f64 / 1e6
    );

    let adapter = CpuParallelAdapter::with_defaults();
    println!(
        "adapter: {} ({} threads)\n",
        adapter.info().device,
        adapter.info().threads
    );

    println!(
        "{:<18} {:>12} {:>9} {:>12} {:>10}",
        "codec", "bytes", "ratio", "max err", "lossless"
    );
    for codec in [
        Codec::Mgard(MgardConfig::relative(1e-2)),
        Codec::Mgard(MgardConfig::relative(1e-4)),
        Codec::Zfp(ZfpConfig::fixed_rate(8)),
        Codec::Sz(SzConfig::relative(1e-2)),
        Codec::Huffman,
        Codec::Lz4,
    ] {
        let (stream, stats) =
            hpdr::compress_slice(&adapter, &values, &dataset.shape, codec).expect("compress");
        let (restored, _) = hpdr::decompress_slice::<f32>(&adapter, &stream).expect("decompress");
        let max_err = values
            .iter()
            .zip(&restored)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{:<18} {:>12} {:>8.1}x {:>12.3e} {:>10}",
            stats.codec,
            stats.compressed_bytes,
            stats.ratio,
            max_err,
            codec.reducer().is_lossless()
        );
        // Demonstrate portability: the same stream decodes on a simulated
        // MI250X (HIP) device to the identical bytes.
        let hip = hpdr::GpuSimAdapter::new(hpdr::sim::spec::mi250x());
        let (on_gpu, _) = hpdr::decompress_slice::<f32>(&hip, &stream).expect("gpu decompress");
        assert_eq!(f32::slice_to_bytes(&on_gpu), f32::slice_to_bytes(&restored));
    }
    println!("\nevery stream verified bit-identical when decoded on a simulated AMD GPU");
}
