//! Climate-analysis I/O scenario: an E3SM-like pressure variable is
//! reduced with MGARD-X through the adaptive HDEM pipeline on a simulated
//! A100, written to a BP5-like dataset, then read back and reconstructed
//! — the paper's ADIOS2 integration at example scale.
//!
//! ```text
//! cargo run --release -p examples-bin --bin climate_io
//! ```

use hpdr::{Codec, CpuParallelAdapter, MgardConfig, PipelineOptions};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter, Float};
use hpdr_io::{BpReader, BpWriter};
use hpdr_pipeline::{compress_pipelined, Container, PipelineMode};
use std::sync::Arc;

fn main() {
    let out_dir = std::env::temp_dir().join("hpdr-climate-example.bp");
    let _ = std::fs::remove_dir_all(&out_dir);

    // Three "simulation steps" of an E3SM-like PSL field.
    let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::with_defaults());
    let reducer = Codec::Mgard(MgardConfig::relative(1e-3)).reducer();
    let spec = hpdr::sim::spec::a100();
    let opts = PipelineOptions {
        mode: PipelineMode::Adaptive {
            init_bytes: 64 * 1024,
            limit_bytes: 8 << 20,
        },
        ..Default::default()
    };

    let mut writer = BpWriter::create(&out_dir, 2).expect("create dataset");
    let mut originals = Vec::new();
    for step in 0..3u64 {
        let field = hpdr::data::e3sm_psl(16, 48, 96, 100 + step);
        let meta = ArrayMeta::new(DType::F32, field.shape.clone());
        let (container, report) = compress_pipelined(
            &spec,
            Arc::clone(&work),
            Arc::clone(&reducer),
            Arc::new(field.bytes.clone()),
            &meta,
            &opts,
        )
        .expect("pipeline");
        println!(
            "step {step}: {:>6.1} MB -> {:>6.2} MB in {} virtual ({:.1} GB/s end-to-end, \
             overlap {:.0}%, {} chunks)",
            report.input_bytes as f64 / 1e6,
            report.compressed_bytes as f64 / 1e6,
            report.makespan,
            report.end_to_end_gbps,
            report.overlap.unwrap_or(0.0) * 100.0,
            report.num_chunks,
        );
        writer.begin_step();
        writer
            .put("PSL", &meta, &container.to_bytes(), "hpdr-container")
            .expect("put");
        writer.end_step().expect("end step");
        originals.push(field);
    }
    writer.close().expect("close");

    // Read back and verify the error bound against each original.
    let reader = BpReader::open(&out_dir).expect("open dataset");
    println!("\nreading {} steps back:", reader.num_steps());
    for (step, field) in originals.iter().enumerate() {
        let block = &reader.blocks(step, "PSL").expect("blocks")[0];
        let payload = reader.read_block(block).expect("read");
        let container = Container::from_bytes(&payload).expect("container");
        let dec_reducer = hpdr::reducer_by_name(&container.reducer).expect("codec");
        let (bytes, _, _) = hpdr_pipeline::decompress_pipelined(
            &spec,
            Arc::clone(&work),
            dec_reducer,
            &container,
            &opts,
        )
        .expect("reconstruct");
        let orig = field.as_f32();
        let out = f32::bytes_to_vec(&bytes);
        let range = {
            let mx = orig.iter().cloned().fold(f32::MIN, f32::max);
            let mn = orig.iter().cloned().fold(f32::MAX, f32::min);
            mx - mn
        };
        let err = orig
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "step {step}: max error {:.3} Pa of {:.0} Pa range (bound {:.3})",
            err,
            range,
            1e-3 * range
        );
        assert!(err <= 1e-3 * range * 1.001, "error bound violated");
    }
    println!("\ndataset at {}", out_dir.display());
}
