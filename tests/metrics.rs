//! Integration tests for the metrics layer (`hpdr-metrics`) wired
//! through the serving stack: histogram merge accuracy, scrape
//! determinism end-to-end through loadgen, injected SLO burn-rate
//! breaches, span hygiene at admission, and `job_span_stats` edge
//! cases.

use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, Shape};
use hpdr_metrics::{
    bucket_width, exact_quantile, validate_metrics_json, MetricsConfig, SloConfig,
    StreamingHistogram,
};
use hpdr_serve::{
    run_loadgen, serve, validate_loadgen_json, validate_serve_json, AdmissionConfig, JobPayload,
    JobRequest, LoadgenOptions, PayloadCache, Policy, Scheduler, ServeCodec, ServeConfig,
    ServeError, ServeReport, TenantId, VecSource,
};
use hpdr_sim::{Ns, Trace};
use hpdr_trace::job_span_stats;
use proptest::prelude::*;
use std::sync::Arc;

fn work() -> Arc<dyn DeviceAdapter> {
    Arc::new(CpuParallelAdapter::with_defaults())
}

fn compress_job(cache: &mut PayloadCache, tenant: u32, arrival_us: u64, side: usize) -> JobRequest {
    let (input, meta) = cache.input(side);
    JobRequest::new(
        TenantId(tenant),
        Ns::from_micros(arrival_us),
        ServeCodec::Zfp { rate: 16 },
        JobPayload::Compress { input, meta },
    )
}

// ---------------------------------------------------------------- merge

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two sketches is lossless (bucket-wise sum), so the
    /// merged quantile stays within the same one-bucket (~3.1%) error
    /// bound as a single sketch fed every sample.
    #[test]
    fn merged_histogram_quantiles_stay_within_sketch_bound(
        a in proptest::collection::vec(0u64..3_000_000, 1..300),
        b in proptest::collection::vec(0u64..3_000_000, 0..300),
        q in 0.01f64..1.0,
    ) {
        let mut ha = StreamingHistogram::new();
        for &s in &a {
            ha.record(s);
        }
        let mut hb = StreamingHistogram::new();
        for &s in &b {
            hb.record(s);
        }
        ha.merge(&hb);

        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        let exact = exact_quantile(&all, q);
        let approx = ha.quantile(q);
        prop_assert!(approx >= exact, "merged sketch went below exact: {approx} < {exact}");
        prop_assert!(
            approx - exact < bucket_width(exact).max(1),
            "q={q}: merged sketch {approx} vs exact {exact} (width {})",
            bucket_width(exact)
        );

        // Lossless: merged sketch is indistinguishable from one sketch
        // that recorded everything.
        let mut one = StreamingHistogram::new();
        for &s in &all {
            one.record(s);
        }
        prop_assert_eq!(ha.quantile(q), one.quantile(q));
        prop_assert_eq!(ha.count(), all.len() as u64);
        prop_assert_eq!(ha.max(), one.max());
        prop_assert_eq!(ha.sum(), one.sum());
    }
}

// ---------------------------------------------------------- determinism

/// The ISSUE acceptance run: two metered loadgen runs with the same
/// seed produce byte-identical scrape series, exposition text, and
/// embedded report JSON.
#[test]
fn metered_loadgen_scrapes_are_byte_identical_across_runs() {
    let opts = LoadgenOptions {
        seed: 7,
        metrics: true,
        ..LoadgenOptions::quick()
    };
    let a = run_loadgen(opts).expect("metered loadgen runs");
    let b = run_loadgen(opts).expect("metered loadgen runs again");
    let ra = a.serve.metrics.as_ref().expect("registry installed");
    let rb = b.serve.metrics.as_ref().expect("registry installed");
    assert!(
        ra.scrape_count() > 1,
        "virtual clock crossed scrape boundaries"
    );
    assert_eq!(
        ra.to_json(),
        rb.to_json(),
        "metrics JSON must be reproducible"
    );
    assert_eq!(
        ra.exposition(),
        rb.exposition(),
        "exposition must be reproducible"
    );
    validate_metrics_json(&ra.to_json()).expect("schema-valid metrics document");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "whole metered report is reproducible"
    );
    validate_loadgen_json(&a.to_json()).expect("schema-valid loadgen report");

    // Key serving instruments actually got wired (counters carry a
    // tenant or device label, gauges like queue depth are bare).
    let names: Vec<&str> = ra.series_names().collect();
    for family in [
        "serve_submitted_total{",
        "serve_admitted_total{",
        "serve_device_busy_fraction{",
        "serve_queue_jobs",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(family)),
            "missing series for {family}: {names:?}"
        );
    }
}

/// Installing the registry must not change what the scheduler does —
/// only observe it. Job accounting is identical with metrics on or off.
#[test]
fn metrics_are_observational_only() {
    let base = LoadgenOptions {
        seed: 13,
        ..LoadgenOptions::quick()
    };
    let off = run_loadgen(base).expect("plain run");
    let on = run_loadgen(LoadgenOptions {
        metrics: true,
        ..base
    })
    .expect("metered run");
    assert_eq!(off.serve.admitted, on.serve.admitted);
    assert_eq!(off.serve.completed, on.serve.completed);
    assert_eq!(off.serve.rejected, on.serve.rejected);
    assert_eq!(off.serve.latency.p99, on.serve.latency.p99);
    assert!(off.serve.metrics.is_none());
    assert!(on.serve.metrics.is_some());
}

// ------------------------------------------------------------ SLO burn

/// An unattainable 1 ns latency target makes every job "bad", driving
/// the burn rate to 1/(1−goal) — far past the alert threshold. The
/// breach must fire alerts, show up in attainment, and land in the
/// trace as `slo-breach[...]` spans.
#[test]
fn injected_slo_breach_fires_alerts_into_the_trace() {
    let mut cache = PayloadCache::new();
    let jobs: Vec<JobRequest> = (0..8)
        .map(|i| compress_job(&mut cache, (i % 2) as u32, i * 100, 16))
        .collect();
    let cfg = ServeConfig {
        metrics: Some(MetricsConfig {
            slo: Some(SloConfig {
                latency_target: Ns(1),
                ..SloConfig::default()
            }),
            ..MetricsConfig::default()
        }),
        ..ServeConfig::default()
    };
    let mut source = VecSource::new(jobs);
    let outcome = serve(cfg, work(), &mut source);
    let reg = outcome.metrics.as_ref().expect("registry installed");
    let slo = reg.slo().expect("tracker configured");

    assert!(!slo.alerts().is_empty(), "1 ns target must breach");
    let attainment = slo.attainment();
    assert_eq!(attainment.len(), 2, "both tenants tracked");
    for row in &attainment {
        assert_eq!(row.good, 0, "no job can meet a 1 ns target");
        assert!(row.total > 0);
        assert_eq!(row.attainment, 0.0);
    }
    assert!(
        outcome
            .trace
            .spans()
            .iter()
            .any(|s| s.label.starts_with("slo-breach[")),
        "burn-rate alerts must be recorded as trace spans"
    );
    validate_metrics_json(&reg.to_json()).expect("valid metrics document");

    // The report embeds the registry and still balances.
    let report = ServeReport::build(Policy::Batched, outcome);
    assert!(report.metrics.is_some());
    validate_serve_json(&report.to_json()).expect("valid serve report");
}

// --------------------------------------------------------- span hygiene

/// Regression: invalid submissions, backpressure rejections and
/// queued cancellations must all leave balanced spans — no admitted
/// job's Begin may survive without its matching End.
#[test]
fn every_begin_span_gets_a_matching_end() {
    let mut cache = PayloadCache::new();
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_queued_jobs: 2,
            max_queued_bytes: 1 << 30,
        },
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(cfg, work());
    sched
        .try_submit(compress_job(&mut cache, 0, 0, 8))
        .expect("first job admitted");
    let mut cancelled = compress_job(&mut cache, 1, 0, 8);
    cancelled.cancel_at = Some(Ns::ZERO); // client gives up while queued
    sched.try_submit(cancelled).expect("second job admitted");
    // Queue is full: typed backpressure rejection.
    assert!(sched.try_submit(compress_job(&mut cache, 2, 0, 8)).is_err());
    // Malformed: empty payload is rejected at admission.
    let invalid = JobRequest::new(
        TenantId(3),
        Ns::ZERO,
        ServeCodec::Lz4,
        JobPayload::Compress {
            input: Arc::new(Vec::new()),
            meta: ArrayMeta::new(DType::F32, Shape::new(&[16])),
        },
    );
    assert!(matches!(
        sched.try_submit(invalid),
        Err(ServeError::InvalidJob(_))
    ));

    let mut empty = VecSource::new(Vec::new());
    let outcome = sched.run(&mut empty);
    let stats = job_span_stats(&outcome.trace);
    assert_eq!(stats.open, 0, "unmatched Begin span leaked");
    assert_eq!(
        stats.rejected, 2,
        "backpressure and invalid rejects both leave spans"
    );

    let report = ServeReport::build(Policy::Batched, outcome);
    assert_eq!(report.submitted, 4);
    assert_eq!(report.rejected, 2);
    assert_eq!(report.rejected_invalid, 1);
    assert_eq!(report.completed + report.cancelled, 2);
    validate_serve_json(&report.to_json()).expect("balanced report");
}

// ----------------------------------------------------- span-stats edges

#[test]
fn job_span_stats_handles_empty_trace() {
    let stats = job_span_stats(&Trace::from_spans(Vec::new()));
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.open, 0);
    assert!(stats.latencies.is_empty());
    assert!(stats.waits.is_empty());
}

#[test]
fn job_span_stats_handles_all_cancelled_script() {
    let mut cache = PayloadCache::new();
    let jobs: Vec<JobRequest> = (0..3)
        .map(|t| {
            let mut j = compress_job(&mut cache, t, 0, 8);
            j.cancel_at = Some(Ns::ZERO);
            j
        })
        .collect();
    let mut source = VecSource::new(jobs);
    let outcome = serve(ServeConfig::default(), work(), &mut source);
    assert_eq!(outcome.records.len(), 3);
    let stats = job_span_stats(&outcome.trace);
    assert_eq!(stats.open, 0, "cancelled jobs still close their spans");
    assert!(
        stats.latencies.is_empty(),
        "no completed jobs in an all-cancelled run"
    );
    assert_eq!(stats.rejected, 0);
}

#[test]
fn job_span_stats_handles_single_job_script() {
    let mut cache = PayloadCache::new();
    let mut source = VecSource::new(vec![compress_job(&mut cache, 0, 0, 8)]);
    let outcome = serve(ServeConfig::default(), work(), &mut source);
    let stats = job_span_stats(&outcome.trace);
    assert_eq!(stats.latencies.len(), 1);
    assert_eq!(stats.waits.len(), 1);
    assert_eq!(stats.open, 0);
    assert_eq!(stats.rejected, 0);
    assert!(stats.latencies[0] > 0, "latency is virtual-time derived");
}
