//! Runtime-correctness tests for the persistent worker pool underneath
//! the adapters: serial ≡ parallel byte-equivalence for the full ZFP-X
//! and MGARD-X paths on arbitrary inputs, and a reuse/stress test that
//! hammers the shared global pool with many small GEM/DEM stages from
//! several host threads and adapters at once.

use hpdr::{Codec, MgardConfig, ZfpConfig};
use hpdr_core::{
    CpuParallelAdapter, DeviceAdapter, GpuSimAdapter, ScratchPolicy, SerialAdapter, Shape,
    WorkerPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn field(dims: &[usize], vals: &[i32]) -> (Shape, Vec<f32>) {
    let shape = Shape::new(dims);
    let n = shape.num_elements();
    let data = (0..n).map(|i| vals[i % vals.len()] as f32 * 0.25).collect();
    (shape, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full ZFP-X path: compressing on the pool-backed parallel adapter
    /// must produce the exact bytes of the serial reference, and both
    /// streams must reconstruct to the exact same values.
    #[test]
    fn zfp_parallel_stream_is_byte_identical_to_serial(
        a in 1usize..10, b in 1usize..10, c in 1usize..10,
        rate in 4u32..28,
        vals in proptest::collection::vec(-1000i32..1000, 1..64),
    ) {
        let (shape, data) = field(&[a, b, c], &vals);
        let codec = Codec::Zfp(ZfpConfig::fixed_rate(rate));
        let serial = SerialAdapter::new();
        let par = CpuParallelAdapter::new(4);
        let (s1, _) = hpdr::compress_slice(&serial, &data, &shape, codec).unwrap();
        let (s2, _) = hpdr::compress_slice(&par, &data, &shape, codec).unwrap();
        prop_assert_eq!(&s1, &s2, "zfp-x compress differs serial vs pool");
        let (d1, _) = hpdr::decompress_slice::<f32>(&serial, &s1).unwrap();
        let (d2, _) = hpdr::decompress_slice::<f32>(&par, &s1).unwrap();
        prop_assert_eq!(
            d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "zfp-x decompress differs serial vs pool"
        );
    }

    /// Full MGARD-X path (decompose → quantize → Huffman → container),
    /// same bit-identity requirement.
    #[test]
    fn mgard_parallel_stream_is_byte_identical_to_serial(
        a in 1usize..10, b in 1usize..10, c in 1usize..10,
        vals in proptest::collection::vec(-1000i32..1000, 1..64),
    ) {
        let (shape, data) = field(&[a, b, c], &vals);
        let codec = Codec::Mgard(MgardConfig::relative(1e-3));
        let serial = SerialAdapter::new();
        let par = CpuParallelAdapter::new(4);
        let (s1, _) = hpdr::compress_slice(&serial, &data, &shape, codec).unwrap();
        let (s2, _) = hpdr::compress_slice(&par, &data, &shape, codec).unwrap();
        prop_assert_eq!(&s1, &s2, "mgard-x compress differs serial vs pool");
        let (d1, _) = hpdr::decompress_slice::<f32>(&serial, &s1).unwrap();
        let (d2, _) = hpdr::decompress_slice::<f32>(&par, &s1).unwrap();
        prop_assert_eq!(
            d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "mgard-x decompress differs serial vs pool"
        );
    }
}

/// Many small GEM/DEM stages from several host threads through several
/// adapters, all draining into the one global pool. Checks (a) every
/// stage computes the right answer under contention, and (b) the pool's
/// scratch arenas are being *reused*, not reallocated per call.
#[test]
fn global_pool_survives_concurrent_small_stages_across_adapters() {
    const THREADS: usize = 4;
    const ITERS: usize = 24;
    const N: usize = 257; // deliberately not a multiple of any grain
    let before = WorkerPool::global().stats();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let adapters: Vec<Box<dyn DeviceAdapter>> = vec![
                    Box::new(CpuParallelAdapter::new(3)),
                    Box::new(CpuParallelAdapter::with_defaults()),
                    Box::new(GpuSimAdapter::new(hpdr_sim::spec::v100())),
                    Box::new(SerialAdapter::new()),
                ];
                for i in 0..ITERS {
                    let adapter = &adapters[(t + i) % adapters.len()];
                    // DEM: sum of indices must be exact every time.
                    let sum = AtomicU64::new(0);
                    adapter
                        .try_dem(N, &|j| {
                            sum.fetch_add(j as u64, Ordering::Relaxed);
                        })
                        .unwrap();
                    assert_eq!(sum.load(Ordering::Relaxed), (N * (N - 1) / 2) as u64);
                    // GEM: zeroed scratch must actually be zero, and
                    // every group must run exactly once.
                    let ran = AtomicU64::new(0);
                    adapter
                        .try_gem(16, 96, ScratchPolicy::Zeroed, &|_, scratch| {
                            assert!(scratch.iter().all(|&x| x == 0), "dirty zeroed scratch");
                            scratch.fill(0xAB);
                            ran.fetch_add(1, Ordering::Relaxed);
                        })
                        .unwrap();
                    assert_eq!(ran.load(Ordering::Relaxed), 16);
                }
            });
        }
    });
    let delta = WorkerPool::global().stats().since(before);
    // Parallel adapters route through the pool: 2 of 4 adapters per
    // thread-iteration are pool-backed, 2 stages each.
    assert!(
        delta.jobs >= (THREADS * ITERS) as u64,
        "pool barely used: {delta:?}"
    );
    // The whole point of the persistent arenas: after warmup, scratch is
    // reused rather than reallocated. Same-size requests must overwhelmingly
    // hit the reuse path.
    assert!(
        delta.scratch_reuses > delta.scratch_allocs,
        "scratch arenas not persistent: {delta:?}"
    );
}

/// Concurrent *full-codec* runs: the same MGARD-X compression from many
/// threads at once must every time match the bytes of an undisturbed
/// serial run.
#[test]
fn concurrent_codec_runs_stay_byte_identical() {
    let d = hpdr_data::nyx_density(12, 3);
    let meta = hpdr_core::ArrayMeta::new(hpdr_core::DType::F32, d.shape.clone());
    let codec = Codec::Mgard(MgardConfig::relative(1e-3));
    let (reference, _) = hpdr::compress(&SerialAdapter::new(), &d.bytes, &meta, codec).unwrap();
    std::thread::scope(|s| {
        for _ in 0..6 {
            let (reference, d, meta) = (&reference, &d, &meta);
            s.spawn(move || {
                let par = CpuParallelAdapter::with_defaults();
                for _ in 0..4 {
                    let (stream, _) = hpdr::compress(&par, &d.bytes, meta, codec).unwrap();
                    assert_eq!(&stream, reference, "contended run diverged from serial");
                    let (bytes, _) = hpdr::decompress(&par, &stream).unwrap();
                    assert_eq!(bytes.len(), d.bytes.len());
                }
            });
        }
    });
}
