//! Failure injection: corrupted, truncated and mismatched inputs must
//! produce `Err`, never panics or wrong silent output — and a cluster
//! node dying mid-run must never lose a non-cancelled job.

use hpdr::{Codec, MgardConfig, SzConfig, ZfpConfig};
use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, SerialAdapter};
use hpdr_data::nyx_density;
use hpdr_pipeline::Container;

fn codecs() -> Vec<Codec> {
    vec![
        Codec::Mgard(MgardConfig::relative(1e-2)),
        Codec::Zfp(ZfpConfig::fixed_rate(16)),
        Codec::Huffman,
        Codec::Sz(SzConfig::relative(1e-2)),
        Codec::Lz4,
    ]
}

#[test]
fn truncations_at_every_eighth_are_errors() {
    let adapter = SerialAdapter::new();
    let d = nyx_density(12, 2);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    for codec in codecs() {
        let (stream, _) = hpdr::compress(&adapter, &d.bytes, &meta, codec).unwrap();
        for i in 0..8 {
            let cut = stream.len() * i / 8;
            let r = hpdr::decompress(&adapter, &stream[..cut]);
            assert!(r.is_err(), "{} survived truncation to {cut}", codec.name());
        }
    }
}

#[test]
fn single_byte_flips_never_panic() {
    let adapter = SerialAdapter::new();
    let d = nyx_density(8, 4);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    for codec in codecs() {
        let (stream, _) = hpdr::compress(&adapter, &d.bytes, &meta, codec).unwrap();
        // Flip a byte at a sweep of positions; decoding may fail (Err) or
        // produce garbage data, but must not panic.
        let step = (stream.len() / 37).max(1);
        for pos in (0..stream.len()).step_by(step) {
            let mut bad = stream.clone();
            bad[pos] ^= 0x5A;
            let _ = hpdr::decompress(&adapter, &bad);
        }
    }
}

#[test]
fn header_field_corruptions_detected() {
    let adapter = SerialAdapter::new();
    let d = nyx_density(8, 4);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    let (stream, _) = hpdr::compress(
        &adapter,
        &d.bytes,
        &meta,
        Codec::Mgard(MgardConfig::relative(1e-2)),
    )
    .unwrap();
    // Rank byte (offset 6): implausible ranks must be rejected.
    let mut bad = stream.clone();
    bad[6] = 250;
    assert!(hpdr::decompress(&adapter, &bad).is_err());
    // Dtype byte: becomes a dtype mismatch or unknown tag.
    let mut bad = stream.clone();
    bad[5] = 9;
    assert!(hpdr::decompress(&adapter, &bad).is_err());
}

#[test]
fn container_row_or_stream_corruption_rejected() {
    let adapter = CpuParallelAdapter::new(2);
    let d = nyx_density(16, 6);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let (c, _) = hpdr_pipeline::compress_pipelined(
        &hpdr_sim::spec::v100(),
        std::sync::Arc::new(CpuParallelAdapter::new(2)),
        reducer.clone(),
        std::sync::Arc::new(d.bytes.clone()),
        &meta,
        &hpdr_pipeline::PipelineOptions::fixed(16 * 1024),
    )
    .unwrap();
    let bytes = c.to_bytes();
    // Truncated container.
    for cut in [0, 8, bytes.len() / 3, bytes.len() - 1] {
        assert!(Container::from_bytes(&bytes[..cut]).is_err());
    }
    // Rows that do not cover the leading dimension.
    let mut broken = c.clone();
    broken.chunks[0].0 += 1;
    assert!(Container::from_bytes(&broken.to_bytes()).is_err());
    // A corrupted chunk stream fails on decompression.
    let mut broken = c.clone();
    let s = &mut broken.chunks[0].1;
    let mid = s.len() / 2;
    s.truncate(mid);
    let r = hpdr_pipeline::decompress_pipelined(
        &hpdr_sim::spec::v100(),
        std::sync::Arc::new(CpuParallelAdapter::new(2)),
        reducer,
        &broken,
        &hpdr_pipeline::PipelineOptions::default(),
    );
    assert!(r.is_err());
    let _ = adapter;
}

#[test]
fn empty_and_garbage_inputs() {
    let adapter = SerialAdapter::new();
    assert!(hpdr::decompress(&adapter, &[]).is_err());
    assert!(hpdr::decompress(&adapter, b"not a stream at all").is_err());
    assert!(Container::from_bytes(b"junk").is_err());
}

#[test]
fn killing_a_cluster_node_mid_run_loses_no_jobs() {
    use hpdr_serve::LoadgenOptions;
    use hpdr_shard::{run_cluster_loadgen, validate_cluster_json, ClusterLoadOptions};

    // Saturate single-device shards so the victim has queued and
    // in-flight work when it dies, then kill shard 0 mid-run: its jobs
    // must re-route to the three survivors and every logically
    // submitted job must still reach a terminal state.
    let opts = ClusterLoadOptions {
        base: LoadgenOptions {
            rps: 65536.0,
            duration_s: 0.1,
            devices: 1,
            ..LoadgenOptions::quick()
        },
        fail: Some((0, hpdr_sim::Ns::from_millis(50))),
        ..ClusterLoadOptions::quick()
    };
    let report = run_cluster_loadgen(&opts).unwrap();
    assert_eq!(report.lost, 0, "node failure lost {} job(s)", report.lost);
    assert!(report.ok());
    assert!(!report.shards[0].alive, "the killed shard must report dead");
    assert!(report.shards.iter().skip(1).all(|s| s.alive));
    // The failure actually hit live work, and every drained survivor
    // was either re-routed or exhausted its retry budget — accounted,
    // never dropped.
    assert!(report.drained > 0, "kill instant must catch in-flight work");
    assert!(report.rerouted > 0);
    assert_eq!(report.rerouted + report.retries_exhausted, report.drained);
    validate_cluster_json(&report.to_json()).unwrap();

    // Determinism holds under failure injection too.
    let again = run_cluster_loadgen(&opts).unwrap();
    assert_eq!(report.to_json(), again.to_json());
}

#[test]
fn compressing_with_wrong_metadata_is_rejected() {
    let adapter = SerialAdapter::new();
    let d = nyx_density(8, 1);
    // Claim a shape that doesn't match the byte count.
    let wrong = ArrayMeta::new(DType::F32, hpdr_core::Shape::new(&[3, 3]));
    for codec in codecs() {
        assert!(
            hpdr::compress(&adapter, &d.bytes, &wrong, codec).is_err(),
            "{}",
            codec.name()
        );
    }
}
