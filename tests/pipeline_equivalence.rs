//! The HDEM pipeline must change *performance*, never *results*: every
//! pipeline configuration reconstructs within the same error bound, the
//! container format round-trips through bytes, and design toggles
//! (buffer count, CMM, launch order) leave the payload untouched.

use hpdr::{Codec, MgardConfig};
use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, Float, Reducer};
use hpdr_data::nyx_density;
use hpdr_pipeline::{
    compress_pipelined, decompress_pipelined, Container, PipelineMode, PipelineOptions,
};
use std::sync::Arc;

#[allow(clippy::type_complexity)]
fn setup() -> (
    Arc<Vec<u8>>,
    ArrayMeta,
    Arc<dyn DeviceAdapter>,
    Arc<dyn Reducer>,
) {
    let d = nyx_density(32, 21);
    let input = Arc::new(d.bytes.clone());
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::new(4));
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    (input, meta, work, reducer)
}

fn all_options() -> Vec<(&'static str, PipelineOptions)> {
    vec![
        ("unpipelined", PipelineOptions::unpipelined()),
        ("fixed-2buf", PipelineOptions::fixed(48 * 1024)),
        (
            "fixed-3buf",
            PipelineOptions {
                two_buffers: false,
                ..PipelineOptions::fixed(48 * 1024)
            },
        ),
        (
            "fixed-nocmm",
            PipelineOptions {
                cmm: false,
                ..PipelineOptions::fixed(48 * 1024)
            },
        ),
        (
            "adaptive",
            PipelineOptions {
                mode: PipelineMode::Adaptive {
                    init_bytes: 16 * 1024,
                    limit_bytes: 1 << 20,
                },
                ..Default::default()
            },
        ),
        (
            "no-deser-swap",
            PipelineOptions {
                deser_first: false,
                ..PipelineOptions::fixed(48 * 1024)
            },
        ),
    ]
}

#[test]
fn every_pipeline_config_preserves_the_error_bound() {
    let (input, meta, work, reducer) = setup();
    let spec = hpdr_sim::spec::v100();
    let orig = f32::bytes_to_vec(&input);
    let range = {
        let mx = orig.iter().cloned().fold(f32::MIN, f32::max);
        let mn = orig.iter().cloned().fold(f32::MAX, f32::min);
        (mx - mn) as f64
    };
    for (name, opts) in all_options() {
        let (container, _) = compress_pipelined(
            &spec,
            Arc::clone(&work),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .unwrap();
        let (bytes, meta2, _) = decompress_pipelined(
            &spec,
            Arc::clone(&work),
            Arc::clone(&reducer),
            &container,
            &opts,
        )
        .unwrap();
        assert_eq!(meta2, meta, "{name}");
        let out = f32::bytes_to_vec(&bytes);
        let err = orig
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        assert!(err <= 1e-2 * range * 1.001, "{name}: err {err}");
    }
}

#[test]
fn container_survives_byte_serialization() {
    let (input, meta, work, reducer) = setup();
    let spec = hpdr_sim::spec::v100();
    let (container, _) = compress_pipelined(
        &spec,
        Arc::clone(&work),
        Arc::clone(&reducer),
        input,
        &meta,
        &PipelineOptions::fixed(32 * 1024),
    )
    .unwrap();
    let bytes = container.to_bytes();
    let parsed = Container::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, container);
    // And the parsed container decompresses.
    let (out, meta2, _) =
        decompress_pipelined(&spec, work, reducer, &parsed, &PipelineOptions::default()).unwrap();
    assert_eq!(meta2, meta);
    assert_eq!(out.len(), meta.num_bytes());
}

#[test]
fn decompress_options_are_independent_of_compress_options() {
    // A container produced with one pipeline config must decompress under
    // any other (chunking is recorded in the container, not the options).
    let (input, meta, work, reducer) = setup();
    let spec = hpdr_sim::spec::v100();
    let (container, _) = compress_pipelined(
        &spec,
        Arc::clone(&work),
        Arc::clone(&reducer),
        input,
        &meta,
        &PipelineOptions::fixed(24 * 1024),
    )
    .unwrap();
    let mut reference: Option<Vec<u8>> = None;
    for (name, opts) in all_options() {
        let (bytes, _, _) = decompress_pipelined(
            &spec,
            Arc::clone(&work),
            Arc::clone(&reducer),
            &container,
            &opts,
        )
        .unwrap();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes, "{name} reconstructed differently"),
        }
    }
}

#[test]
fn deterministic_timelines() {
    // Virtual time must be perfectly reproducible run to run.
    let (input, meta, work, reducer) = setup();
    let spec = hpdr_sim::spec::a100();
    let opts = PipelineOptions::fixed(32 * 1024);
    let r1 = compress_pipelined(
        &spec,
        Arc::clone(&work),
        Arc::clone(&reducer),
        Arc::clone(&input),
        &meta,
        &opts,
    )
    .unwrap()
    .1;
    let r2 = compress_pipelined(&spec, work, reducer, input, &meta, &opts)
        .unwrap()
        .1;
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.overlap, r2.overlap);
    assert_eq!(r1.num_chunks, r2.num_chunks);
}

#[test]
fn chunked_container_matches_direct_compression_content() {
    // Chunk streams decompressed individually equal the corresponding
    // row slices of the original (per-chunk independence).
    let (input, meta, work, reducer) = setup();
    let spec = hpdr_sim::spec::v100();
    let (container, _) = compress_pipelined(
        &spec,
        Arc::clone(&work),
        Arc::clone(&reducer),
        Arc::clone(&input),
        &meta,
        &PipelineOptions::fixed(64 * 1024),
    )
    .unwrap();
    let row_bytes = meta.shape.row_elements() * meta.dtype.size();
    let mut offset = 0usize;
    for (rows, stream) in &container.chunks {
        let (bytes, cmeta) = reducer.decompress(work.as_ref(), stream).unwrap();
        assert_eq!(cmeta.shape.dims()[0], *rows);
        assert_eq!(bytes.len(), rows * row_bytes);
        offset += rows * row_bytes;
    }
    assert_eq!(offset, input.len());
}
