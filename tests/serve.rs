//! Integration tests for the serving layer (`hpdr-serve`): scheduler
//! determinism, per-tenant fairness, typed backpressure, CMM/slot
//! release on cancellation and timeout, histogram quantile accuracy,
//! and the continuous-batching goodput win.

use hpdr_core::{CpuParallelAdapter, DeviceAdapter};
use hpdr_serve::histogram::bucket_width;
use hpdr_serve::{
    exact_quantile, parse_script, run_loadgen, serve, validate_loadgen_json, validate_serve_json,
    AdmissionConfig, JobOutcome, JobRequest, LoadgenOptions, PayloadCache, Policy, Scheduler,
    ServeCodec, ServeConfig, ServeError, ServeReport, StreamingHistogram, TenantId, VecSource,
    DEMO_SCRIPT,
};
use hpdr_sim::Ns;
use proptest::prelude::*;
use std::sync::Arc;

fn work() -> Arc<dyn DeviceAdapter> {
    Arc::new(CpuParallelAdapter::with_defaults())
}

/// A compress job built from the deterministic synthetic field.
fn compress_job(cache: &mut PayloadCache, tenant: u32, arrival_us: u64, side: usize) -> JobRequest {
    let (input, meta) = cache.input(side);
    JobRequest::new(
        TenantId(tenant),
        Ns::from_micros(arrival_us),
        ServeCodec::Zfp { rate: 16 },
        hpdr_serve::JobPayload::Compress { input, meta },
    )
}

fn demo_report_json(policy: Policy, devices: usize) -> String {
    let work = work();
    let jobs = parse_script(DEMO_SCRIPT, work.as_ref()).expect("demo script parses");
    let cfg = ServeConfig {
        devices,
        policy,
        ..ServeConfig::default()
    };
    let mut source = VecSource::new(jobs);
    let outcome = serve(cfg, work, &mut source);
    ServeReport::build(policy, outcome).to_json()
}

#[test]
fn serial_report_is_byte_identical_across_runs_and_device_counts() {
    // The serial-queue policy uses one device regardless of pool size,
    // so the same job file must serialize byte-identically for any
    // `--devices` — and across repeated runs.
    let base = demo_report_json(Policy::Serial, 1);
    validate_serve_json(&base).expect("valid serve report");
    for devices in 1..=4 {
        assert_eq!(
            demo_report_json(Policy::Serial, devices),
            base,
            "serial report diverged at devices={devices}"
        );
    }
}

#[test]
fn batched_report_is_deterministic_across_runs() {
    let a = demo_report_json(Policy::Batched, 2);
    let b = demo_report_json(Policy::Batched, 2);
    assert_eq!(a, b);
    validate_serve_json(&a).expect("valid serve report");
}

#[test]
fn light_tenant_does_not_starve_under_skewed_load() {
    // Tenant 0 submits 10x the jobs of tenant 1, all contending for one
    // device. Byte-weighted fair queuing must keep the light tenant's
    // latency in the same ballpark — not behind the heavy backlog.
    let work = work();
    let mut cache = PayloadCache::new();
    let mut jobs = Vec::new();
    for i in 0..100u64 {
        jobs.push(compress_job(&mut cache, 0, i, 16));
    }
    for i in 0..10u64 {
        jobs.push(compress_job(&mut cache, 1, i * 10, 16));
    }
    let cfg = ServeConfig {
        devices: 1,
        policy: Policy::Batched,
        admission: AdmissionConfig {
            max_queued_jobs: 256,
            max_queued_bytes: 1 << 30,
        },
        ..ServeConfig::default()
    };
    let mut source = VecSource::new(jobs);
    let outcome = serve(cfg, work, &mut source);
    let report = ServeReport::build(Policy::Batched, outcome);
    assert_eq!(report.completed, 110, "all jobs complete");
    let light = report.per_tenant.iter().find(|t| t.tenant == 1).unwrap();
    let heavy = report.per_tenant.iter().find(|t| t.tenant == 0).unwrap();
    assert_eq!(light.completed, 10, "light tenant finished everything");
    assert!(
        light.mean_latency_ns <= heavy.mean_latency_ns * 2,
        "light tenant starved: {} ns vs heavy {} ns",
        light.mean_latency_ns,
        heavy.mean_latency_ns
    );
}

#[test]
fn full_queue_rejects_with_typed_backpressure() {
    let mut cache = PayloadCache::new();
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_queued_jobs: 2,
            max_queued_bytes: 1 << 30,
        },
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(cfg, work());
    sched.try_submit(compress_job(&mut cache, 0, 0, 8)).unwrap();
    sched.try_submit(compress_job(&mut cache, 0, 0, 8)).unwrap();
    let err = sched
        .try_submit(compress_job(&mut cache, 0, 0, 8))
        .unwrap_err();
    assert!(matches!(err, ServeError::QueueFull { depth: 2, limit: 2 }));
    assert!(err.is_backpressure());

    // Byte-budget rejection is the other typed variant.
    let tiny = ServeConfig {
        admission: AdmissionConfig {
            max_queued_jobs: 64,
            max_queued_bytes: 100,
        },
        ..ServeConfig::default()
    };
    let mut sched2 = Scheduler::new(tiny, work());
    let err = sched2
        .try_submit(compress_job(&mut cache, 0, 0, 8))
        .unwrap_err();
    assert!(matches!(err, ServeError::BudgetExceeded { .. }));

    // The run still drains the admitted jobs and the report balances:
    // nothing was lost, the rejection is visible, never silently dropped.
    let mut empty = VecSource::new(Vec::new());
    let outcome = sched.run(&mut empty);
    let report = ServeReport::build(Policy::Batched, outcome);
    assert_eq!(report.submitted, 3);
    assert_eq!(report.admitted, 2);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 2);
    validate_serve_json(&report.to_json()).expect("balanced report");
}

#[test]
fn queued_cancellation_never_attaches_context_or_device() {
    let mut cache = PayloadCache::new();
    let mut job = compress_job(&mut cache, 0, 0, 8);
    job.cancel_at = Some(Ns::ZERO); // client gave up immediately
    let mut source = VecSource::new(vec![job]);
    let outcome = serve(ServeConfig::default(), work(), &mut source);
    assert_eq!(outcome.records.len(), 1);
    assert_eq!(outcome.records[0].outcome, JobOutcome::Cancelled);
    assert_eq!(outcome.records[0].device, None, "never dispatched");
    assert_eq!(outcome.cmm_misses, 0, "no context was ever built");
    assert_eq!(outcome.cmm_contexts, 0);
    assert_eq!(outcome.in_flight_end, 0);
    assert_eq!(outcome.admission.queued_jobs(), 0, "admission released");
    assert!(outcome.devices.is_empty(), "no device slot consumed");
}

#[test]
fn in_flight_cancellation_and_timeout_release_context_and_slot() {
    let mut cache = PayloadCache::new();
    // Job 0 runs normally; job 1 is cancelled mid-service; job 2 has a
    // deadline far shorter than any service time.
    let a = compress_job(&mut cache, 0, 0, 16);
    let mut b = compress_job(&mut cache, 1, 0, 16);
    b.cancel_at = Some(Ns(1));
    let mut c = compress_job(&mut cache, 2, 0, 16);
    c.deadline = Some(Ns(2));
    // Distinct codecs force distinct batches so each job is its own
    // launch (the hazards land in flight, not in the queue).
    b.codec = ServeCodec::Lz4;
    c.codec = ServeCodec::Huffman;
    let mut source = VecSource::new(vec![a, b, c]);
    let cfg = ServeConfig {
        devices: 3,
        ..ServeConfig::default()
    };
    let outcome = serve(cfg, work(), &mut source);

    let by_tenant = |t: u32| {
        outcome
            .records
            .iter()
            .find(|r| r.tenant == TenantId(t))
            .unwrap()
    };
    assert_eq!(by_tenant(0).outcome, JobOutcome::Completed);
    let cancelled = by_tenant(1);
    assert_eq!(cancelled.outcome, JobOutcome::Cancelled);
    assert!(cancelled.device.is_some(), "was in flight when cancelled");
    let timed_out = by_tenant(2);
    assert_eq!(timed_out.outcome, JobOutcome::TimedOut);
    assert!(
        timed_out.device.is_some(),
        "was in flight past its deadline"
    );

    // Release invariants: every context idle again, every device slot
    // freed, admission gauges empty.
    assert_eq!(outcome.cmm_contexts, 3, "each codec built one context");
    assert_eq!(
        outcome.cmm_idle, outcome.cmm_contexts,
        "cancelled/timed-out jobs must release their CMM contexts"
    );
    assert_eq!(outcome.in_flight_end, 0, "device slots all released");
    assert_eq!(outcome.admission.queued_jobs(), 0);
    assert_eq!(outcome.admission.queued_bytes(), 0);
    assert!(outcome.pool_jobs > 0, "kernels really ran on the pool");
}

#[test]
fn acceptance_loadgen_loses_no_jobs_and_batching_wins() {
    // The ISSUE acceptance run: rps 200 for 2 virtual seconds, seed 7.
    let opts = LoadgenOptions {
        rps: 200.0,
        duration_s: 2.0,
        tenants: 4,
        devices: 2,
        seed: 7,
        closed: false,
        metrics: false,
        flight: false,
    };
    let report = run_loadgen(opts).expect("loadgen runs");
    let s = &report.serve;
    assert!(s.admitted > 0);
    assert_eq!(
        s.admitted,
        s.completed + s.timed_out + s.cancelled + s.failed,
        "zero lost jobs"
    );
    assert!(s.latency.p99 > 0, "p99 latency is trace-derived and real");
    assert!(
        report.batching_speedup >= 1.5,
        "continuous batching must beat one-job-at-a-time by >= 1.5x, got {:.3}",
        report.batching_speedup
    );
    let doc = report.to_json();
    validate_loadgen_json(&doc).expect("schema-valid loadgen report");

    // The whole document is virtual-time-derived, so a second run is
    // byte-identical.
    let again = run_loadgen(opts).expect("loadgen runs again");
    assert_eq!(again.to_json(), doc, "loadgen report must be reproducible");
}

#[test]
fn closed_loop_loadgen_balances_too() {
    let opts = LoadgenOptions {
        rps: 50.0,
        duration_s: 0.5,
        tenants: 3,
        devices: 2,
        seed: 11,
        closed: true,
        metrics: false,
        flight: false,
    };
    let report = run_loadgen(opts).expect("closed-loop loadgen runs");
    let s = &report.serve;
    assert!(s.admitted > 0);
    assert_eq!(
        s.admitted,
        s.completed + s.timed_out + s.cancelled + s.failed
    );
    validate_loadgen_json(&report.to_json()).expect("valid report");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming histogram's nearest-rank quantile stays within one
    /// bucket width of the sorted-array quantile over the same samples.
    #[test]
    fn histogram_quantiles_match_exact_within_one_bucket(
        samples in proptest::collection::vec(0u64..3_000_000, 1..500),
        q in 0.01f64..1.0,
    ) {
        let mut h = StreamingHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = h.quantile(q);
        prop_assert!(approx >= exact, "sketch went below exact: {approx} < {exact}");
        prop_assert!(
            approx - exact < bucket_width(exact).max(1),
            "q={q}: sketch {approx} vs exact {exact} (width {})",
            bucket_width(exact)
        );
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }
}
