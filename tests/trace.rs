//! Cross-crate tests of the `hpdr-trace` observability subsystem:
//! overlap-regression ordering on the Fig. 13 settings, the
//! critical-path == makespan property over the shipped configuration
//! matrix, and zero-behavior-change when tracing is off.

use hpdr::{ArrayMeta, Codec, CpuParallelAdapter, DType, MgardConfig, Shape};
use hpdr_core::{DeviceAdapter, Reducer};
use hpdr_pipeline::{
    compress_pipelined, decompress_pipelined, plan_compress, PipelineMode, PipelineOptions,
};
use proptest::prelude::*;
use std::sync::Arc;

fn work() -> Arc<dyn DeviceAdapter> {
    Arc::new(CpuParallelAdapter::with_defaults())
}

/// Small NYX sample (32^3 f32) with its metadata.
fn nyx_input() -> (Arc<Vec<u8>>, ArrayMeta) {
    let d = hpdr::data::nyx_density(32, 1);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    (Arc::new(d.bytes), meta)
}

/// The Fig. 13 pipeline settings over the NYX sample: none / fixed /
/// adaptive, with chunk sizes proportioned to the input the way the
/// paper proportions them to its 4.3 GB arrays (fixed chunks are a
/// large fraction of the input; adaptive ramps up from small ones).
fn fig13_settings(total: u64) -> [(&'static str, PipelineOptions); 3] {
    [
        ("none", PipelineOptions::unpipelined()),
        (
            "fixed",
            PipelineOptions {
                mode: PipelineMode::Fixed {
                    chunk_bytes: total / 2,
                },
                ..PipelineOptions::default()
            },
        ),
        (
            "adaptive",
            PipelineOptions {
                mode: PipelineMode::Adaptive {
                    init_bytes: total / 16,
                    limit_bytes: total / 4,
                },
                ..PipelineOptions::default()
            },
        ),
    ]
}

/// Satellite regression: the trace-derived §V-C overlap ratio must rank
/// adaptive ≥ fixed ≥ none on the Fig. 13 configurations.
#[test]
fn overlap_orders_adaptive_fixed_none() {
    let spec = hpdr::sim::v100().scaled(64);
    let (input, meta) = nyx_input();
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let mut ratios = Vec::new();
    for (name, opts) in fig13_settings(input.len() as u64) {
        let (_, rep) = compress_pipelined(
            &spec,
            work(),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .expect("fig13 compress");
        // Unpipelined single-chunk runs have fully serialized DMA.
        ratios.push((name, rep.overlap.unwrap_or(0.0)));
    }
    let (none, fixed, adaptive) = (ratios[0].1, ratios[1].1, ratios[2].1);
    assert!(
        adaptive >= fixed && fixed >= none,
        "overlap not monotone across pipeline settings: {ratios:?}"
    );
    assert!(adaptive > 0.0, "adaptive run shows no overlap: {ratios:?}");
    assert_eq!(none, 0.0, "unpipelined run cannot overlap: {ratios:?}");
}

/// The shipped configuration matrix (mirrors `hpdr verify`): three
/// chunking modes × two-buffers × CMM × deser-first, plus the two
/// baselines.
fn config_matrix() -> Vec<PipelineOptions> {
    let row_bytes = 256 * 4;
    let modes = [
        PipelineMode::Unpipelined,
        PipelineMode::Fixed {
            chunk_bytes: 8 * row_bytes,
        },
        PipelineMode::Adaptive {
            init_bytes: 4 * row_bytes,
            limit_bytes: 16 * row_bytes,
        },
    ];
    let mut configs = Vec::new();
    for mode in modes {
        for two_buffers in [false, true] {
            for cmm in [false, true] {
                for deser_first in [false, true] {
                    configs.push(PipelineOptions {
                        mode,
                        two_buffers,
                        cmm,
                        deser_first,
                        serial_queue: false,
                        host_staging: false,
                    });
                }
            }
        }
    }
    configs.push(PipelineOptions::baseline_unoptimized());
    configs.push(PipelineOptions::baseline_per_step(8 * row_bytes));
    configs
}

/// Small input matching the verify matrix: 64 rows × 256 f32.
fn matrix_input() -> (Arc<Vec<u8>>, ArrayMeta) {
    let meta = ArrayMeta::new(DType::F32, Shape::new(&[64, 256]));
    let input: Arc<Vec<u8>> = Arc::new(
        (0..meta.num_bytes() / 4)
            .flat_map(|i| ((i % 251) as f32).to_le_bytes())
            .collect(),
    );
    (input, meta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(26))]

    /// Acceptance property: on every shipped configuration, the
    /// critical path extracted from the span trace sums exactly to the
    /// virtual end-to-end time, for both directions.
    #[test]
    fn critical_path_length_equals_makespan(idx in 0usize..26) {
        let configs = config_matrix();
        let opts = configs[idx % configs.len()];
        let spec = hpdr::sim::v100().scaled(256);
        let (input, meta) = matrix_input();
        let reducer: Arc<dyn Reducer> =
            Arc::new(hpdr::huffman::ByteHuffmanReducer::default());
        let (container, crep) = compress_pipelined(
            &spec, work(), Arc::clone(&reducer), input, &meta, &opts,
        ).expect("compress");
        let (_, _, drep) = decompress_pipelined(
            &spec, work(), reducer, &container, &opts,
        ).expect("decompress");
        for rep_trace in [&crep.trace, &drep.trace] {
            let cp = hpdr::trace::critical_path(rep_trace);
            prop_assert_eq!(cp.length, rep_trace.makespan());
            prop_assert_eq!(cp.length, cp.makespan);
            prop_assert!(!cp.ops.is_empty());
        }
        prop_assert_eq!(crep.trace.makespan(), crep.makespan);
        prop_assert_eq!(drep.trace.makespan(), drep.makespan);
    }
}

/// Acceptance: with the recorder off, the schedule's virtual times are
/// bit-for-bit identical — tracing is observation only.
#[test]
fn tracing_off_changes_nothing() {
    let spec = hpdr::sim::v100().scaled(64);
    let (input, meta) = nyx_input();
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let opts = PipelineOptions::default();
    let plan = |traced: bool| {
        let mut sim = plan_compress(
            &spec,
            work(),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .expect("plan");
        sim.set_trace(traced);
        let timeline = sim.run();
        (timeline.makespan(), sim.take_trace())
    };
    let (makespan_off, trace_off) = plan(false);
    let (makespan_on, trace_on) = plan(true);
    assert_eq!(makespan_off, makespan_on);
    assert!(trace_off.is_none());
    let trace = trace_on.expect("tracing was enabled");
    assert_eq!(trace.makespan(), makespan_on);
    // And the spans cover the same schedule the timeline reports.
    assert!(!trace.is_empty());
}
