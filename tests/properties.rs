//! Property-based tests (proptest) on the core invariants: lossless
//! round-trips on arbitrary inputs, error bounds on arbitrary fields,
//! kernel/primitive equivalence with serial references.

use hpdr::{Codec, MgardConfig, SzConfig};
use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, Float, SerialAdapter, Shape};
use hpdr_kernels::{exclusive_scan, exclusive_scan_serial, BitReader, BitWriter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn huffman_roundtrips_arbitrary_symbols(
        keys in proptest::collection::vec(0u32..512, 0..4000),
        chunk in 1usize..3000,
    ) {
        let adapter = SerialAdapter::new();
        let cfg = hpdr_huffman::HuffmanConfig { dict_size: 512, chunk_elems: chunk };
        let stream = hpdr_huffman::compress_u32(&adapter, &keys, &cfg).unwrap();
        let out = hpdr_huffman::decompress_u32(&adapter, &stream).unwrap();
        prop_assert_eq!(out, keys);
    }

    #[test]
    fn lz4_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..6000)) {
        let c = hpdr_baselines::lz_compress(&data);
        let d = hpdr_baselines::lz_decompress(&c, data.len()).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn bitstream_roundtrips_arbitrary_fields(
        fields in proptest::collection::vec((any::<u64>(), 0u32..=64), 0..200)
    ) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let total = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_bit_limit(&bytes, total).unwrap();
        for &(v, n) in &fields {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            prop_assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
        prop_assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn parallel_scan_matches_serial(input in proptest::collection::vec(0u64..1000, 0..5000)) {
        let adapter = CpuParallelAdapter::new(4);
        prop_assert_eq!(exclusive_scan(&adapter, &input), exclusive_scan_serial(&input));
    }

    #[test]
    fn lorenzo_is_exactly_invertible(
        vals in proptest::collection::vec(-1_000_000i64..1_000_000, 1..400),
        split in 1usize..20,
    ) {
        // Reshape to 2D when possible.
        let n = vals.len();
        let rows = split.min(n);
        let cols = n / rows;
        if cols == 0 { return Ok(()); }
        let used = rows * cols;
        let shape = Shape::new(&[rows, cols]);
        let mut q: Vec<i64> = vals[..used].to_vec();
        hpdr_baselines::lorenzo::lorenzo_forward(&mut q, &shape);
        hpdr_baselines::lorenzo::lorenzo_inverse(&mut q, &shape);
        prop_assert_eq!(&q[..], &vals[..used]);
    }

    #[test]
    fn sz_honours_bound_on_arbitrary_fields(
        vals in proptest::collection::vec(-1e6f32..1e6, 16..600),
        rel in 1e-5f64..1e-1,
    ) {
        let adapter = SerialAdapter::new();
        let shape = Shape::new(&[vals.len()]);
        let (stream, _) = hpdr::compress_slice(
            &adapter, &vals, &shape, Codec::Sz(SzConfig::relative(rel))).unwrap();
        let (out, _) = hpdr::decompress_slice::<f32>(&adapter, &stream).unwrap();
        let range = {
            let mx = vals.iter().cloned().fold(f32::MIN, f32::max);
            let mn = vals.iter().cloned().fold(f32::MAX, f32::min);
            ((mx - mn) as f64).max(f64::MIN_POSITIVE)
        };
        let err = vals.iter().zip(&out)
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        // f32 reconstruction rounding can add half an ulp of the value
        // magnitude on top of the quantizer's guarantee.
        prop_assert!(err <= rel * range * (1.0 + 1e-5) + 1e-30, "err {} bound {}", err, rel * range);
    }

    #[test]
    fn mgard_honours_bound_on_random_2d_fields(
        seed in 0u64..5000,
        rows in 4usize..24,
        cols in 4usize..24,
        rel_exp in 1u32..5,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::new(&[rows, cols]);
        let vals: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let rel = 10f64.powi(-(rel_exp as i32));
        let adapter = SerialAdapter::new();
        let (stream, _) = hpdr::compress_slice(
            &adapter, &vals, &shape, Codec::Mgard(MgardConfig::relative(rel))).unwrap();
        let (out, _) = hpdr::decompress_slice::<f64>(&adapter, &stream).unwrap();
        let range = {
            let mx = vals.iter().cloned().fold(f64::MIN, f64::max);
            let mn = vals.iter().cloned().fold(f64::MAX, f64::min);
            mx - mn
        };
        let err = vals.iter().zip(&out).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(err <= rel * range * 1.001, "err {} bound {}", err, rel * range);
    }

    #[test]
    fn zfp_error_shrinks_with_rate(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::new(&[8, 8]);
        let vals: Vec<f32> = (0..64).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let adapter = SerialAdapter::new();
        let err_at = |rate: u32| {
            let (s, _) = hpdr::compress_slice(
                &adapter, &vals, &shape,
                Codec::Zfp(hpdr::ZfpConfig::fixed_rate(rate))).unwrap();
            let (out, _) = hpdr::decompress_slice::<f32>(&adapter, &s).unwrap();
            vals.iter().zip(&out).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
        };
        let coarse = err_at(4);
        let fine = err_at(28);
        prop_assert!(fine <= coarse + 1e-6, "fine {} coarse {}", fine, coarse);
        prop_assert!(fine < 1e-3, "fine-rate error too large: {}", fine);
    }

    #[test]
    fn quantize_dequantize_within_half_bin(
        vals in proptest::collection::vec(-1e4f64..1e4, 1..500),
        bin in 1e-4f64..10.0,
    ) {
        let adapter = SerialAdapter::new();
        let levels = vec![0u8; vals.len()];
        let bins = vec![bin];
        let q = hpdr_mgard::quantize::quantize(&adapter, &vals, &levels, &bins, 4096);
        let back = hpdr_mgard::quantize::dequantize(&adapter, &q, &levels, &bins, 4096);
        for (a, b) in vals.iter().zip(&back) {
            prop_assert!((a - b).abs() <= bin / 2.0 + 1e-9);
        }
    }

    #[test]
    fn huffman_container_detection_never_misfires(
        data in proptest::collection::vec(any::<u8>(), 4..64)
    ) {
        // Arbitrary bytes must not be decodable as any codec (with
        // overwhelming probability they fail; they must never panic).
        let adapter = SerialAdapter::new();
        let _ = hpdr::decompress(&adapter, &data);
    }

    #[test]
    fn dataset_bytes_parse_back(side in 4usize..12, seed in 0u64..100) {
        let d = hpdr_data::nyx_density(side, seed);
        let vals = d.as_f32();
        prop_assert_eq!(vals.len(), side * side * side);
        let meta = ArrayMeta::new(DType::F32, d.shape.clone());
        prop_assert_eq!(meta.num_bytes(), d.bytes.len());
        let rt = f32::slice_to_bytes(&vals);
        prop_assert_eq!(rt, d.bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mgard_decompose_recompose_is_identity(
        seed in 0u64..2000,
        rows in 2usize..20,
        cols in 2usize..20,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::new(&[rows, cols]);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1e3..1e3)).collect();
        let h = hpdr_mgard::Hierarchy::new(&shape);
        let adapter = SerialAdapter::new();
        let mut u = data.clone();
        hpdr_mgard::decompose::decompose(&adapter, &mut u, &h);
        hpdr_mgard::decompose::recompose(&adapter, &mut u, &h);
        let err = data.iter().zip(&u).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-6, "roundtrip err {}", err);
    }

    #[test]
    fn zfp_fixed_precision_error_never_grows_with_planes(
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::new(&[8, 8]);
        let vals: Vec<f64> = (0..64).map(|_| rng.gen_range(-1e4..1e4)).collect();
        let adapter = SerialAdapter::new();
        let mut last = f64::INFINITY;
        for planes in [8u32, 24, 48, 62] {
            let (s, _) = hpdr::compress_slice(
                &adapter, &vals, &shape,
                Codec::Zfp(hpdr::ZfpConfig::fixed_precision(planes))).unwrap();
            let (out, _) = hpdr::decompress_slice::<f64>(&adapter, &s).unwrap();
            let err = vals.iter().zip(&out).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            prop_assert!(err <= last + 1e-9, "planes {}: {} > {}", planes, err, last);
            last = err;
        }
        prop_assert!(last < 1e-9, "full precision err {}", last);
    }

    #[test]
    fn refactor_full_retrieval_equals_codec_bound(
        seed in 0u64..300,
        rows in 5usize..16,
        cols in 5usize..16,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::new(&[rows, cols]);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let adapter = SerialAdapter::new();
        let cfg = hpdr_mgard::RefactorConfig { rel_bound: 1e-4, dict_size: 8192 };
        let r = hpdr_mgard::refactor(&adapter, &data, &shape, &cfg).unwrap();
        let (out, _) = hpdr_mgard::retrieve::<f64>(&adapter, &r, r.levels - 1).unwrap();
        let range = {
            let mx = data.iter().cloned().fold(f64::MIN, f64::max);
            let mn = data.iter().cloned().fold(f64::MAX, f64::min);
            (mx - mn).max(f64::MIN_POSITIVE)
        };
        let err = data.iter().zip(&out).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(err <= 1e-4 * range * 1.001, "err {} bound {}", err, 1e-4 * range);
    }

    #[test]
    fn lorenzo_4d_roundtrip(
        vals in proptest::collection::vec(-1_000_000i64..1_000_000, 16..240),
    ) {
        // Factor the length into a 4D shape.
        let n = vals.len();
        let a = 2; let b = 2;
        let c = 2.max((n / 8).min(4));
        let d = n / (a * b * c);
        if d == 0 { return Ok(()); }
        let used = a * b * c * d;
        let shape = Shape::new(&[a, b, c, d]);
        let mut q: Vec<i64> = vals[..used].to_vec();
        hpdr_baselines::lorenzo::lorenzo_forward(&mut q, &shape);
        hpdr_baselines::lorenzo::lorenzo_inverse(&mut q, &shape);
        prop_assert_eq!(&q[..], &vals[..used]);
    }

    #[test]
    fn embedded_coder_lossless_with_full_budget(
        data in proptest::collection::vec(0u64..(1u64 << 62), 1..64),
    ) {
        use hpdr_kernels::{BitReader, BitWriter};
        let mut w = BitWriter::new();
        let used = hpdr_zfp::embedded::encode_ints(&mut w, 1 << 24, 0, &data);
        prop_assert!(used < 1 << 24);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let out = hpdr_zfp::embedded::decode_ints(&mut r, 1 << 24, 0, data.len()).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn shape_offset_unravel_inverse(dims in proptest::collection::vec(1usize..8, 1..5)) {
        let shape = Shape::new(&dims);
        for flat in 0..shape.num_elements() {
            let idx = shape.unravel(flat);
            prop_assert_eq!(shape.offset(&idx), flat);
        }
    }
}
