//! End-to-end I/O: reduced data written through the BP5-like format and
//! read back (the paper's ADIOS2 integration, at test scale with real
//! files), plus the cluster-profile measurement path.

use hpdr::{Codec, MgardConfig, ZfpConfig};
use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, Float};
use hpdr_data::{e3sm_psl, nyx_density};
use hpdr_io::{measure_codec_profile, summit, BpReader, BpWriter};
use hpdr_pipeline::PipelineOptions;
use std::sync::Arc;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hpdr-io-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn reduced_blocks_roundtrip_through_bp_files() {
    let adapter = CpuParallelAdapter::new(4);
    let dir = tmpdir("reduced");
    let nyx = nyx_density(16, 3);
    let psl = e3sm_psl(6, 12, 16, 4);
    let nyx_meta = ArrayMeta::new(DType::F32, nyx.shape.clone());
    let psl_meta = ArrayMeta::new(DType::F32, psl.shape.clone());

    // Write: 3 "ranks" of NYX (MGARD) + 1 PSL block (ZFP) per step.
    let mut w = BpWriter::create(&dir, 2).unwrap();
    let mut originals = Vec::new();
    for step in 0..2u64 {
        w.begin_step();
        for rank in 0..3u64 {
            let seed = step * 10 + rank;
            let d = nyx_density(16, seed);
            let (stream, _) = hpdr::compress(
                &adapter,
                &d.bytes,
                &nyx_meta,
                Codec::Mgard(MgardConfig::relative(1e-3)),
            )
            .unwrap();
            w.put("density", &nyx_meta, &stream, "mgard-x").unwrap();
            originals.push(d.bytes.clone());
        }
        let (stream, _) = hpdr::compress(
            &adapter,
            &psl.bytes,
            &psl_meta,
            Codec::Zfp(ZfpConfig::fixed_rate(16)),
        )
        .unwrap();
        w.put("psl", &psl_meta, &stream, "zfp-x").unwrap();
        w.end_step().unwrap();
    }
    w.close().unwrap();

    // Read back and reconstruct through the name registry.
    let r = BpReader::open(&dir).unwrap();
    assert_eq!(r.num_steps(), 2);
    let mut idx = 0;
    for step in 0..2 {
        for block in r.blocks(step, "density").unwrap() {
            let payload = r.read_block(block).unwrap();
            let reducer = hpdr::reducer_by_name(&block.codec).unwrap();
            let (bytes, meta) = reducer.decompress(&adapter, &payload).unwrap();
            assert_eq!(meta, block.meta);
            // Error-bounded reconstruction of the right original.
            let orig = f32::bytes_to_vec(&originals[idx]);
            let out = f32::bytes_to_vec(&bytes);
            let err = orig
                .iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(err < 0.1, "step {step} block {idx}: err {err}");
            idx += 1;
        }
        let psl_blocks = r.blocks(step, "psl").unwrap();
        assert_eq!(psl_blocks.len(), 1);
        let payload = r.read_block(&psl_blocks[0]).unwrap();
        let reducer = hpdr::reducer_by_name("zfp-x").unwrap();
        let (bytes, _) = reducer.decompress(&adapter, &payload).unwrap();
        assert_eq!(bytes.len(), psl.bytes.len());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mixed_raw_and_reduced_blocks() {
    let adapter = CpuParallelAdapter::new(2);
    let dir = tmpdir("mixed");
    let d = nyx_density(8, 1);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    let mut w = BpWriter::create(&dir, 1).unwrap();
    w.begin_step();
    w.put("v", &meta, &d.bytes, "raw").unwrap();
    let (stream, _) = hpdr::compress(&adapter, &d.bytes, &meta, Codec::Lz4).unwrap();
    w.put("v", &meta, &stream, "nvcomp-lz4-like").unwrap();
    w.close().unwrap();

    let r = BpReader::open(&dir).unwrap();
    let blocks = r.blocks(0, "v").unwrap();
    assert_eq!(blocks.len(), 2);
    // Raw block: bytes as stored.
    let raw = r.read_block(&blocks[0]).unwrap();
    assert_eq!(raw, d.bytes);
    // Reduced block: lossless roundtrip.
    let reduced = r.read_block(&blocks[1]).unwrap();
    let (bytes, _) = hpdr::reducer_by_name(&blocks[1].codec)
        .unwrap()
        .decompress(&adapter, &reduced)
        .unwrap();
    assert_eq!(bytes, d.bytes);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn codec_profile_measurement_is_sane() {
    let system = summit();
    let d = nyx_density(24, 2);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::new(4));
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let profile = measure_codec_profile(
        &system,
        reducer,
        work,
        Arc::new(d.bytes.clone()),
        &meta,
        &PipelineOptions::fixed(32 * 1024),
    )
    .unwrap();
    assert_eq!(profile.name, "mgard-x");
    assert!(profile.compress_gbps > 0.0);
    assert!(profile.decompress_gbps > 0.0);
    assert!(profile.ratio > 1.0, "ratio {}", profile.ratio);
    assert!(
        profile.node_scalability > 0.5 && profile.node_scalability <= 1.01,
        "scalability {}",
        profile.node_scalability
    );
}
