//! Multi-GPU behaviour (paper §VI-E): dense nodes share one runtime;
//! the CMM determines whether allocation traffic serializes the devices.

use hpdr::{Codec, MgardConfig};
use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, Reducer};
use hpdr_data::nyx_density;
use hpdr_pipeline::{average_scalability, compress_multi_gpu, scalability_sweep, PipelineOptions};
use std::sync::Arc;

#[allow(clippy::type_complexity)]
fn setup() -> (
    Arc<Vec<u8>>,
    ArrayMeta,
    Arc<dyn DeviceAdapter>,
    Arc<dyn Reducer>,
) {
    let d = nyx_density(24, 8);
    (
        Arc::new(d.bytes.clone()),
        ArrayMeta::new(DType::F32, d.shape.clone()),
        Arc::new(CpuParallelAdapter::new(4)),
        Codec::Mgard(MgardConfig::relative(1e-2)).reducer(),
    )
}

#[test]
fn six_gpu_summit_node_compresses_all_inputs() {
    let (input, meta, work, reducer) = setup();
    let inputs: Vec<_> = (0..6).map(|_| Arc::clone(&input)).collect();
    let (containers, report) = compress_multi_gpu(
        &hpdr_sim::spec::v100(),
        6,
        work,
        reducer,
        inputs,
        &meta,
        &PipelineOptions::fixed(32 * 1024),
    )
    .unwrap();
    assert_eq!(containers.len(), 6);
    assert_eq!(report.num_devices, 6);
    assert_eq!(report.input_bytes, input.len() as u64 * 6);
    // All devices produce identical streams for identical inputs.
    for c in &containers[1..] {
        assert_eq!(c.chunks, containers[0].chunks);
    }
    // Per-device overlap present on every device.
    for o in &report.overlaps {
        assert!(o.unwrap_or(0.0) > 0.1);
    }
}

#[test]
fn multi_gpu_runs_are_deterministic() {
    let (input, meta, work, reducer) = setup();
    let run = || {
        let inputs: Vec<_> = (0..3).map(|_| Arc::clone(&input)).collect();
        compress_multi_gpu(
            &hpdr_sim::spec::mi250x(),
            3,
            Arc::clone(&work),
            Arc::clone(&reducer),
            inputs,
            &meta,
            &PipelineOptions::fixed(48 * 1024),
        )
        .unwrap()
        .1
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.compressed_bytes, b.compressed_bytes);
}

#[test]
fn cmm_recovers_scalability_lost_to_the_shared_runtime() {
    let (input, meta, work, reducer) = setup();
    let mk = || Arc::clone(&input);
    let cmm = scalability_sweep(
        &hpdr_sim::spec::v100(),
        6,
        Arc::clone(&work),
        Arc::clone(&reducer),
        mk,
        &meta,
        &PipelineOptions::fixed(32 * 1024),
    )
    .unwrap();
    let mk = || Arc::clone(&input);
    let nocmm = scalability_sweep(
        &hpdr_sim::spec::v100(),
        6,
        work,
        reducer,
        mk,
        &meta,
        &PipelineOptions {
            cmm: false,
            ..PipelineOptions::fixed(32 * 1024)
        },
    )
    .unwrap();
    let g = average_scalability(&cmm);
    let b = average_scalability(&nocmm);
    assert!(g > b, "cmm {g:.3} vs no-cmm {b:.3}");
    // Paper's shape: optimized ≥ ~90%, unoptimized visibly below.
    assert!(g > 0.85, "cmm scalability {g:.3}");
    assert!(
        b < g - 0.02,
        "contention effect too small: {b:.3} vs {g:.3}"
    );
    // Scalability degrades (or stays flat) as devices are added when the
    // runtime lock is contended.
    let last = nocmm.last().unwrap().2;
    let first = nocmm.first().unwrap().2;
    assert!(last <= first + 1e-9);
}

#[test]
fn aggregate_throughput_grows_with_devices() {
    let (input, meta, work, reducer) = setup();
    let mut last = 0.0;
    for n in [1usize, 2, 4] {
        let inputs: Vec<_> = (0..n).map(|_| Arc::clone(&input)).collect();
        let (_, report) = compress_multi_gpu(
            &hpdr_sim::spec::v100(),
            n,
            Arc::clone(&work),
            Arc::clone(&reducer),
            inputs,
            &meta,
            &PipelineOptions::fixed(32 * 1024),
        )
        .unwrap();
        assert!(
            report.aggregate_gbps > last,
            "throughput did not grow at {n} devices"
        );
        last = report.aggregate_gbps;
    }
}
