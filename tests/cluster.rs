//! Cross-crate integration tests of the sharded cluster front-end:
//! seeded byte-reproducibility, single-shard equivalence with the plain
//! serving loadgen, the locality-vs-random placement gap, and the
//! multi-shard goodput scaling acceptance.

use hpdr_serve::{run_loadgen, LoadgenOptions};
use hpdr_shard::{run_cluster_loadgen, validate_cluster_json, ClusterLoadOptions, PlacementPolicy};

#[test]
fn seeded_cluster_report_is_byte_identical() {
    let opts = ClusterLoadOptions::quick();
    let a = run_cluster_loadgen(&opts).unwrap();
    let b = run_cluster_loadgen(&opts).unwrap();
    assert_eq!(a.to_json(), b.to_json(), "same seed must be byte-identical");
    assert_eq!(a.lost, 0);
    assert!(a.ok());
    validate_cluster_json(&a.to_json()).unwrap();
}

#[test]
fn single_shard_cluster_matches_plain_loadgen_outcomes() {
    // One node means every data key is home and no transfer is ever
    // modeled, so the cluster must serve the exact per-job outcomes the
    // plain loadgen serves — placement is a no-op at nodes=1.
    let base = LoadgenOptions::quick();
    assert!(
        !base.metrics,
        "plain run must match the shard config (no registry)"
    );
    let plain = run_loadgen(base).unwrap();
    let cluster = run_cluster_loadgen(&ClusterLoadOptions {
        base,
        nodes: 1,
        ..ClusterLoadOptions::quick()
    })
    .unwrap();

    assert_eq!(
        cluster.remote_fetches, 0,
        "nodes=1 must never fetch remotely"
    );
    assert_eq!(cluster.shards.len(), 1);
    let shard = &cluster.shards[0].report;
    assert_eq!(shard.records.len(), plain.serve.records.len());
    for (c, p) in shard.records.iter().zip(&plain.serve.records) {
        assert_eq!(c.tenant, p.tenant);
        assert_eq!(c.kind, p.kind);
        assert_eq!(c.outcome, p.outcome, "job {:?} diverged", c.id);
        assert_eq!(
            c.finished, p.finished,
            "job {:?} finished at a different instant",
            c.id
        );
    }
    assert_eq!(shard.completed_bytes, plain.serve.completed_bytes);
    assert_eq!(shard.makespan, plain.serve.makespan);
}

#[test]
fn locality_placement_strictly_beats_random_hit_rate() {
    let locality = run_cluster_loadgen(&ClusterLoadOptions::quick()).unwrap();
    let random = run_cluster_loadgen(&ClusterLoadOptions {
        policy: PlacementPolicy::Random,
        ..ClusterLoadOptions::quick()
    })
    .unwrap();
    assert_eq!(locality.lost, 0);
    assert_eq!(random.lost, 0);
    assert!(
        locality.cache_hit_rate > random.cache_hit_rate,
        "locality hit rate {} must strictly beat random {}",
        locality.cache_hit_rate,
        random.cache_hit_rate
    );
    // Under locality every data job lands on its key's home (or gets the
    // object shipped once); random scatters consumers across shards.
    assert!(locality.remote_fetches < random.remote_fetches);
}

#[test]
fn four_shards_sustain_at_least_twice_single_shard_goodput() {
    // Saturate one single-device shard, then offer the identical open-loop
    // arrival stream to four shards: goodput (completed uncompressed
    // bytes per virtual second) must at least double.
    // At 64Ki rps a single-device shard is far past capacity: admission
    // rejects most of the offered stream, capping its completed bytes,
    // while four shards absorb nearly everything.
    let base = LoadgenOptions {
        rps: 65536.0,
        duration_s: 0.1,
        devices: 1,
        ..LoadgenOptions::quick()
    };
    let one = run_cluster_loadgen(&ClusterLoadOptions {
        base,
        nodes: 1,
        ..ClusterLoadOptions::quick()
    })
    .unwrap();
    let four = run_cluster_loadgen(&ClusterLoadOptions {
        base,
        nodes: 4,
        ..ClusterLoadOptions::quick()
    })
    .unwrap();
    assert_eq!(one.lost, 0);
    assert_eq!(four.lost, 0);
    assert!(
        four.goodput_gbps >= 2.0 * one.goodput_gbps,
        "4-shard goodput {:.3} GB/s must be >= 2x single-shard {:.3} GB/s",
        four.goodput_gbps,
        one.goodput_gbps
    );
}
