//! Error-bound guarantees of the lossy pipelines across the Table III
//! dataset analogues, error bounds and dtypes.

use hpdr::{Codec, MgardConfig, SzConfig, ZfpConfig};
use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, Float, Shape};
use hpdr_data::{e3sm_psl, nyx_density, xgc_ef};

fn max_err_f32(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

fn range_f32(a: &[f32]) -> f64 {
    let mx = a.iter().cloned().fold(f32::MIN, f32::max);
    let mn = a.iter().cloned().fold(f32::MAX, f32::min);
    (mx - mn) as f64
}

#[test]
fn mgard_bound_on_all_table_iii_datasets() {
    let adapter = CpuParallelAdapter::new(4);
    let datasets = [nyx_density(24, 1), e3sm_psl(12, 20, 24, 2)];
    for d in datasets {
        let vals = d.as_f32();
        let range = range_f32(&vals);
        for rel in [1e-1f64, 1e-2, 1e-3] {
            let (stream, _) = hpdr::compress_slice(
                &adapter,
                &vals,
                &d.shape,
                Codec::Mgard(MgardConfig::relative(rel)),
            )
            .unwrap();
            let (out, _) = hpdr::decompress_slice::<f32>(&adapter, &stream).unwrap();
            let err = max_err_f32(&vals, &out);
            assert!(
                err <= rel * range * 1.001,
                "{} rel={rel}: err {err} > {}",
                d.name,
                rel * range
            );
        }
    }
}

#[test]
fn mgard_bound_on_4d_xgc_f64() {
    let adapter = CpuParallelAdapter::new(4);
    let d = xgc_ef(40, 3);
    let vals = d.as_f64();
    let range = {
        let mx = vals.iter().cloned().fold(f64::MIN, f64::max);
        let mn = vals.iter().cloned().fold(f64::MAX, f64::min);
        mx - mn
    };
    let rel = 1e-4;
    let (stream, _) = hpdr::compress_slice(
        &adapter,
        &vals,
        &d.shape,
        Codec::Mgard(MgardConfig::relative(rel)),
    )
    .unwrap();
    let (out, _) = hpdr::decompress_slice::<f64>(&adapter, &stream).unwrap();
    let err = vals
        .iter()
        .zip(&out)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    assert!(err <= rel * range * 1.001, "err {err} > {}", rel * range);
}

#[test]
fn sz_bound_matches_spec() {
    let adapter = CpuParallelAdapter::new(4);
    let d = nyx_density(24, 9);
    let vals = d.as_f32();
    let range = range_f32(&vals);
    for rel in [1e-2f64, 1e-4] {
        let (stream, _) = hpdr::compress_slice(
            &adapter,
            &vals,
            &d.shape,
            Codec::Sz(SzConfig::relative(rel)),
        )
        .unwrap();
        let (out, _) = hpdr::decompress_slice::<f32>(&adapter, &stream).unwrap();
        let err = max_err_f32(&vals, &out);
        assert!(err <= rel * range * 1.001, "rel={rel}: err {err}");
    }
}

#[test]
fn zfp_fixed_accuracy_extension_bound() {
    let adapter = CpuParallelAdapter::new(4);
    let d = e3sm_psl(8, 16, 20, 4);
    let vals = d.as_f32();
    for tol in [100.0f64, 1.0, 0.01] {
        let (stream, _) = hpdr::compress_slice(
            &adapter,
            &vals,
            &d.shape,
            Codec::Zfp(ZfpConfig::fixed_accuracy(tol)),
        )
        .unwrap();
        let (out, _) = hpdr::decompress_slice::<f32>(&adapter, &stream).unwrap();
        let err = max_err_f32(&vals, &out);
        assert!(err <= tol, "tol={tol}: err {err}");
    }
}

#[test]
fn tighter_bounds_cost_more_bytes_everywhere() {
    let adapter = CpuParallelAdapter::new(4);
    let d = nyx_density(32, 7);
    let vals = d.as_f32();
    for mk in [
        (|rel: f64| Codec::Mgard(MgardConfig::relative(rel))) as fn(f64) -> Codec,
        (|rel: f64| Codec::Sz(SzConfig::relative(rel))) as fn(f64) -> Codec,
    ] {
        let mut last = 0usize;
        for rel in [1e-1f64, 1e-3, 1e-5] {
            let (stream, _) = hpdr::compress_slice(&adapter, &vals, &d.shape, mk(rel)).unwrap();
            assert!(
                stream.len() >= last,
                "{}: stream shrank when tightening to {rel}",
                mk(rel).name()
            );
            last = stream.len();
        }
    }
}

#[test]
fn lossless_codecs_are_bit_exact_on_all_dtypes() {
    let adapter = CpuParallelAdapter::new(4);
    // f32 and f64 payloads through Huffman and LZ4.
    let f32_data: Vec<f32> = (0..4000).map(|i| ((i / 10) as f32).sqrt()).collect();
    let f64_data: Vec<f64> = (0..2000).map(|i| (i as f64) * 0.125).collect();
    let cases: Vec<(Vec<u8>, ArrayMeta)> = vec![
        (
            f32::slice_to_bytes(&f32_data),
            ArrayMeta::new(DType::F32, Shape::new(&[4000])),
        ),
        (
            f64::slice_to_bytes(&f64_data),
            ArrayMeta::new(DType::F64, Shape::new(&[2000])),
        ),
    ];
    for (bytes, meta) in cases {
        for codec in [Codec::Huffman, Codec::Lz4] {
            let (stream, _) = hpdr::compress(&adapter, &bytes, &meta, codec).unwrap();
            let (out, meta2) = hpdr::decompress(&adapter, &stream).unwrap();
            assert_eq!(out, bytes, "{}", codec.name());
            assert_eq!(meta2, meta);
        }
    }
}
