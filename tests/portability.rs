//! The paper's central claim (§III): data reduced on one processor
//! architecture reconstructs bit-identically on any other. We compress on
//! every adapter (serial CPU, multi-core CPU, simulated CUDA V100/A100,
//! simulated HIP MI250X) and decompress on every other.

use hpdr::{Codec, MgardConfig, SzConfig, ZfpConfig};
use hpdr_core::{
    ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, GpuSimAdapter, SerialAdapter,
};
use hpdr_data::nyx_density;

fn adapters() -> Vec<(&'static str, Box<dyn DeviceAdapter>)> {
    vec![
        ("serial", Box::new(SerialAdapter::new())),
        ("openmp", Box::new(CpuParallelAdapter::new(4))),
        (
            "cuda-v100",
            Box::new(GpuSimAdapter::new(hpdr_sim::spec::v100())),
        ),
        (
            "cuda-a100",
            Box::new(GpuSimAdapter::new(hpdr_sim::spec::a100())),
        ),
        (
            "hip-mi250x",
            Box::new(GpuSimAdapter::new(hpdr_sim::spec::mi250x())),
        ),
    ]
}

fn codecs() -> Vec<Codec> {
    vec![
        Codec::Mgard(MgardConfig::relative(1e-3)),
        Codec::Zfp(ZfpConfig::fixed_rate(16)),
        Codec::Huffman,
        Codec::Sz(SzConfig::relative(1e-3)),
        Codec::Lz4,
    ]
}

#[test]
fn streams_are_bitwise_identical_across_adapters() {
    let d = nyx_density(24, 11);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    for codec in codecs() {
        let mut reference: Option<Vec<u8>> = None;
        for (name, adapter) in adapters() {
            let (stream, _) = hpdr::compress(adapter.as_ref(), &d.bytes, &meta, codec).unwrap();
            match &reference {
                None => reference = Some(stream),
                Some(r) => assert_eq!(
                    r,
                    &stream,
                    "codec {} produced different bytes on {name}",
                    codec.name()
                ),
            }
        }
    }
}

#[test]
fn any_adapter_decodes_any_adapters_stream() {
    let d = nyx_density(16, 5);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    for codec in codecs() {
        for (pname, producer) in adapters() {
            let (stream, _) = hpdr::compress(producer.as_ref(), &d.bytes, &meta, codec).unwrap();
            let mut reference: Option<Vec<u8>> = None;
            for (cname, consumer) in adapters() {
                let (bytes, meta2) = hpdr::decompress(consumer.as_ref(), &stream).unwrap();
                assert_eq!(meta2, meta, "{} {pname}->{cname}", codec.name());
                match &reference {
                    None => reference = Some(bytes),
                    Some(r) => assert_eq!(
                        r,
                        &bytes,
                        "{}: {pname}'s stream reconstructed differently on {cname}",
                        codec.name()
                    ),
                }
            }
        }
    }
}

#[test]
fn f64_portability_mgard() {
    let shape = hpdr_core::Shape::new(&[13, 17, 9]);
    let data: Vec<f64> = (0..shape.num_elements())
        .map(|i| (i as f64 * 0.013).sin() * 42.0)
        .collect();
    let serial = SerialAdapter::new();
    let gpu = GpuSimAdapter::new(hpdr_sim::spec::mi250x());
    let (s1, _) = hpdr::compress_slice(
        &serial,
        &data,
        &shape,
        Codec::Mgard(MgardConfig::relative(1e-4)),
    )
    .unwrap();
    let (s2, _) = hpdr::compress_slice(
        &gpu,
        &data,
        &shape,
        Codec::Mgard(MgardConfig::relative(1e-4)),
    )
    .unwrap();
    assert_eq!(s1, s2);
    let (out, _) = hpdr::decompress_slice::<f64>(&gpu, &s1).unwrap();
    assert_eq!(out.len(), data.len());
}

#[test]
fn gpu_sim_adapters_report_virtual_time() {
    let gpu = GpuSimAdapter::new(hpdr_sim::spec::v100());
    let d = nyx_density(16, 1);
    let meta = ArrayMeta::new(DType::F32, d.shape.clone());
    gpu.clock_reset();
    hpdr::compress(&gpu, &d.bytes, &meta, Codec::Zfp(ZfpConfig::fixed_rate(8))).unwrap();
    assert!(gpu.uses_virtual_time());
    assert!(gpu.clock_elapsed() > hpdr_sim::Ns::ZERO);
}

/// The paper's extension recipe: supporting a new processor (their
/// Kokkos/SYCL example) means implementing `DeviceAdapter` — nothing in
/// the algorithm crates changes. This "new back-end" runs every codec
/// and produces the same portable bytes.
mod custom_backend {
    use super::*;
    use hpdr_core::{AdapterInfo, AdapterKind, Ns};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A minimal out-of-tree adapter: serial execution plus launch
    /// counting (a stand-in for a Kokkos/SYCL-backed implementation).
    struct KokkosLikeAdapter {
        launches: AtomicU64,
    }

    impl hpdr_core::DeviceAdapter for KokkosLikeAdapter {
        fn info(&self) -> AdapterInfo {
            AdapterInfo {
                device: "kokkos-like".into(),
                kind: AdapterKind::Serial,
                threads: 1,
            }
        }
        fn try_gem(
            &self,
            groups: usize,
            staging_bytes: usize,
            policy: hpdr_core::ScratchPolicy,
            body: &(dyn Fn(usize, &mut [u8]) + Sync),
        ) -> hpdr_core::Result<()> {
            self.launches.fetch_add(1, Ordering::Relaxed);
            let mut staging = vec![0u8; staging_bytes];
            for g in 0..groups {
                if policy == hpdr_core::ScratchPolicy::Zeroed {
                    staging.fill(0);
                }
                body(g, &mut staging);
            }
            Ok(())
        }
        fn try_dem(&self, n: usize, body: &(dyn Fn(usize) + Sync)) -> hpdr_core::Result<()> {
            self.launches.fetch_add(1, Ordering::Relaxed);
            for i in 0..n {
                body(i);
            }
            Ok(())
        }
        fn charge(&self, _class: hpdr_core::KernelClass, _bytes: u64) {}
        fn clock_reset(&self) {}
        fn clock_elapsed(&self) -> Ns {
            Ns::ZERO
        }
    }

    #[test]
    fn out_of_tree_adapter_runs_every_codec_bit_identically() {
        let custom = KokkosLikeAdapter {
            launches: AtomicU64::new(0),
        };
        let reference = SerialAdapter::new();
        let d = nyx_density(12, 99);
        let meta = ArrayMeta::new(DType::F32, d.shape.clone());
        for codec in codecs() {
            let (a, _) = hpdr::compress(&custom, &d.bytes, &meta, codec).unwrap();
            let (b, _) = hpdr::compress(&reference, &d.bytes, &meta, codec).unwrap();
            assert_eq!(a, b, "{} differs on the custom back-end", codec.name());
            let (out, _) = hpdr::decompress(&custom, &b).unwrap();
            assert_eq!(out.len(), d.bytes.len());
        }
        assert!(
            custom.launches.load(Ordering::Relaxed) > 0,
            "the custom adapter must actually execute kernels"
        );
    }
}
