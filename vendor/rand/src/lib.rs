//! Offline stub of `rand` 0.8, providing the deterministic subset this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range`/`Rng::gen` over primitive ranges.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high-quality and
//! fully deterministic, which is all the synthetic-field generators and
//! property tests here need. Distributions are *not* bit-compatible with
//! upstream `rand`; seeded outputs differ from the real crate.

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    fn gen_standard(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Standard for $t {
            fn gen_standard(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo + unit * (hi - lo)) as $t
            }
        }
        impl Standard for $t {
            fn gen_standard(rng: &mut dyn RngCore) -> $t {
                ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

impl Standard for bool {
    fn gen_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing RNG extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
            let i = rng.gen_range(10usize..20);
            assert!((10..20).contains(&i));
            let w: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(av, bv);
    }
}
