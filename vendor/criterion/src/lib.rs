//! Offline stub of `criterion`: a minimal wall-clock bench harness with
//! the API surface the `bench` crate uses (`Criterion::default()`,
//! `sample_size`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros). Reports mean/min wall
//! time per iteration — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench driver handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall times of the most recent `iter` call.
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.times.clear();
        // One warm-up iteration outside the timed samples.
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

/// Top-level harness (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        if b.times.is_empty() {
            println!("{id:<40} (no samples)");
        } else {
            let total: Duration = b.times.iter().sum();
            let mean = total / b.times.len() as u32;
            let min = b.times.iter().min().copied().unwrap_or_default();
            println!(
                "{id:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
                mean,
                min,
                b.times.len()
            );
        }
        self
    }
}

/// `criterion_group!` — both the struct-ish and positional forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!` — run every group from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stub/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
