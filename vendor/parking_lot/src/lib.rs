//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of `parking_lot` APIs actually used (`Mutex`/`RwLock` without
//! poisoning) are re-implemented over `std::sync`. Poisoning is absorbed:
//! a poisoned lock yields its inner guard, matching parking_lot's
//! "no poisoning" semantics closely enough for this workspace.

use std::sync::{self, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive (no poisoning, like `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock (no poisoning, like `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
