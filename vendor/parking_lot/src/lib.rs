//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of `parking_lot` APIs actually used (`Mutex`/`RwLock`/`Condvar`
//! without poisoning) are re-implemented over `std::sync`. Poisoning is
//! absorbed: a poisoned lock yields its inner guard, matching
//! parking_lot's "no poisoning" semantics closely enough for this
//! workspace.

use std::sync::{self, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// A mutual-exclusion primitive (no poisoning, like `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move
/// it out (std's `wait` consumes the guard) and put the reacquired guard
/// back, all without unsafe code. The `Option` is `Some` at every point
/// user code can observe.
pub struct MutexGuard<'a, T: ?Sized>(Option<StdMutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`] (subset of
/// `parking_lot::Condvar`: `wait`, `wait_for`, `wait_while`, notify).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, atomically releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(reacquired);
    }

    /// Block until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out (matching `parking_lot`'s `WaitTimeoutResult`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard present before wait_for");
        let (reacquired, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(reacquired);
        result.timed_out()
    }

    /// Block until `condition` returns false (re-checked on each wakeup).
    pub fn wait_while<T, F>(&self, guard: &mut MutexGuard<'_, T>, mut condition: F)
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock (no poisoning, like `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            cv.wait_while(&mut ready, |r| !*r);
            *ready
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().expect("waiter thread"));
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
