//! Offline stub of the `loom` model checker.
//!
//! The build container has no crates.io access, so this crate
//! re-implements the subset of loom's API that the workspace's
//! `cfg(loom)` tests use: [`model`], [`thread`], [`sync`] (Mutex,
//! Condvar, Arc, atomics) and [`cell::UnsafeCell`].
//!
//! # How it checks
//!
//! Every execution runs the model body on real OS threads that are
//! **serialized by a token**: exactly one model thread runs at a time,
//! and every loom primitive operation (atomic access, mutex lock,
//! condvar wait/notify, `yield_now`) is a *scheduling point* where the
//! checker may hand the token to a different runnable thread. The
//! scheduler records every choice it makes; after an execution
//! completes it backtracks depth-first to the last choice with an
//! untried alternative and replays. The search therefore enumerates
//! every distinct interleaving at primitive-operation granularity.
//!
//! Two bounds keep the search finite and honest:
//!
//! * **Preemption bound** (`LOOM_MAX_PREEMPTIONS`, default 2):
//!   schedules may switch away from a still-runnable thread at most N
//!   times per execution. Voluntary switches (block, finish) are free.
//!   This is the classic CHESS-style bound — most concurrency bugs
//!   manifest within 2 preemptions — and the same knob real loom
//!   exposes. Exhaustiveness claims are *up to this bound*.
//! * **Iteration cap** (`LOOM_MAX_ITERATIONS`, default 100 000): the
//!   checker panics rather than silently truncating the search, so a
//!   passing test genuinely explored its whole (bounded) space.
//!
//! # Semantics and limitations vs real loom
//!
//! * Atomics are **sequentially consistent** regardless of the
//!   `Ordering` argument. Bugs that only manifest under relaxed
//!   memory orderings are not found; bugs in the *protocol* (lost
//!   wakeups, deadlocks, ordering races, lost updates) are.
//! * `Condvar` has no spurious wakeups; `notify_one` wakes the
//!   longest-waiting thread deterministically.
//! * No vector-clock data-race detector: `cell::UnsafeCell` does not
//!   flag concurrent `with`/`with_mut` access by itself — assert on
//!   observable state instead.
//! * Deadlock (every live thread blocked) is detected and reported
//!   with the schedule that produced it.
//!
//! Model code that uses `std::panic::catch_unwind` must re-raise
//! [`AbortedExecution`] payloads (see its docs): the checker uses that
//! panic to unwind sibling threads once an execution has failed.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{
    Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard,
};

/// Panic payload used to tear down the remaining threads of an
/// execution after one thread has already failed (panic or deadlock).
///
/// Model code that catches panics (e.g. a model of a panic-capturing
/// protocol) must check for this payload and re-raise it:
///
/// ```ignore
/// if payload.is::<loom::AbortedExecution>() {
///     std::panic::resume_unwind(payload);
/// }
/// ```
#[derive(Debug)]
pub struct AbortedExecution;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Scheduler runtime
// ---------------------------------------------------------------------------

mod rt {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ThreadState {
        Runnable,
        BlockedMutex(usize),
        BlockedCond(usize),
        BlockedJoin(usize),
        Finished,
    }

    pub struct Inner {
        pub threads: Vec<ThreadState>,
        /// Thread currently holding the run token.
        pub current: usize,
        /// Choices to replay from earlier executions (DFS prefix).
        pub replay: Vec<usize>,
        pub pos: usize,
        /// Every choice made this execution: (chosen index, options).
        pub decisions: Vec<(usize, usize)>,
        pub mutex_holders: Vec<Option<usize>>,
        /// FIFO waiter queues, one per condvar.
        pub cond_waiters: Vec<Vec<usize>>,
        pub preemptions: usize,
        pub preemption_budget: usize,
        /// First failure of the execution (panic message or deadlock).
        pub abort: Option<String>,
    }

    pub struct Scheduler {
        inner: StdMutex<Inner>,
        cv: StdCondvar,
    }

    impl Scheduler {
        pub fn new(replay: Vec<usize>, preemption_budget: usize) -> Scheduler {
            Scheduler {
                inner: StdMutex::new(Inner {
                    threads: Vec::new(),
                    current: 0,
                    replay,
                    pos: 0,
                    decisions: Vec::new(),
                    mutex_holders: Vec::new(),
                    cond_waiters: Vec::new(),
                    preemptions: 0,
                    preemption_budget,
                    abort: None,
                }),
                cv: StdCondvar::new(),
            }
        }

        /// Lock the scheduler state, ignoring poisoning: teardown panics
        /// intentionally unwind through scheduler calls.
        fn lock(&self) -> StdMutexGuard<'_, Inner> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        fn check_abort(inner: &Inner) {
            if inner.abort.is_some() {
                std::panic::panic_any(AbortedExecution);
            }
        }

        /// Pick the next thread to run and record the decision.
        /// No-op once the execution has aborted or fully finished.
        fn pick(&self, inner: &mut Inner) {
            if inner.abort.is_some() {
                self.cv.notify_all();
                return;
            }
            let runnable: Vec<usize> = (0..inner.threads.len())
                .filter(|&t| inner.threads[t] == ThreadState::Runnable)
                .collect();
            if runnable.is_empty() {
                if inner.threads.iter().any(|t| *t != ThreadState::Finished) {
                    let blocked: Vec<String> = inner
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| **t != ThreadState::Finished)
                        .map(|(i, t)| format!("thread {i}: {t:?}"))
                        .collect();
                    inner.abort = Some(format!(
                        "deadlock: every live thread is blocked ({})",
                        blocked.join(", ")
                    ));
                }
                self.cv.notify_all();
                return;
            }
            // Keep the running thread first so choice 0 always means
            // "continue without preemption" — the canonical DFS path.
            let cur = inner.current;
            let cur_runnable = runnable.contains(&cur);
            let allowed: Vec<usize> = if cur_runnable {
                if inner.preemptions >= inner.preemption_budget {
                    vec![cur]
                } else {
                    std::iter::once(cur)
                        .chain(runnable.iter().copied().filter(|&t| t != cur))
                        .collect()
                }
            } else {
                runnable
            };
            let choice = if inner.pos < inner.replay.len() {
                inner.replay[inner.pos]
            } else {
                0
            };
            assert!(
                choice < allowed.len(),
                "loom: nondeterministic model — replayed choice {choice} of {} options \
                 (model bodies must be deterministic; avoid HashMap iteration, time, randomness)",
                allowed.len()
            );
            inner.pos += 1;
            inner.decisions.push((choice, allowed.len()));
            let chosen = allowed[choice];
            if cur_runnable && chosen != cur {
                inner.preemptions += 1;
            }
            inner.current = chosen;
            self.cv.notify_all();
        }

        /// Wait until `me` holds the run token (panicking on abort).
        fn wait_for_token<'a>(
            &'a self,
            me: usize,
            mut inner: StdMutexGuard<'a, Inner>,
        ) -> StdMutexGuard<'a, Inner> {
            while inner.current != me {
                Self::check_abort(&inner);
                inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
            Self::check_abort(&inner);
            inner
        }

        /// A scheduling point: the running thread offers the token.
        pub fn switch(&self, me: usize) {
            let mut inner = self.lock();
            Self::check_abort(&inner);
            self.pick(&mut inner);
            drop(self.wait_for_token(me, inner));
        }

        /// Register a new model thread (Runnable, not yet scheduled).
        pub fn register_thread(&self) -> usize {
            let mut inner = self.lock();
            inner.threads.push(ThreadState::Runnable);
            inner.threads.len() - 1
        }

        /// First scheduling of a freshly spawned thread.
        pub fn start(&self, me: usize) {
            let inner = self.lock();
            drop(self.wait_for_token(me, inner));
        }

        pub fn register_mutex(&self) -> usize {
            let mut inner = self.lock();
            inner.mutex_holders.push(None);
            inner.mutex_holders.len() - 1
        }

        pub fn register_condvar(&self) -> usize {
            let mut inner = self.lock();
            inner.cond_waiters.push(Vec::new());
            inner.cond_waiters.len() - 1
        }

        /// Block `me` (state already set by the caller inside `inner`)
        /// until a waker marks it runnable and the scheduler picks it.
        fn block<'a>(
            &'a self,
            me: usize,
            mut inner: StdMutexGuard<'a, Inner>,
        ) -> StdMutexGuard<'a, Inner> {
            self.pick(&mut inner);
            self.wait_for_token(me, inner)
        }

        pub fn acquire_mutex(&self, mid: usize, me: usize) {
            let mut inner = self.lock();
            loop {
                Self::check_abort(&inner);
                if inner.mutex_holders[mid].is_none() {
                    inner.mutex_holders[mid] = Some(me);
                    return;
                }
                inner.threads[me] = ThreadState::BlockedMutex(mid);
                inner = self.block(me, inner);
            }
        }

        /// Release a mutex and make its waiters runnable. Never panics
        /// (called from guard Drop, possibly mid-unwind).
        pub fn release_mutex(&self, mid: usize, me: usize) {
            let mut inner = self.lock();
            debug_assert_eq!(inner.mutex_holders[mid], Some(me));
            inner.mutex_holders[mid] = None;
            for t in 0..inner.threads.len() {
                if inner.threads[t] == ThreadState::BlockedMutex(mid) {
                    inner.threads[t] = ThreadState::Runnable;
                }
            }
            self.cv.notify_all();
        }

        /// Register as a condvar waiter and block. The caller released
        /// the associated mutex on this same token tenure, so the
        /// release+wait pair is atomic with respect to the model.
        pub fn cond_wait(&self, cid: usize, me: usize) {
            let mut inner = self.lock();
            Self::check_abort(&inner);
            inner.cond_waiters[cid].push(me);
            inner.threads[me] = ThreadState::BlockedCond(cid);
            let inner = self.block(me, inner);
            drop(inner);
        }

        pub fn notify(&self, cid: usize, all: bool) {
            let mut inner = self.lock();
            Self::check_abort(&inner);
            let woken: Vec<usize> = if all {
                std::mem::take(&mut inner.cond_waiters[cid])
            } else if inner.cond_waiters[cid].is_empty() {
                Vec::new()
            } else {
                vec![inner.cond_waiters[cid].remove(0)]
            };
            for t in woken {
                inner.threads[t] = ThreadState::Runnable;
            }
            self.cv.notify_all();
        }

        pub fn join_wait(&self, me: usize, target: usize) {
            self.switch(me);
            let mut inner = self.lock();
            Self::check_abort(&inner);
            if inner.threads[target] != ThreadState::Finished {
                inner.threads[me] = ThreadState::BlockedJoin(target);
                let inner = self.block(me, inner);
                Self::check_abort(&inner);
            }
        }

        /// Mark `me` finished, recording `failure` (if any) as the
        /// execution's abort reason, wake joiners, and pass the token on.
        pub fn finish(&self, me: usize, failure: Option<String>) {
            let mut inner = self.lock();
            if let Some(msg) = failure {
                if inner.abort.is_none() {
                    inner.abort = Some(msg);
                }
            }
            inner.threads[me] = ThreadState::Finished;
            for t in 0..inner.threads.len() {
                if inner.threads[t] == ThreadState::BlockedJoin(me) {
                    inner.threads[t] = ThreadState::Runnable;
                }
            }
            self.pick(&mut inner);
        }

        /// Orchestrator: wait until every model thread finished (or the
        /// execution aborted).
        pub fn wait_done(&self) {
            let mut inner = self.lock();
            loop {
                if inner.abort.is_some()
                    || inner.threads.iter().all(|t| *t == ThreadState::Finished)
                {
                    return;
                }
                inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn results(&self) -> (Vec<(usize, usize)>, Option<String>) {
            let inner = self.lock();
            (inner.decisions.clone(), inner.abort.clone())
        }
    }

    thread_local! {
        /// (scheduler, model thread id) of the current OS thread, set
        /// while it participates in a model execution.
        pub static CTX: RefCell<Option<(StdArc<Scheduler>, usize)>> =
            const { RefCell::new(None) };
    }

    /// The current thread's model context; loom primitives are only
    /// usable from inside `loom::model`.
    pub fn ctx() -> (StdArc<Scheduler>, usize) {
        CTX.with(|c| {
            c.borrow()
                .clone()
                .expect("loom primitives may only be used inside loom::model")
        })
    }

    /// Scheduling point for the current thread.
    pub fn preempt() {
        let (sched, me) = ctx();
        sched.switch(me);
    }
}

// ---------------------------------------------------------------------------
// model()
// ---------------------------------------------------------------------------

/// Explore every interleaving (up to the preemption bound) of `f`.
///
/// Equivalent to `model::Builder::new().check(f)`.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f)
}

pub mod model {
    use super::*;

    fn env_usize(name: &str, default: usize) -> usize {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Configures a model-checking run.
    pub struct Builder {
        /// Max times a schedule may switch away from a runnable thread
        /// (default: `LOOM_MAX_PREEMPTIONS` or 2).
        pub preemption_bound: usize,
        /// Executions to explore before the checker panics rather than
        /// silently truncating (default: `LOOM_MAX_ITERATIONS` or 100 000).
        pub max_iterations: usize,
        /// Print the exploration count on completion
        /// (default: set `LOOM_LOG` to any value).
        pub log: bool,
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder::new()
        }
    }

    impl Builder {
        pub fn new() -> Builder {
            Builder {
                preemption_bound: env_usize("LOOM_MAX_PREEMPTIONS", 2),
                max_iterations: env_usize("LOOM_MAX_ITERATIONS", 100_000),
                log: std::env::var_os("LOOM_LOG").is_some(),
            }
        }

        /// Run `f` under every schedule the DFS enumerates, panicking on
        /// the first failing execution with its abort reason.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            let f = StdArc::new(f);
            let mut replay: Vec<usize> = Vec::new();
            let mut executions = 0usize;
            loop {
                executions += 1;
                assert!(
                    executions <= self.max_iterations,
                    "loom: exceeded {} executions without exhausting the schedule space; \
                     shrink the model or raise LOOM_MAX_ITERATIONS",
                    self.max_iterations
                );
                let sched = StdArc::new(rt::Scheduler::new(replay.clone(), self.preemption_bound));
                let id0 = sched.register_thread();
                debug_assert_eq!(id0, 0);
                rt::CTX.with(|c| *c.borrow_mut() = Some((StdArc::clone(&sched), 0)));
                let result = catch_unwind(AssertUnwindSafe(|| f()));
                let failure = match result {
                    Ok(()) => None,
                    Err(p) if p.is::<AbortedExecution>() => None,
                    Err(p) => Some(panic_message(p.as_ref())),
                };
                sched.finish(0, failure);
                sched.wait_done();
                rt::CTX.with(|c| *c.borrow_mut() = None);
                let (decisions, abort) = sched.results();
                if let Some(msg) = abort {
                    panic!(
                        "loom model failed after {executions} execution(s): {msg} (schedule {replay:?})"
                    );
                }
                match next_schedule(decisions) {
                    Some(next) => replay = next,
                    None => break,
                }
            }
            if self.log {
                eprintln!(
                    "loom: explored {executions} execution(s) at preemption bound {}",
                    self.preemption_bound
                );
            }
        }
    }

    /// DFS backtracking: bump the deepest decision with an untried
    /// alternative; `None` when the space is exhausted.
    fn next_schedule(mut decisions: Vec<(usize, usize)>) -> Option<Vec<usize>> {
        while let Some(&(choice, options)) = decisions.last() {
            if choice + 1 < options {
                let n = decisions.len();
                let mut replay: Vec<usize> = decisions.iter().map(|&(c, _)| c).collect();
                replay[n - 1] += 1;
                return Some(replay);
            }
            decisions.pop();
        }
        None
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

pub mod thread {
    use super::*;

    /// Handle to a spawned model thread. Unlike `std`, `join` never
    /// returns `Err`: a panicking model thread aborts the whole
    /// execution and the checker reports it from `loom::model`.
    pub struct JoinHandle<T> {
        id: usize,
        os: Option<std::thread::JoinHandle<()>>,
        result: StdArc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(mut self) -> std::thread::Result<T> {
            let (sched, me) = rt::ctx();
            sched.join_wait(me, self.id);
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            let v = self
                .result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("loom: joined thread produced no value");
            Ok(v)
        }
    }

    /// Spawn a model thread. It runs only when the scheduler hands it
    /// the token, so the interleaving with its parent is explored.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, _me) = rt::ctx();
        let id = sched.register_thread();
        let result: StdArc<StdMutex<Option<T>>> = StdArc::new(StdMutex::new(None));
        let os = {
            let sched = StdArc::clone(&sched);
            let result = StdArc::clone(&result);
            std::thread::Builder::new()
                .name(format!("loom-{id}"))
                .spawn(move || {
                    rt::CTX.with(|c| *c.borrow_mut() = Some((StdArc::clone(&sched), id)));
                    sched.start(id);
                    let outcome = catch_unwind(AssertUnwindSafe(f));
                    let failure = match outcome {
                        Ok(v) => {
                            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            None
                        }
                        Err(p) if p.is::<AbortedExecution>() => None,
                        Err(p) => Some(format!(
                            "thread {id} panicked: {}",
                            panic_message(p.as_ref())
                        )),
                    };
                    sched.finish(id, failure);
                })
                .expect("spawn loom model thread")
        };
        JoinHandle {
            id,
            os: Some(os),
            result,
        }
    }

    /// A pure scheduling point.
    pub fn yield_now() {
        rt::preempt();
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

pub mod sync {
    use super::*;
    use std::ops::{Deref, DerefMut};

    pub use std::sync::Arc;

    /// Model-checked mutex (std-shaped API; never poisoned).
    pub struct Mutex<T> {
        id: usize,
        sched: StdArc<rt::Scheduler>,
        data: StdMutex<T>,
    }

    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        me: usize,
        inner: Option<StdMutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Must be called inside `loom::model` (the mutex registers
        /// itself with the current execution's scheduler).
        pub fn new(value: T) -> Mutex<T> {
            let (sched, _me) = rt::ctx();
            let id = sched.register_mutex();
            Mutex {
                id,
                sched,
                data: StdMutex::new(value),
            }
        }

        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            let (sched, me) = rt::ctx();
            sched.switch(me);
            sched.acquire_mutex(self.id, me);
            // Model-level acquisition succeeded, so the std mutex below
            // is uncontended: it only orders this thread against the
            // memory of previous (already released) holders.
            let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard {
                lock: self,
                me,
                inner: Some(inner),
            })
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard released")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard released")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release without a scheduling point: panicking here would
            // double-panic during teardown unwinds. The next primitive
            // op of this thread is the post-release interleaving point.
            if self.inner.take().is_some() {
                self.lock.sched.release_mutex(self.lock.id, self.me);
            }
        }
    }

    /// Model-checked condition variable. Waiter registration is atomic
    /// with the mutex release (no lost-wakeup window in the model
    /// itself — the protocols under test supply their own hazards).
    pub struct Condvar {
        id: usize,
        sched: StdArc<rt::Scheduler>,
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl Condvar {
        pub fn new() -> Condvar {
            let (sched, _me) = rt::ctx();
            let id = sched.register_condvar();
            Condvar { id, sched }
        }

        pub fn wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            let (sched, me) = rt::ctx();
            let lock = guard.lock;
            // Scheduling point at entry, still holding the mutex: other
            // threads may run between the caller's predicate check and
            // this wait (the window a lost-wakeup hazard lives in).
            sched.switch(me);
            // Taking `inner` disarms the guard's Drop; release + waiter
            // registration happen on one token tenure (atomically).
            drop(guard.inner.take());
            sched.release_mutex(lock.id, me);
            drop(guard);
            sched.cond_wait(self.id, me);
            lock.lock()
        }

        pub fn notify_one(&self) {
            let (sched, me) = rt::ctx();
            sched.switch(me);
            self.sched.notify(self.id, false);
        }

        pub fn notify_all(&self) {
            let (sched, me) = rt::ctx();
            sched.switch(me);
            self.sched.notify(self.id, true);
        }
    }

    pub mod atomic {
        pub use std::sync::atomic::Ordering;
        use std::sync::Mutex as StdMutex;

        fn lock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
            m.lock().unwrap_or_else(|e| e.into_inner())
        }

        macro_rules! atomic_int {
            ($name:ident, $t:ty) => {
                /// Model-checked atomic: every access is a scheduling
                /// point; all orderings behave sequentially consistent.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: StdMutex<$t>,
                }

                impl $name {
                    pub fn new(v: $t) -> $name {
                        $name {
                            v: StdMutex::new(v),
                        }
                    }

                    pub fn load(&self, _order: Ordering) -> $t {
                        crate::rt::preempt();
                        *lock(&self.v)
                    }

                    pub fn store(&self, val: $t, _order: Ordering) {
                        crate::rt::preempt();
                        *lock(&self.v) = val;
                    }

                    pub fn swap(&self, val: $t, _order: Ordering) -> $t {
                        crate::rt::preempt();
                        std::mem::replace(&mut *lock(&self.v), val)
                    }

                    pub fn fetch_add(&self, val: $t, _order: Ordering) -> $t {
                        crate::rt::preempt();
                        let mut g = lock(&self.v);
                        let old = *g;
                        *g = old.wrapping_add(val);
                        old
                    }

                    pub fn fetch_sub(&self, val: $t, _order: Ordering) -> $t {
                        crate::rt::preempt();
                        let mut g = lock(&self.v);
                        let old = *g;
                        *g = old.wrapping_sub(val);
                        old
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $t,
                        new: $t,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$t, $t> {
                        crate::rt::preempt();
                        let mut g = lock(&self.v);
                        if *g == current {
                            *g = new;
                            Ok(current)
                        } else {
                            Err(*g)
                        }
                    }
                }
            };
        }

        atomic_int!(AtomicUsize, usize);
        atomic_int!(AtomicU64, u64);
        atomic_int!(AtomicU32, u32);

        /// Model-checked atomic bool (SC-only, like the integers).
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            v: StdMutex<bool>,
        }

        impl AtomicBool {
            pub fn new(v: bool) -> AtomicBool {
                AtomicBool {
                    v: StdMutex::new(v),
                }
            }

            pub fn load(&self, _order: Ordering) -> bool {
                crate::rt::preempt();
                *lock(&self.v)
            }

            pub fn store(&self, val: bool, _order: Ordering) {
                crate::rt::preempt();
                *lock(&self.v) = val;
            }

            pub fn swap(&self, val: bool, _order: Ordering) -> bool {
                crate::rt::preempt();
                std::mem::replace(&mut *lock(&self.v), val)
            }

            pub fn fetch_or(&self, val: bool, _order: Ordering) -> bool {
                crate::rt::preempt();
                let mut g = lock(&self.v);
                let old = *g;
                *g = old | val;
                old
            }
        }
    }
}

// ---------------------------------------------------------------------------
// cell
// ---------------------------------------------------------------------------

pub mod cell {
    /// Loom-shaped `UnsafeCell`: raw access goes through closures so
    /// every touch is a scheduling point. Unlike real loom there is no
    /// vector-clock race detector — models assert on observable state.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T> {
        data: std::cell::UnsafeCell<T>,
    }

    impl<T> UnsafeCell<T> {
        pub fn new(value: T) -> UnsafeCell<T> {
            UnsafeCell {
                data: std::cell::UnsafeCell::new(value),
            }
        }

        /// Immutable raw access. Callers uphold the usual aliasing
        /// rules across threads (the pointer must not outlive `f`).
        pub fn with<F, R>(&self, f: F) -> R
        where
            F: FnOnce(*const T) -> R,
        {
            crate::rt::preempt();
            f(self.data.get())
        }

        /// Mutable raw access; same contract as [`UnsafeCell::with`].
        pub fn with_mut<F, R>(&self, f: F) -> R
        where
            F: FnOnce(*mut T) -> R,
        {
            crate::rt::preempt();
            f(self.data.get())
        }

        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::thread;

    #[test]
    fn atomic_counter_is_correct_in_all_interleavings() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    #[should_panic(expected = "loom model failed")]
    fn finds_lost_update() {
        // Non-atomic read-modify-write: some interleaving loses an
        // increment, and the checker must find that schedule.
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn finds_lock_order_inversion() {
        super::model(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock().unwrap();
                    let _gb = b.lock().unwrap();
                })
            };
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn condvar_handoff_never_loses_the_wakeup() {
        // check-then-wait under the mutex: if the model's condvar had a
        // lost-wakeup window this would deadlock in some schedule.
        super::model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let t = {
                let state = Arc::clone(&state);
                thread::spawn(move || {
                    let (flag, cv) = &*state;
                    let mut g = flag.lock().unwrap();
                    *g = true;
                    drop(g);
                    cv.notify_all();
                })
            };
            let (flag, cv) = &*state;
            let mut g = flag.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            t.join().unwrap();
        });
    }

    #[test]
    fn join_returns_the_thread_value() {
        super::model(|| {
            let t = thread::spawn(|| 41usize + 1);
            assert_eq!(t.join().unwrap(), 42);
        });
    }

    #[test]
    fn mutual_exclusion_holds() {
        // Two threads do read-modify-write under a mutex: unlike the
        // lost-update test, every interleaving must sum correctly.
        super::model(|| {
            let n = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let mut g = n.lock().unwrap();
                        let v = *g;
                        thread::yield_now();
                        *g = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        });
    }
}
