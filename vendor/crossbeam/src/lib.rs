//! Offline stub of `crossbeam`, backed by `std::thread::scope`.
//!
//! Only `crossbeam::thread::scope` + `Scope::spawn` are provided — the
//! subset this workspace uses for its CPU worker pools. Semantics match
//! crossbeam's: every spawned thread is joined before `scope` returns,
//! and a panicking worker surfaces as `Err` rather than a propagated
//! panic.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Scope handle passed to [`scope`] closures and to spawned workers.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped worker. The worker receives a scope handle so it
        /// may spawn further workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all and reports worker panics as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
