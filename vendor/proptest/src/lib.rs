//! Offline stub of `proptest`, providing the subset this workspace uses:
//! the `proptest!` macro, range/tuple/`any`/`collection::vec` strategies,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-case RNG; there is **no
//! shrinking** — a failing case reports its index and message and panics
//! immediately. That keeps the property tests meaningful (random-input
//! coverage, reproducible failures) without proptest's machinery.

pub mod test_runner {
    /// Per-test configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert!` family macros.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// `TestCaseError::Reject` analogue used by `prop_assume!`.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(format!("rejected: {}", msg.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-case RNG (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// One independent stream per `(test, case)` pair.
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                state: case
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values for one `proptest!` argument.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as f64;
                    let hi = self.end as f64;
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as f64;
                    let hi = *self.end() as f64;
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// `Just`-style constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Full-domain generation for primitive types (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1e12
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bound for [`vec`] — a concrete type (rather than a generic
    /// strategy) so unsuffixed literals like `0..4000` infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Vec strategy: element strategy × length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo) as u64;
            let n = self.len.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare deterministic property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..cfg.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                #[allow(unreachable_code)]
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!("proptest case #{__case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// `prop_assert!` — fail the current case (no shrinking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!` — equality assertion over borrowed operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// `prop_assert_ne!` — inequality assertion over borrowed operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __l
        );
    }};
}

/// `prop_assume!` — treat the case as vacuously passing when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_bounds(
            v in crate::collection::vec(any::<u8>(), 2..8),
            pairs in crate::collection::vec((any::<u64>(), 0u32..=4), 0..5),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(pairs.len() < 5);
            for &(_, n) in &pairs {
                prop_assert!(n <= 4);
            }
        }

        #[test]
        fn early_return_ok_compiles(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n.min(9), n);
        }
    }

    // The macro accepts any attribute set, so generate the failing
    // property as a plain fn and drive it from a should_panic test.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[allow(dead_code)]
        fn always_fails(_x in 0u32..4) {
            prop_assert!(false, "forced failure");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case() {
        always_fails();
    }
}
