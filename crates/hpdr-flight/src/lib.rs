//! # hpdr-flight — per-job causal tracing for the serving cluster
//!
//! PR 9's sharded cluster made job latency multi-causal: admission
//! queueing, off-home transfers, batching delays, node-failure
//! re-routing and retries all stack into one number. This crate makes
//! the attribution a first-class artifact:
//!
//! - [`TraceContext`] rides on every `JobRequest` and survives shard
//!   re-routes, transfers, batch launches, and retries.
//! - Each lifecycle transition is a typed [`JobEvent`] recorded into a
//!   fixed-capacity ring-buffer [`FlightRecorder`] per shard — cheap
//!   enough to leave on, and a black-box dump when a node dies.
//! - A deterministic tail-based sampler ([`analyze`]) keeps full event
//!   streams only for interesting jobs: p99 outliers against a
//!   streaming quantile sketch, all failures/timeouts/retries, and a
//!   seeded 1-in-N baseline.
//! - The causal analyzer decomposes each job's latency into an additive
//!   queue / placement / transfer / batch / service / retry breakdown
//!   that provably sums to the end-to-end virtual-time latency, plus
//!   per-tenant and per-shard blame tables.
//! - [`report::to_json`] emits the schema-validated `hpdr-flight/v1`
//!   document on the shared envelope; [`report::explain_lines`] renders
//!   `hpdr explain`.

pub mod analyze;
pub mod record;
pub mod report;

pub use analyze::{
    analyze, events_to_trace, sample_hash, Blackbox, BlameRow, FlightReport, JobSummary,
    FLIGHT_OP_BASE,
};
pub use record::{
    sort_events, FlightConfig, FlightLog, FlightRecorder, JobEvent, JobEventKind, TraceContext,
};
pub use report::{
    explain_lines, flight_section, parse_flight_rows, to_json, validate_flight_json, FlightRow,
    FLIGHT_SCHEMA,
};
