//! Causal analysis: additive latency breakdowns, the deterministic
//! tail-based sampler, and per-tenant / per-shard blame aggregation.
//!
//! The breakdown is exact by construction: stage boundaries are taken
//! from the event stream (last re-route → last placement → last
//! admission → last dispatch → terminal), clamped monotone, and the six
//! components telescope over those boundaries — so they sum to the
//! end-to-end virtual-time latency, asserted on every job.

use crate::record::{sort_events, FlightConfig, FlightLog, JobEvent, JobEventKind};
use hpdr_metrics::StreamingHistogram;
use hpdr_sim::{Engine, Ns, OpKind, SpanRecord, Trace};
use std::collections::BTreeMap;

/// Span-op namespace of flight-derived spans — above the cluster base
/// (`1 << 42`), so `merge_shard_traces` passes them through unchanged.
pub const FLIGHT_OP_BASE: usize = 1 << 43;

/// One job's causal summary: terminal state plus the six-way additive
/// latency decomposition (all virtual nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSummary {
    pub trace: u64,
    pub tenant: u32,
    /// Shard of the terminal event (where the job ended its life).
    pub shard: u32,
    /// Re-route generations survived (0 = never re-routed).
    pub hops: u32,
    pub outcome: &'static str,
    /// Terminal instant (sampler ordering key; not serialized).
    pub end: u64,
    /// `terminal − first submit`: the quantity the components sum to.
    pub latency: u64,
    /// Waiting admitted in a shard's queue before dispatch.
    pub queue: u64,
    /// Placement decision to admission (zero when both are instant).
    pub placement: u64,
    /// Off-home container fetch (placement → transfer-ready → admit).
    pub transfer: u64,
    /// Launch overhead + context setup of the dispatching batch.
    pub batch: u64,
    /// On-device service after the batch overhead.
    pub service: u64,
    /// Everything before the last re-route: the first hop's wasted
    /// queueing, service and re-fetch time.
    pub retry: u64,
    pub sampled: bool,
    pub why: &'static str,
}

impl JobSummary {
    pub fn components_sum(&self) -> u64 {
        self.queue + self.placement + self.transfer + self.batch + self.service + self.retry
    }
}

/// Aggregated blame row (per tenant or per shard): component sums over
/// every analyzed job with that key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlameRow {
    pub key: u32,
    pub jobs: u64,
    pub latency: u64,
    pub queue: u64,
    pub placement: u64,
    pub transfer: u64,
    pub batch: u64,
    pub service: u64,
    pub retry: u64,
}

impl BlameRow {
    fn add(&mut self, j: &JobSummary) {
        self.jobs += 1;
        self.latency += j.latency;
        self.queue += j.queue;
        self.placement += j.placement;
        self.transfer += j.transfer;
        self.batch += j.batch;
        self.service += j.service;
        self.retry += j.retry;
    }
}

/// The dying shard's ring buffer, dumped at the failure instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blackbox {
    pub shard: u32,
    pub log: FlightLog,
}

/// The full `hpdr-flight/v1` analysis of one run.
#[derive(Debug, Clone)]
pub struct FlightReport {
    pub total_jobs: u64,
    pub sampled: u64,
    /// Events the ring buffers overwrote before analysis.
    pub dropped: u64,
    pub sample_every: u64,
    /// Final p99 of the streaming latency sketch the sampler ran.
    pub p99: u64,
    /// One row per job (every job, not only sampled ones — `explain
    /// --worst` must rank the true population), sorted by trace id.
    pub rows: Vec<JobSummary>,
    /// Full event streams of the sampled jobs, sorted by trace id.
    pub events: Vec<(u64, Vec<JobEvent>)>,
    pub blame_tenant: Vec<BlameRow>,
    pub blame_shard: Vec<BlameRow>,
    pub blackbox: Option<Blackbox>,
}

impl FlightReport {
    /// The envelope `ok` flag: every row's components sum exactly to
    /// its latency (the additive-breakdown invariant).
    pub fn ok(&self) -> bool {
        self.rows.iter().all(|r| r.components_sum() == r.latency)
    }

    /// Exemplar trace ids of the sampled jobs, worst latency first —
    /// what metric spikes link to.
    pub fn exemplars(&self, n: usize) -> Vec<u64> {
        let mut sampled: Vec<&JobSummary> = self.rows.iter().filter(|r| r.sampled).collect();
        sampled.sort_by_key(|r| (std::cmp::Reverse(r.latency), r.trace));
        sampled.iter().take(n).map(|r| r.trace).collect()
    }
}

/// Deterministic per-trace sampling hash (FNV-1a over the trace id,
/// seeded).
pub fn sample_hash(seed: u64, trace: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x0100_0000_01b3);
    for b in trace.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Analyze one job's (sorted) event stream into its summary row.
fn analyze_trace(events: &[JobEvent]) -> JobSummary {
    debug_assert!(!events.is_empty());
    let t0 = events.first().map_or(0, |e| e.at.0);
    let terminal = events.iter().rev().find(|e| e.kind.is_terminal());
    let (end, outcome, shard) = match terminal {
        Some(t) => (
            t.at.0,
            match t.kind {
                JobEventKind::Complete => "completed",
                JobEventKind::TimedOut => "timed_out",
                JobEventKind::Cancelled => "cancelled",
                JobEventKind::Failed => "failed",
                _ => "rejected",
            },
            t.shard,
        ),
        // A job still in flight when the recorder was drained (or whose
        // early events the ring overwrote): close it at its last event.
        None => (
            events.last().map_or(t0, |e| e.at.0),
            "open",
            events.last().map_or(u32::MAX, |e| e.shard),
        ),
    };
    let last = |pred: &dyn Fn(&JobEvent) -> bool| -> Option<&JobEvent> {
        events.iter().rev().find(|e| pred(e) && e.at.0 <= end)
    };
    // Stage boundaries, clamped monotone into [t0, end] so the six
    // components telescope exactly even for degenerate streams.
    let r = last(&|e| matches!(e.kind, JobEventKind::Reroute { .. }))
        .map_or(t0, |e| e.at.0)
        .clamp(t0, end);
    let p = last(&|e| matches!(e.kind, JobEventKind::Place { .. }))
        .map_or(r, |e| e.at.0)
        .clamp(r, end);
    let a = last(&|e| matches!(e.kind, JobEventKind::Admit))
        .map_or(p, |e| e.at.0)
        .clamp(p, end);
    let dispatch = last(&|e| matches!(e.kind, JobEventKind::Dispatch { .. }));
    let d = dispatch.map_or(end, |e| e.at.0).clamp(a, end);
    let overhead = dispatch.map_or(0, |e| match e.kind {
        JobEventKind::Dispatch { overhead_ns, .. } => overhead_ns,
        _ => 0,
    });
    let batch = overhead.min(end - d);
    let summary = JobSummary {
        trace: events[0].trace,
        tenant: events[0].tenant,
        shard,
        hops: events.iter().map(|e| e.hop).max().unwrap_or(0),
        outcome,
        end,
        latency: end - t0,
        queue: d - a,
        placement: p - r,
        transfer: a - p,
        batch,
        service: (end - d) - batch,
        retry: r - t0,
        sampled: false,
        why: "",
    };
    assert_eq!(
        summary.components_sum(),
        summary.latency,
        "breakdown of trace {} must sum to its latency",
        summary.trace
    );
    summary
}

/// Run the full causal analysis over a merged flight log.
///
/// The sampler walks jobs in terminal order (the order a live system
/// would see them finish) feeding a streaming quantile sketch, and
/// keeps the full event stream of every failure/timeout/cancel, every
/// re-routed job, every p99 outlier, and a seeded 1-in-N baseline.
pub fn analyze(log: &FlightLog, cfg: &FlightConfig, blackbox: Option<Blackbox>) -> FlightReport {
    let mut events = log.events.clone();
    sort_events(&mut events);
    let mut by_trace: BTreeMap<u64, Vec<JobEvent>> = BTreeMap::new();
    for e in &events {
        by_trace.entry(e.trace).or_default().push(*e);
    }
    let mut rows: Vec<JobSummary> = by_trace.values().map(|evs| analyze_trace(evs)).collect();

    // Tail-based sampling in completion order.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&i| (rows[i].end, rows[i].trace));
    let mut sketch = StreamingHistogram::new();
    for (seen, i) in order.into_iter().enumerate() {
        let row = &mut rows[i];
        // `u64::is_multiple_of` postdates the workspace MSRV (1.77).
        #[allow(clippy::manual_is_multiple_of)]
        let baseline_hit = sample_hash(cfg.seed, row.trace) % cfg.sample_every.max(1) == 0;
        let (sampled, why) = if row.outcome != "completed" {
            (true, "failure")
        } else if row.hops > 0 {
            (true, "retry")
        } else if seen as u64 >= cfg.outlier_min_count && row.latency > sketch.quantile(0.99) {
            (true, "outlier")
        } else if baseline_hit {
            (true, "baseline")
        } else {
            (false, "")
        };
        row.sampled = sampled;
        row.why = why;
        sketch.record(row.latency);
    }

    let mut blame_tenant: BTreeMap<u32, BlameRow> = BTreeMap::new();
    let mut blame_shard: BTreeMap<u32, BlameRow> = BTreeMap::new();
    for r in &rows {
        blame_tenant.entry(r.tenant).or_default().add(r);
        blame_shard.entry(r.shard).or_default().add(r);
    }
    let finish = |m: BTreeMap<u32, BlameRow>| -> Vec<BlameRow> {
        m.into_iter()
            .map(|(k, mut v)| {
                v.key = k;
                v
            })
            .collect()
    };

    let sampled_events: Vec<(u64, Vec<JobEvent>)> = rows
        .iter()
        .filter(|r| r.sampled)
        .map(|r| (r.trace, by_trace[&r.trace].clone()))
        .collect();

    FlightReport {
        total_jobs: rows.len() as u64,
        sampled: rows.iter().filter(|r| r.sampled).count() as u64,
        dropped: log.dropped,
        sample_every: cfg.sample_every,
        p99: sketch.quantile(0.99),
        rows,
        events: sampled_events,
        blame_tenant: finish(blame_tenant),
        blame_shard: finish(blame_shard),
        blackbox,
    }
}

/// Bridge a flight log into trace spans: one span per job, op-numbered
/// in the flight namespace (≥ 2^43, disjoint from job/reject/alert and
/// cluster spans under `merge_shard_traces`), `ready` at submission,
/// `start` at dispatch, `end` at the terminal instant.
pub fn events_to_trace(log: &FlightLog) -> Trace {
    let mut events = log.events.clone();
    sort_events(&mut events);
    let mut by_trace: BTreeMap<u64, Vec<JobEvent>> = BTreeMap::new();
    for e in &events {
        by_trace.entry(e.trace).or_default().push(*e);
    }
    let spans = by_trace
        .values()
        .map(|evs| {
            let row = analyze_trace(evs);
            let t0 = evs.first().map_or(0, |e| e.at.0);
            let start = evs
                .iter()
                .rev()
                .find(|e| matches!(e.kind, JobEventKind::Dispatch { .. }))
                .map_or(t0, |e| e.at.0);
            SpanRecord {
                op: FLIGHT_OP_BASE + row.trace as usize,
                // Deliberately not the scheduler's "job[…] completed"
                // shape: job_span_stats must not double-count these.
                label: format!("flight[{}]={}", row.trace, row.outcome),
                engine: Engine::Host,
                queue: None,
                deps: vec![],
                kind: OpKind::Fixed,
                class: None,
                start: Ns(start.min(row.end)),
                end: Ns(row.end),
                bytes: 0,
                footprint_bytes: 0,
                ready: Ns(t0),
                wall: Ns::ZERO,
            }
        })
        .collect();
    Trace::from_spans(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, trace: u64, hop: u32, shard: u32, kind: JobEventKind) -> JobEvent {
        JobEvent {
            at: Ns(at),
            trace,
            hop,
            shard,
            tenant: trace as u32 % 4,
            kind,
        }
    }

    fn place(target: u32) -> JobEventKind {
        JobEventKind::Place {
            target,
            preferred: target,
            steal: false,
        }
    }

    /// A re-routed job with a transfer on its second hop: submit@100,
    /// first hop dies, reroute@500, place@500, xfer 500→700, admit@700,
    /// dispatch@900 (overhead 50), complete@1000.
    fn rerouted_stream() -> Vec<JobEvent> {
        vec![
            ev(100, 1, 0, u32::MAX, JobEventKind::Submit),
            ev(100, 1, 0, 0, place(0)),
            ev(100, 1, 0, 0, JobEventKind::Admit),
            ev(500, 1, 0, 0, JobEventKind::Failed),
            ev(500, 1, 1, 1, JobEventKind::Reroute { attempt: 1 }),
            ev(500, 1, 1, 1, place(1)),
            ev(
                500,
                1,
                1,
                1,
                JobEventKind::XferStart {
                    bytes: 4096,
                    xfer_ns: 150,
                    metadata_ns: 50,
                },
            ),
            ev(700, 1, 1, 1, JobEventKind::XferReady),
            ev(700, 1, 1, 1, JobEventKind::Admit),
            ev(
                900,
                1,
                1,
                1,
                JobEventKind::Dispatch {
                    device: 0,
                    overhead_ns: 50,
                },
            ),
            ev(1000, 1, 1, 1, JobEventKind::Complete),
        ]
    }

    #[test]
    fn rerouted_breakdown_sums_and_attributes_retry() {
        let row = analyze_trace(&rerouted_stream());
        assert_eq!(row.latency, 900);
        assert_eq!(row.retry, 400, "everything before the re-route");
        assert_eq!(row.transfer, 200, "xfer wait on the second hop");
        assert_eq!(row.queue, 200, "admit@700 → dispatch@900");
        assert_eq!(row.batch, 50);
        assert_eq!(row.service, 50);
        assert_eq!(row.placement, 0);
        assert_eq!(row.components_sum(), row.latency);
        assert_eq!(row.outcome, "completed");
        assert_eq!(row.hops, 1);
        assert_eq!(row.shard, 1, "blamed on the shard that finished it");
    }

    #[test]
    fn rejected_job_collapses_to_zero_components() {
        let row = analyze_trace(&[
            ev(50, 2, 0, u32::MAX, JobEventKind::Submit),
            ev(50, 2, 0, 0, JobEventKind::Reject),
        ]);
        assert_eq!(row.outcome, "rejected");
        assert_eq!(row.latency, 0);
        assert_eq!(row.components_sum(), 0);
    }

    #[test]
    fn queued_cancel_charges_queue_only() {
        let row = analyze_trace(&[
            ev(0, 3, 0, 0, JobEventKind::Submit),
            ev(0, 3, 0, 0, JobEventKind::Admit),
            ev(400, 3, 0, 0, JobEventKind::Cancelled),
        ]);
        assert_eq!(row.outcome, "cancelled");
        assert_eq!(row.queue, 400);
        assert_eq!(row.service, 0);
        assert_eq!(row.components_sum(), row.latency);
    }

    #[test]
    fn sampler_keeps_failures_retries_and_baseline() {
        let mut log = FlightLog::default();
        // 64 plain completed jobs + one failure.
        for t in 0..64u64 {
            log.events.push(ev(t * 10, t, 0, 0, JobEventKind::Submit));
            log.events.push(ev(t * 10, t, 0, 0, JobEventKind::Admit));
            log.events
                .push(ev(t * 10 + 100, t, 0, 0, JobEventKind::Complete));
        }
        log.events.push(ev(900, 99, 0, 0, JobEventKind::Submit));
        log.events.push(ev(950, 99, 0, 0, JobEventKind::Failed));
        let cfg = FlightConfig::default();
        let report = analyze(&log, &cfg, None);
        assert!(report.ok());
        assert_eq!(report.total_jobs, 65);
        let failure = report.rows.iter().find(|r| r.trace == 99).unwrap();
        assert!(failure.sampled);
        assert_eq!(failure.why, "failure");
        // The seeded 1-in-N baseline keeps some completed jobs, and
        // every sampled row carries its full event stream.
        assert!(report.sampled > 1);
        assert_eq!(report.events.len(), report.sampled as usize);
        for (trace, evs) in &report.events {
            assert!(evs.iter().all(|e| e.trace == *trace));
        }
        // Deterministic: the same log analyzes identically.
        let again = analyze(&log, &cfg, None);
        assert_eq!(report.rows, again.rows);
    }

    #[test]
    fn outlier_rule_arms_after_min_count() {
        let mut log = FlightLog::default();
        // 40 fast jobs, then one 100× slower straggler.
        for t in 0..40u64 {
            log.events.push(ev(t * 10, t, 0, 0, JobEventKind::Submit));
            log.events
                .push(ev(t * 10 + 20, t, 0, 0, JobEventKind::Complete));
        }
        log.events.push(ev(500, 77, 0, 0, JobEventKind::Submit));
        log.events.push(ev(2500, 77, 0, 0, JobEventKind::Complete));
        let cfg = FlightConfig {
            sample_every: u64::MAX, // baseline off: isolate the outlier rule
            ..FlightConfig::default()
        };
        let report = analyze(&log, &cfg, None);
        let straggler = report.rows.iter().find(|r| r.trace == 77).unwrap();
        assert!(straggler.sampled);
        assert_eq!(straggler.why, "outlier");
        assert_eq!(report.sampled, 1);
    }

    #[test]
    fn blame_tables_cover_every_job() {
        let log = FlightLog {
            events: rerouted_stream(),
            dropped: 0,
        };
        let report = analyze(&log, &FlightConfig::default(), None);
        assert_eq!(report.blame_tenant.iter().map(|b| b.jobs).sum::<u64>(), 1);
        assert_eq!(report.blame_shard[0].key, 1);
        assert_eq!(report.blame_shard[0].retry, 400);
        let total: u64 = report.blame_shard.iter().map(|b| b.latency).sum();
        assert_eq!(total, 900);
    }

    #[test]
    fn exemplars_rank_sampled_jobs_by_latency() {
        let mut log = FlightLog::default();
        for (t, lat) in [(1u64, 300u64), (2, 900), (3, 600)] {
            log.events.push(ev(0, t, 0, 0, JobEventKind::Submit));
            log.events.push(ev(lat, t, 0, 0, JobEventKind::Failed));
        }
        let report = analyze(&log, &FlightConfig::default(), None);
        assert_eq!(report.exemplars(2), vec![2, 3]);
    }

    #[test]
    fn span_bridge_emits_flight_namespace_ops() {
        let log = FlightLog {
            events: rerouted_stream(),
            dropped: 0,
        };
        let trace = events_to_trace(&log);
        assert_eq!(trace.spans().len(), 1);
        let s = &trace.spans()[0];
        assert_eq!(s.op, FLIGHT_OP_BASE + 1);
        assert_eq!(s.ready, Ns(100));
        assert_eq!(s.start, Ns(900));
        assert_eq!(s.end, Ns(1000));
        assert!(s.label.contains("completed"));
        assert!(!s.label.ends_with(" completed"), "{}", s.label);
    }
}
