//! Trace contexts, typed job lifecycle events, and the fixed-capacity
//! flight recorder.
//!
//! Every [`JobEvent`] is stamped with virtual time, so recording is
//! deterministic: the same seed and job stream produce byte-identical
//! event streams. The recorder is a bounded ring — under overload it
//! overwrites the oldest events and counts the loss instead of growing,
//! which is what makes it safe to leave on in production serving.

use hpdr_sim::Ns;

/// Per-job causal trace context carried on every `JobRequest`.
///
/// `trace` names the job across shards, transfers and re-routes;
/// `parent` is the causal predecessor (the same trace id for retry
/// hops — a re-route continues the job, it does not fork it); `hop`
/// counts re-route generations (0 = the original placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace: u64,
    pub parent: u64,
    pub hop: u32,
}

impl TraceContext {
    /// A request that no recorder has claimed yet. Schedulers assign a
    /// root context at submission when flight recording is on.
    pub const UNASSIGNED: TraceContext = TraceContext {
        trace: u64::MAX,
        parent: u64::MAX,
        hop: 0,
    };

    /// Root context of a newly submitted job.
    pub fn root(trace: u64) -> TraceContext {
        TraceContext {
            trace,
            parent: trace,
            hop: 0,
        }
    }

    pub fn is_assigned(&self) -> bool {
        self.trace != u64::MAX
    }

    /// The context of the next re-route hop: same trace id, causal
    /// parent pinned to the originating context, hop incremented.
    pub fn retry(self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            parent: self.trace,
            hop: self.hop + 1,
        }
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::UNASSIGNED
    }
}

/// Lifecycle transition of one job. The variants carry only the data
/// the causal analyzer cannot recover from neighbouring events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEventKind {
    /// Popped from the logical source (cluster) or handed to a
    /// single-node scheduler with no context assigned yet.
    Submit,
    /// Admission control accepted the job into a shard's queue.
    Admit,
    /// Admission control turned the job away (terminal).
    Reject,
    /// Placement decision: `target` won, `preferred` was the policy's
    /// first choice, `steal` marks a spill-over past backpressure.
    Place {
        target: u32,
        preferred: u32,
        steal: bool,
    },
    /// Off-home container fetch started (`xfer_ns`/`metadata_ns` split
    /// from the `hpdr-io` filesystem cost model).
    XferStart {
        bytes: u64,
        xfer_ns: u64,
        metadata_ns: u64,
    },
    /// The fetched container became resident; the job joined the queue.
    XferReady,
    /// Node failure drained the job; attempt `attempt` re-places it.
    Reroute {
        attempt: u32,
    },
    /// Batched launch on `device`; `overhead_ns` is the launch +
    /// context-setup cost charged before service starts.
    Dispatch {
        device: u32,
        overhead_ns: u64,
    },
    Complete,
    TimedOut,
    Cancelled,
    Failed,
}

impl JobEventKind {
    pub fn name(&self) -> &'static str {
        match self {
            JobEventKind::Submit => "submit",
            JobEventKind::Admit => "admit",
            JobEventKind::Reject => "reject",
            JobEventKind::Place { .. } => "place",
            JobEventKind::XferStart { .. } => "xfer_start",
            JobEventKind::XferReady => "xfer_ready",
            JobEventKind::Reroute { .. } => "reroute",
            JobEventKind::Dispatch { .. } => "dispatch",
            JobEventKind::Complete => "complete",
            JobEventKind::TimedOut => "timed_out",
            JobEventKind::Cancelled => "cancelled",
            JobEventKind::Failed => "failed",
        }
    }

    /// Whether this kind ends a job's life on its current hop.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEventKind::Reject
                | JobEventKind::Complete
                | JobEventKind::TimedOut
                | JobEventKind::Cancelled
                | JobEventKind::Failed
        )
    }

    /// Same-instant ordering rank: causally earlier transitions sort
    /// first when several events share one virtual instant, so the
    /// merged stream reads like the job actually progressed.
    pub fn rank(&self) -> u8 {
        match self {
            JobEventKind::Submit => 0,
            JobEventKind::Reroute { .. } => 1,
            JobEventKind::Place { .. } => 2,
            JobEventKind::XferStart { .. } => 3,
            JobEventKind::XferReady => 4,
            JobEventKind::Admit => 5,
            JobEventKind::Reject => 6,
            JobEventKind::Dispatch { .. } => 7,
            JobEventKind::Complete
            | JobEventKind::TimedOut
            | JobEventKind::Cancelled
            | JobEventKind::Failed => 8,
        }
    }
}

/// One recorded lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEvent {
    /// Virtual instant of the transition.
    pub at: Ns,
    pub trace: u64,
    pub hop: u32,
    /// Shard that recorded the event (`u32::MAX` for cluster-level
    /// events with no target shard).
    pub shard: u32,
    pub tenant: u32,
    pub kind: JobEventKind,
}

/// Sort a merged event stream deterministically: by instant, then
/// trace, then hop, then the causal rank of the transition. The result
/// is independent of which recorder the events came from.
pub fn sort_events(events: &mut [JobEvent]) {
    events.sort_by_key(|e| (e.at, e.trace, e.hop, e.kind.rank()));
}

/// Flight-recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Ring capacity in events; the oldest events are overwritten (and
    /// counted in [`FlightLog::dropped`]) past this.
    pub capacity: usize,
    /// Seeded 1-in-N baseline sampling of uninteresting jobs.
    pub sample_every: u64,
    /// Latency samples the streaming sketch must see before the p99
    /// outlier rule arms (early jobs have no stable quantile to beat).
    pub outlier_min_count: u64,
    /// Seed of the baseline sampler hash.
    pub seed: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 1 << 16,
            sample_every: 16,
            outlier_min_count: 32,
            seed: 7,
        }
    }
}

/// The drained contents of one recorder: events in record order plus
/// the overwrite count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightLog {
    pub events: Vec<JobEvent>,
    pub dropped: u64,
}

impl FlightLog {
    /// Merge another log into this one (shard logs into a cluster log).
    pub fn merge(&mut self, other: FlightLog) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
    }
}

/// Fixed-capacity ring-buffer event recorder (one per shard).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: std::collections::VecDeque<JobEvent>,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            ring: std::collections::VecDeque::with_capacity(cfg.capacity.max(1)),
            cfg,
            dropped: 0,
        }
    }

    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// Record one event, overwriting the oldest past capacity.
    pub fn record(&mut self, event: JobEvent) {
        if self.ring.len() >= self.cfg.capacity.max(1) {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// Copy the ring as it stands — the black-box dump taken at the
    /// instant a node dies.
    pub fn snapshot(&self) -> FlightLog {
        FlightLog {
            events: self.ring.iter().copied().collect(),
            dropped: self.dropped,
        }
    }

    /// Drain the recorder into its final log.
    pub fn into_log(self) -> FlightLog {
        FlightLog {
            events: self.ring.into_iter().collect(),
            dropped: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, trace: u64, kind: JobEventKind) -> JobEvent {
        JobEvent {
            at: Ns(at),
            trace,
            hop: 0,
            shard: 0,
            tenant: 0,
            kind,
        }
    }

    #[test]
    fn context_assignment_and_retry_hops() {
        let c = TraceContext::UNASSIGNED;
        assert!(!c.is_assigned());
        let r = TraceContext::root(7);
        assert!(r.is_assigned());
        assert_eq!(r.parent, 7);
        assert_eq!(r.hop, 0);
        let again = r.retry().retry();
        assert_eq!(again.trace, 7);
        assert_eq!(again.hop, 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut rec = FlightRecorder::new(FlightConfig {
            capacity: 3,
            ..FlightConfig::default()
        });
        for i in 0..5 {
            rec.record(ev(i, i, JobEventKind::Submit));
        }
        let log = rec.into_log();
        assert_eq!(log.dropped, 2);
        assert_eq!(
            log.events.iter().map(|e| e.at.0).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn sort_orders_same_instant_events_causally() {
        let mut events = vec![
            ev(10, 1, JobEventKind::Admit),
            ev(10, 1, JobEventKind::Submit),
            ev(
                10,
                1,
                JobEventKind::Place {
                    target: 0,
                    preferred: 0,
                    steal: false,
                },
            ),
            ev(5, 2, JobEventKind::Submit),
        ];
        sort_events(&mut events);
        assert_eq!(events[0].trace, 2);
        assert_eq!(events[1].kind.name(), "submit");
        assert_eq!(events[2].kind.name(), "place");
        assert_eq!(events[3].kind.name(), "admit");
    }
}
