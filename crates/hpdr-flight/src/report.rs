//! The `hpdr-flight/v1` report document: hand-rolled JSON on the shared
//! envelope, its validator, the row parser `hpdr explain` runs on, and
//! the human-readable explanation renderer.
//!
//! Every serialized quantity is an integer (virtual nanoseconds or
//! counts), so same-seed runs produce byte-identical documents — the
//! determinism gate in `scripts/check.sh` `cmp`s two of them.

use crate::analyze::{BlameRow, FlightReport};
use crate::record::{JobEvent, JobEventKind};
use hpdr_verify::envelope::{esc, read_header, wrap};

/// Schema tag of flight reports.
pub const FLIGHT_SCHEMA: &str = "hpdr-flight/v1";

fn blame_json(b: &BlameRow) -> String {
    format!(
        "{{\"key\":{},\"jobs\":{},\"latency_ns\":{},\"queue_ns\":{},\"placement_ns\":{},\
         \"transfer_ns\":{},\"batch_ns\":{},\"service_ns\":{},\"retry_ns\":{}}}",
        b.key, b.jobs, b.latency, b.queue, b.placement, b.transfer, b.batch, b.service, b.retry
    )
}

fn event_json(e: &JobEvent) -> String {
    let mut extra = String::new();
    match e.kind {
        JobEventKind::Place {
            target,
            preferred,
            steal,
        } => extra = format!(",\"target\":{target},\"preferred\":{preferred},\"steal\":{steal}"),
        JobEventKind::XferStart {
            bytes,
            xfer_ns,
            metadata_ns,
        } => {
            extra =
                format!(",\"bytes\":{bytes},\"xfer_ns\":{xfer_ns},\"metadata_ns\":{metadata_ns}")
        }
        JobEventKind::Reroute { attempt } => extra = format!(",\"attempt\":{attempt}"),
        JobEventKind::Dispatch {
            device,
            overhead_ns,
        } => extra = format!(",\"device\":{device},\"overhead_ns\":{overhead_ns}"),
        _ => {}
    }
    format!(
        "{{\"at_ns\":{},\"shard\":{},\"hop\":{},\"kind\":\"{}\"{extra}}}",
        e.at.0,
        e.shard,
        e.hop,
        e.kind.name()
    )
}

/// Render a flight report as an `hpdr-flight/v1` envelope document.
///
/// Layout contract the row parser relies on: `jobs_table` rows are
/// single-line `{"trace":…}` objects with no nested braces, and the
/// table precedes the `events` section.
pub fn to_json(report: &FlightReport) -> String {
    let mut p = String::new();
    p.push('\n');
    p.push_str(&format!("  \"jobs\": {},\n", report.total_jobs));
    p.push_str(&format!("  \"sampled\": {},\n", report.sampled));
    p.push_str(&format!("  \"dropped\": {},\n", report.dropped));
    p.push_str(&format!("  \"sample_every\": {},\n", report.sample_every));
    p.push_str(&format!("  \"p99_ns\": {},\n", report.p99));
    for (key, rows) in [
        ("blame_by_tenant", &report.blame_tenant),
        ("blame_by_shard", &report.blame_shard),
    ] {
        if rows.is_empty() {
            p.push_str(&format!("  \"{key}\": [],\n"));
        } else {
            p.push_str(&format!("  \"{key}\": [\n"));
            for (i, b) in rows.iter().enumerate() {
                let comma = if i + 1 < rows.len() { "," } else { "" };
                p.push_str(&format!("    {}{comma}\n", blame_json(b)));
            }
            p.push_str("  ],\n");
        }
    }
    if report.rows.is_empty() {
        p.push_str("  \"jobs_table\": [],\n");
    } else {
        p.push_str("  \"jobs_table\": [\n");
        for (i, r) in report.rows.iter().enumerate() {
            let comma = if i + 1 < report.rows.len() { "," } else { "" };
            p.push_str(&format!(
                "    {{\"trace\":{},\"tenant\":{},\"shard\":{},\"hops\":{},\"outcome\":\"{}\",\
                 \"latency_ns\":{},\"queue_ns\":{},\"placement_ns\":{},\"transfer_ns\":{},\
                 \"batch_ns\":{},\"service_ns\":{},\"retry_ns\":{},\"sampled\":{},\"why\":\"{}\"}}{comma}\n",
                r.trace,
                r.tenant,
                r.shard,
                r.hops,
                esc(r.outcome),
                r.latency,
                r.queue,
                r.placement,
                r.transfer,
                r.batch,
                r.service,
                r.retry,
                r.sampled,
                esc(r.why)
            ));
        }
        p.push_str("  ],\n");
    }
    if report.events.is_empty() {
        p.push_str("  \"events\": [],\n");
    } else {
        p.push_str("  \"events\": [\n");
        for (i, (trace, evs)) in report.events.iter().enumerate() {
            let comma = if i + 1 < report.events.len() { "," } else { "" };
            let body: Vec<String> = evs.iter().map(event_json).collect();
            p.push_str(&format!(
                "    {{\"trace\":{trace},\"events\":[{}]}}{comma}\n",
                body.join(",")
            ));
        }
        p.push_str("  ],\n");
    }
    match &report.blackbox {
        Some(b) => {
            let body: Vec<String> = b.log.events.iter().map(event_json).collect();
            p.push_str(&format!(
                "  \"blackbox\": {{\"shard\":{},\"dropped\":{},\"events\":[{}]}}\n",
                b.shard,
                b.log.dropped,
                body.join(",")
            ));
        }
        None => p.push_str("  \"blackbox\": null\n"),
    }
    wrap(FLIGHT_SCHEMA, report.ok(), &p)
}

/// One parsed `jobs_table` row (what `hpdr explain` renders).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRow {
    pub trace: u64,
    pub tenant: u32,
    pub shard: u32,
    pub hops: u32,
    pub outcome: String,
    pub latency_ns: u64,
    pub queue_ns: u64,
    pub placement_ns: u64,
    pub transfer_ns: u64,
    pub batch_ns: u64,
    pub service_ns: u64,
    pub retry_ns: u64,
    pub sampled: bool,
    pub why: String,
}

impl FlightRow {
    pub fn components_sum(&self) -> u64 {
        self.queue_ns
            + self.placement_ns
            + self.transfer_ns
            + self.batch_ns
            + self.service_ns
            + self.retry_ns
    }
}

/// Locate the `hpdr-flight/v1` sub-document inside `doc` — `doc` may be
/// a standalone flight report or a cluster report embedding one.
pub fn flight_section(doc: &str) -> Option<&str> {
    let at = doc.find("{\"schema\":\"hpdr-flight/v1\"")?;
    Some(&doc[at..])
}

fn scan_u64(obj: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = obj
        .find(&pat)
        .ok_or_else(|| format!("flight document is missing '{key}'"))?
        + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("flight '{key}' is not a number: {e}"))
}

fn scan_str(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":");
    let at = obj
        .find(&pat)
        .ok_or_else(|| format!("flight document is missing '{key}'"))?
        + pat.len();
    let rest = obj[at..]
        .trim_start()
        .strip_prefix('"')
        .ok_or_else(|| format!("flight '{key}' is not a string"))?;
    let end = rest
        .find('"')
        .ok_or_else(|| format!("flight '{key}' is unterminated"))?;
    Ok(rest[..end].to_string())
}

fn scan_bool(obj: &str, key: &str) -> Result<bool, String> {
    let pat = format!("\"{key}\":");
    let at = obj
        .find(&pat)
        .ok_or_else(|| format!("flight document is missing '{key}'"))?
        + pat.len();
    let rest = obj[at..].trim_start();
    if rest.starts_with("true") {
        Ok(true)
    } else if rest.starts_with("false") {
        Ok(false)
    } else {
        Err(format!("flight '{key}' is not a boolean"))
    }
}

fn parse_row(obj: &str) -> Result<FlightRow, String> {
    Ok(FlightRow {
        trace: scan_u64(obj, "trace")?,
        tenant: scan_u64(obj, "tenant")? as u32,
        shard: scan_u64(obj, "shard")? as u32,
        hops: scan_u64(obj, "hops")? as u32,
        outcome: scan_str(obj, "outcome")?,
        latency_ns: scan_u64(obj, "latency_ns")?,
        queue_ns: scan_u64(obj, "queue_ns")?,
        placement_ns: scan_u64(obj, "placement_ns")?,
        transfer_ns: scan_u64(obj, "transfer_ns")?,
        batch_ns: scan_u64(obj, "batch_ns")?,
        service_ns: scan_u64(obj, "service_ns")?,
        retry_ns: scan_u64(obj, "retry_ns")?,
        sampled: scan_bool(obj, "sampled")?,
        why: scan_str(obj, "why")?,
    })
}

/// Parse every `jobs_table` row of the flight section in `doc`.
/// Indentation-independent, so it works on standalone reports and on
/// the re-indented copy a cluster report embeds.
pub fn parse_flight_rows(doc: &str) -> Result<Vec<FlightRow>, String> {
    let sec = flight_section(doc).ok_or("document carries no hpdr-flight/v1 section")?;
    let table_at = sec
        .find("\"jobs_table\":")
        .ok_or("flight section has no jobs_table")?;
    let after = &sec[table_at..];
    let table = &after[..after.find("\"events\":").unwrap_or(after.len())];
    let mut rows = Vec::new();
    let mut at = 0;
    while let Some(pos) = table[at..].find("{\"trace\":") {
        let start = at + pos;
        let end = table[start..]
            .find('}')
            .ok_or("unterminated jobs_table row")?
            + start
            + 1;
        rows.push(parse_row(&table[start..end])?);
        at = end;
    }
    Ok(rows)
}

/// Validate an `hpdr-flight/v1` document (standalone or embedded):
/// envelope header, required keys, and — the core invariant — every
/// row's components sum exactly to its end-to-end latency.
pub fn validate_flight_json(doc: &str) -> Result<(), String> {
    let sec = flight_section(doc).ok_or("document carries no hpdr-flight/v1 section")?;
    let ok = read_header(sec, FLIGHT_SCHEMA)?;
    if !ok {
        return Err("flight report envelope is not ok".to_string());
    }
    for key in [
        "jobs",
        "sampled",
        "dropped",
        "sample_every",
        "p99_ns",
        "blame_by_tenant",
        "blame_by_shard",
        "jobs_table",
        "events",
        "blackbox",
    ] {
        if !sec.contains(&format!("\"{key}\":")) {
            return Err(format!("flight document is missing '{key}'"));
        }
    }
    let rows = parse_flight_rows(sec)?;
    if rows.len() as u64 != scan_u64(sec, "jobs")? {
        return Err("flight 'jobs' does not match the jobs_table row count".to_string());
    }
    let sampled = rows.iter().filter(|r| r.sampled).count() as u64;
    if sampled != scan_u64(sec, "sampled")? {
        return Err("flight 'sampled' does not match the sampled row count".to_string());
    }
    for r in &rows {
        if r.components_sum() != r.latency_ns {
            return Err(format!(
                "trace {}: breakdown components sum to {} but latency is {}",
                r.trace,
                r.components_sum(),
                r.latency_ns
            ));
        }
    }
    Ok(())
}

fn shard_label(shard: u32) -> String {
    if shard == u32::MAX {
        "-".to_string()
    } else {
        shard.to_string()
    }
}

fn push_row(lines: &mut Vec<String>, rank: Option<usize>, r: &FlightRow) {
    let head = rank.map_or(String::new(), |n| format!("#{n} "));
    lines.push(format!(
        "{head}trace {} tenant={} shard={} outcome={} hops={} latency={} ns",
        r.trace,
        r.tenant,
        shard_label(r.shard),
        r.outcome,
        r.hops,
        r.latency_ns
    ));
    let tag = if r.sampled {
        format!(" [sampled: {}]", r.why)
    } else {
        String::new()
    };
    lines.push(format!(
        "   queue={} placement={} transfer={} batch={} service={} retry={}{tag}",
        r.queue_ns, r.placement_ns, r.transfer_ns, r.batch_ns, r.service_ns, r.retry_ns
    ));
}

/// Append the sampled event stream of `trace` (when the report kept
/// it) as indented timeline lines.
fn push_events(lines: &mut Vec<String>, sec: &str, trace: u64) -> Result<(), String> {
    let Some(at) = sec.find(&format!("{{\"trace\":{trace},\"events\":[")) else {
        return Ok(()); // not sampled: no stream kept
    };
    let body_at = at + sec[at..].find('[').expect("just matched") + 1;
    let body = &sec[body_at
        ..body_at
            + sec[body_at..]
                .find(']')
                .ok_or("unterminated event stream")?];
    let mut cursor = 0;
    while let Some(pos) = body[cursor..].find("{\"at_ns\":") {
        let start = cursor + pos;
        let end = body[start..].find('}').ok_or("unterminated event")? + start + 1;
        let obj = &body[start..end];
        lines.push(format!(
            "   @{} shard={} hop={} {}",
            scan_u64(obj, "at_ns")?,
            shard_label(scan_u64(obj, "shard")? as u32),
            scan_u64(obj, "hop")?,
            scan_str(obj, "kind")?
        ));
        cursor = end;
    }
    Ok(())
}

/// Render `hpdr explain` output for a report document: the header, then
/// either one job's breakdown (with its event timeline when sampled) or
/// the true worst-`worst` jobs by latency.
pub fn explain_lines(doc: &str, job: Option<u64>, worst: usize) -> Result<Vec<String>, String> {
    let sec = flight_section(doc).ok_or("document carries no hpdr-flight/v1 section")?;
    let rows = parse_flight_rows(sec)?;
    let mut lines = vec![format!(
        "flight report: {} jobs, {} sampled, p99 {} ns, {} events dropped",
        scan_u64(sec, "jobs")?,
        scan_u64(sec, "sampled")?,
        scan_u64(sec, "p99_ns")?,
        scan_u64(sec, "dropped")?
    )];
    match job {
        Some(id) => {
            let row = rows
                .iter()
                .find(|r| r.trace == id)
                .ok_or_else(|| format!("no job with trace id {id} in the flight report"))?;
            push_row(&mut lines, None, row);
            push_events(&mut lines, sec, id)?;
        }
        None => {
            let mut ranked: Vec<&FlightRow> = rows.iter().collect();
            ranked.sort_by_key(|r| (std::cmp::Reverse(r.latency_ns), r.trace));
            for (i, r) in ranked.iter().take(worst.max(1)).enumerate() {
                push_row(&mut lines, Some(i + 1), r);
            }
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, events_to_trace, Blackbox};
    use crate::record::{FlightConfig, FlightLog, JobEvent, JobEventKind};
    use hpdr_sim::Ns;

    fn ev(at: u64, trace: u64, hop: u32, shard: u32, kind: JobEventKind) -> JobEvent {
        JobEvent {
            at: Ns(at),
            trace,
            hop,
            shard,
            tenant: (trace % 3) as u32,
            kind,
        }
    }

    fn sample_log() -> FlightLog {
        let mut log = FlightLog::default();
        for t in 1..=6u64 {
            log.events.push(ev(t * 10, t, 0, 0, JobEventKind::Submit));
            log.events.push(ev(t * 10, t, 0, 0, JobEventKind::Admit));
            log.events.push(ev(
                t * 10 + 40,
                t,
                0,
                0,
                JobEventKind::Dispatch {
                    device: 0,
                    overhead_ns: 5,
                },
            ));
            log.events
                .push(ev(t * 10 + 100 * t, t, 0, 0, JobEventKind::Complete));
        }
        log.events.push(ev(5, 9, 0, 1, JobEventKind::Submit));
        log.events
            .push(ev(9, 9, 1, 1, JobEventKind::Reroute { attempt: 1 }));
        log.events.push(ev(9, 9, 1, 1, JobEventKind::Admit));
        log.events.push(ev(600, 9, 1, 1, JobEventKind::TimedOut));
        log
    }

    fn sample_report() -> crate::analyze::FlightReport {
        analyze(
            &sample_log(),
            &FlightConfig::default(),
            Some(Blackbox {
                shard: 1,
                log: FlightLog {
                    events: vec![ev(5, 9, 0, 1, JobEventKind::Submit)],
                    dropped: 3,
                },
            }),
        )
    }

    #[test]
    fn roundtrip_serializes_validates_and_parses() {
        let report = sample_report();
        let doc = to_json(&report);
        assert!(read_header(&doc, FLIGHT_SCHEMA).unwrap());
        validate_flight_json(&doc).unwrap();
        let rows = parse_flight_rows(&doc).unwrap();
        assert_eq!(rows.len(), report.rows.len());
        for (parsed, row) in rows.iter().zip(&report.rows) {
            assert_eq!(parsed.trace, row.trace);
            assert_eq!(parsed.latency_ns, row.latency);
            assert_eq!(parsed.components_sum(), parsed.latency_ns);
        }
        assert!(doc.contains("\"blackbox\": {\"shard\":1,\"dropped\":3"));
        // Determinism: serialization is a pure function of the report.
        assert_eq!(doc, to_json(&sample_report()));
    }

    #[test]
    fn validator_rejects_damaged_documents() {
        let doc = to_json(&sample_report());
        // Break the additive invariant on one row.
        let row = doc
            .lines()
            .find(|l| l.contains("\"trace\":9,"))
            .unwrap()
            .to_string();
        let lat = scan_u64(&row, "latency_ns").unwrap();
        let bad = doc.replace(
            &format!("\"latency_ns\":{lat}"),
            &format!("\"latency_ns\":{}", lat + 1),
        );
        let err = validate_flight_json(&bad).unwrap_err();
        assert!(err.contains("components sum"), "{err}");
        // Miscounted jobs field.
        let bad = doc.replace("\"jobs\": 7,", "\"jobs\": 6,");
        assert!(validate_flight_json(&bad)
            .unwrap_err()
            .contains("row count"));
        // Wrong schema entirely.
        assert!(validate_flight_json("{\"schema\":\"hpdr-serve/v1\",\"ok\":true}").is_err());
    }

    #[test]
    fn parser_survives_cluster_style_embedding() {
        let doc = to_json(&sample_report());
        // A cluster report re-indents the embedded document and nests it
        // under a "flight" key; the scanners must not care.
        let embedded = format!(
            "{{\"schema\":\"hpdr-shard/v1\",\"ok\":true,\n  \"flight\": {}\n}}",
            doc.trim_end().replace('\n', "\n      ")
        );
        validate_flight_json(&embedded).unwrap();
        assert_eq!(
            parse_flight_rows(&embedded).unwrap(),
            parse_flight_rows(&doc).unwrap()
        );
    }

    #[test]
    fn explain_worst_ranks_true_top_latencies() {
        let doc = to_json(&sample_report());
        let lines = explain_lines(&doc, None, 3).unwrap();
        assert!(lines[0].starts_with("flight report: 7 jobs"));
        // Latencies: trace6=640, trace9=595, trace5=540, …
        assert!(lines[1].starts_with("#1 trace 6 "), "{}", lines[1]);
        assert!(lines[3].starts_with("#2 trace 9 "), "{}", lines[3]);
        assert!(lines[5].starts_with("#3 trace 5 "), "{}", lines[5]);
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn explain_job_prints_breakdown_and_timeline() {
        let doc = to_json(&sample_report());
        let lines = explain_lines(&doc, Some(9), 0).unwrap();
        assert!(lines[1].contains("outcome=timed_out"));
        assert!(lines[1].contains("hops=1"));
        // Trace 9 is sampled (failure), so its timeline is present.
        assert!(lines.iter().any(|l| l.contains("@9 shard=1 hop=1 reroute")));
        assert!(explain_lines(&doc, Some(12345), 0).is_err());
    }

    #[test]
    fn span_bridge_roundtrips_through_chrome_trace() {
        let trace = events_to_trace(&sample_log());
        let json = hpdr_trace::to_chrome_trace(&trace);
        let summary = hpdr_trace::validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.complete_events, trace.spans().len());
    }
}
