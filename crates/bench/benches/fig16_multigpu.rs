//! Fig. 16 bench: multi-GPU scalability with and without the CMM.
use bench::{fig16, work, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig};
use hpdr_pipeline::compress_multi_gpu;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig16(&scale));
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(10);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    c.bench_function("fig16/six_gpu_node_compress", |b| {
        b.iter(|| {
            let inputs: Vec<_> = (0..6).map(|_| Arc::clone(&input)).collect();
            compress_multi_gpu(
                &spec,
                6,
                work(),
                Arc::clone(&reducer),
                inputs,
                &meta,
                &scale.fixed(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
