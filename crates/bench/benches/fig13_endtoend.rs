//! Fig. 13 bench: None vs Fixed vs Adaptive end-to-end pipelines.
use bench::{fig13, work, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig, PipelineOptions};
use hpdr_pipeline::compress_pipelined;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig13(&scale));
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(7);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    for (name, opts) in [
        ("none", PipelineOptions::unpipelined()),
        ("fixed", scale.fixed()),
        ("adaptive", scale.adaptive()),
    ] {
        c.bench_function(&format!("fig13/mgard_{name}"), |b| {
            b.iter(|| {
                compress_pipelined(
                    &spec,
                    work(),
                    Arc::clone(&reducer),
                    Arc::clone(&input),
                    &meta,
                    &opts,
                )
                .unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
