//! Fig. 11 bench: roofline profiling and fitting.
use bench::{fig11, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr_pipeline::{default_sweep, fit, profile_kernel};
use hpdr_sim::KernelClass;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig11(&scale));
    let spec = scale.spec(&hpdr_sim::spec::v100());
    c.bench_function("fig11/profile_and_fit", |b| {
        b.iter(|| {
            fit(
                &profile_kernel(&spec, KernelClass::Mgard, &default_sweep()),
                0.9,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
