//! Fig. 14 bench: compression-ratio cost of chunking.
use bench::{fig14, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig, SerialAdapter};

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig14(&scale));
    let (input, meta) = scale.nyx(8);
    let adapter = SerialAdapter::new();
    let reducer = Codec::Mgard(MgardConfig::relative(1e-4)).reducer();
    c.bench_function("fig14/whole_array_compress", |b| {
        b.iter(|| reducer.compress(&adapter, &input, &meta).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
