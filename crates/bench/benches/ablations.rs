//! Ablation benches: CMM, buffer count, launch order, CPU adapters.
use bench::{ablations, work, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig, PipelineOptions};
use hpdr_pipeline::compress_pipelined;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", ablations(&scale));
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(13);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    for (name, opts) in [
        ("cmm_on", scale.fixed()),
        (
            "cmm_off",
            PipelineOptions {
                cmm: false,
                ..scale.fixed()
            },
        ),
        (
            "three_buffers",
            PipelineOptions {
                two_buffers: false,
                ..scale.fixed()
            },
        ),
    ] {
        c.bench_function(&format!("ablation/{name}"), |b| {
            b.iter(|| {
                compress_pipelined(
                    &spec,
                    work(),
                    Arc::clone(&reducer),
                    Arc::clone(&input),
                    &meta,
                    &opts,
                )
                .unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
