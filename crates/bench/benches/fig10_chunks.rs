//! Fig. 10 bench: chunk-size strategies. Prints the figure, then times
//! the adaptive pipeline.
use bench::{fig10, work, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig};
use hpdr_pipeline::compress_pipelined;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig10(&scale));
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(2);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    c.bench_function("fig10/adaptive_pipeline", |b| {
        b.iter(|| {
            compress_pipelined(
                &spec,
                work(),
                Arc::clone(&reducer),
                Arc::clone(&input),
                &meta,
                &scale.adaptive(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
