//! Fig. 1 bench: non-optimized pipeline time breakdown. Prints the figure
//! table once, then times the unoptimized MGARD-GPU-style pipeline.
use bench::{fig01, work, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig, PipelineOptions};
use hpdr_pipeline::compress_pipelined;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig01(&scale));
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(1);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    c.bench_function("fig01/unoptimized_mgard_pipeline", |b| {
        b.iter(|| {
            compress_pipelined(
                &spec,
                work(),
                Arc::clone(&reducer),
                Arc::clone(&input),
                &meta,
                &PipelineOptions::baseline_unoptimized(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
