//! Fig. 15 bench: multi-node aggregate reduction throughput.
use bench::{fig15, profile, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig};
use hpdr_io::summit;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig15(&scale));
    let sys = summit();
    let adaptive = scale.adaptive();
    c.bench_function("fig15/summit_profile_measurement", |b| {
        b.iter(|| {
            profile(
                &scale,
                &sys,
                Codec::Mgard(MgardConfig::relative(1e-2)),
                Some(&adaptive),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
