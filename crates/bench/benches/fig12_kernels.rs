//! Fig. 12 bench: portable kernel throughput on five processors. Prints
//! the figure, then times the three kernels on the CPU adapter (the row
//! measured in wall time).
use bench::{fig12, kernel_throughput, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, CpuParallelAdapter, MgardConfig, ZfpConfig};

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig12(&scale));
    let (input, meta) = scale.nyx(6);
    let adapter = CpuParallelAdapter::with_defaults();
    for (name, codec) in [
        ("mgard", Codec::Mgard(MgardConfig::relative(1e-2))),
        ("zfp", Codec::Zfp(ZfpConfig::fixed_rate(16))),
        ("huffman", Codec::Huffman),
    ] {
        c.bench_function(&format!("fig12/cpu_kernel_{name}"), |b| {
            b.iter(|| kernel_throughput(&adapter, codec, &input, &meta))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
