//! Fig. 18 bench: strong-scaling I/O on Frontier.
use bench::{fig18, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr_io::{frontier, strong_scaling_write};

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig18(&scale));
    let sys = frontier();
    c.bench_function("fig18/strong_scaling_sweep", |b| {
        b.iter(|| {
            [512usize, 1024, 2048]
                .iter()
                .map(|&n| strong_scaling_write(&sys, n, 32 << 40, None).total())
                .collect::<Vec<_>>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
