//! Fig. 17 bench: weak-scaling I/O acceleration.
use bench::{fig17, profile, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use hpdr::{Codec, MgardConfig};
use hpdr_io::{summit, write_cost};

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    println!("{}", fig17(&scale));
    let sys = summit();
    let adaptive = scale.adaptive();
    let p = profile(
        &scale,
        &sys,
        Codec::Mgard(MgardConfig::relative(1e-2)),
        Some(&adaptive),
    );
    c.bench_function("fig17/weak_scaling_cost_model", |b| {
        b.iter(|| {
            (64..=512usize)
                .step_by(64)
                .map(|n| write_cost(&sys, n, 7_500_000_000, Some(&p)).total())
                .collect::<Vec<_>>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
