//! Experiment scaling: shrink data and device knees together so the
//! paper-scale performance *shapes* survive at laptop-scale sizes.

use hpdr::{ArrayMeta, DType, PipelineMode, PipelineOptions};
use hpdr_sim::DeviceSpec;
use std::sync::Arc;

/// Experiment size class.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Divisor applied to data sizes and device saturation knees.
    pub factor: u64,
    pub nyx_side: usize,
    pub e3sm_dims: (usize, usize, usize),
    pub xgc_mesh: usize,
}

impl Scale {
    /// Fast: suitable for Criterion iterations (sub-second experiments).
    pub fn bench() -> Scale {
        Scale {
            factor: 8192,
            nyx_side: 32,
            e3sm_dims: (12, 24, 48),
            xgc_mesh: 48,
        }
    }

    /// Default for the `reproduce` binary (seconds per figure).
    pub fn report() -> Scale {
        Scale {
            factor: 1024,
            nyx_side: 64,
            e3sm_dims: (24, 48, 96),
            xgc_mesh: 160,
        }
    }

    /// Heavier run for `reproduce --large` (minutes).
    pub fn large() -> Scale {
        Scale {
            factor: 128,
            nyx_side: 128,
            e3sm_dims: (48, 96, 192),
            xgc_mesh: 640,
        }
    }

    /// Scale a device spec: saturation knees and latencies divide by the
    /// factor; saturated bandwidths / plateaus are untouched.
    pub fn spec(&self, base: &DeviceSpec) -> DeviceSpec {
        base.scaled(self.factor)
    }

    /// The paper's 100 MB fixed chunk, scaled.
    pub fn fixed_chunk(&self) -> u64 {
        ((100u64 << 20) / self.factor).max(4096)
    }

    /// A deliberately-large fixed chunk (paper Fig. 10 "fixed large": 2 GB).
    pub fn large_chunk(&self) -> u64 {
        ((2u64 << 30) / self.factor).max(16384)
    }

    /// Algorithm 4 configuration, scaled.
    pub fn adaptive(&self) -> PipelineOptions {
        PipelineOptions {
            mode: PipelineMode::Adaptive {
                init_bytes: ((16u64 << 20) / self.factor).max(2048),
                limit_bytes: ((2u64 << 30) / self.factor).max(1 << 20),
            },
            ..Default::default()
        }
    }

    pub fn fixed(&self) -> PipelineOptions {
        PipelineOptions::fixed(self.fixed_chunk())
    }

    // --- datasets (scaled Table III analogues) ---

    pub fn nyx(&self, seed: u64) -> (Arc<Vec<u8>>, ArrayMeta) {
        let d = hpdr::data::nyx_density(self.nyx_side, seed);
        (Arc::new(d.bytes), ArrayMeta::new(DType::F32, d.shape))
    }

    pub fn e3sm(&self, seed: u64) -> (Arc<Vec<u8>>, ArrayMeta) {
        let (t, la, lo) = self.e3sm_dims;
        let d = hpdr::data::e3sm_psl(t, la, lo, seed);
        (Arc::new(d.bytes), ArrayMeta::new(DType::F32, d.shape))
    }

    pub fn xgc(&self, seed: u64) -> (Arc<Vec<u8>>, ArrayMeta) {
        let d = hpdr::data::xgc_ef(self.xgc_mesh, seed);
        (Arc::new(d.bytes), ArrayMeta::new(DType::F64, d.shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::spec::v100;

    #[test]
    fn scaling_preserves_plateaus() {
        let s = Scale::report();
        let scaled = s.spec(&v100());
        assert_eq!(scaled.h2d.saturated_gbps, v100().h2d.saturated_gbps);
        assert!(scaled.h2d.saturate_bytes < v100().h2d.saturate_bytes);
        assert!(scaled.alloc_latency < v100().alloc_latency);
    }

    #[test]
    fn chunk_sizes_scale() {
        let s = Scale::report();
        assert_eq!(s.fixed_chunk(), (100 << 20) / 1024);
        assert!(s.large_chunk() > s.fixed_chunk());
    }

    #[test]
    fn datasets_have_expected_dtypes() {
        let s = Scale::bench();
        assert_eq!(s.nyx(1).1.dtype, DType::F32);
        assert_eq!(s.xgc(1).1.dtype, DType::F64);
        assert_eq!(s.e3sm(1).1.dtype, DType::F32);
    }
}
