//! Per-figure experiment runners (paper Figs. 1, 10–18 + ablations).

use crate::{work, Scale, TextTable};
use hpdr::{Codec, MgardConfig, SzConfig, ZfpConfig};
use hpdr_core::Shape;
use hpdr_core::{
    ArrayMeta, CpuParallelAdapter, DeviceAdapter, GpuSimAdapter, Reducer, SerialAdapter,
};
use hpdr_io::{
    frontier, read_cost, strong_scaling_read, strong_scaling_write, summit, write_cost,
    CodecProfile, SystemSpec,
};
use hpdr_pipeline::{
    average_scalability, compress_pipelined, decompress_pipelined, decompress_scalability_sweep,
    fit, scalability_sweep, Container, PipelineOptions,
};
use hpdr_sim::{Category, DeviceSpec, Timeline};
use std::sync::Arc;

/// Time steps per GPU in the multi-step experiments (the paper uses 14
/// NYX steps per GPU in Fig. 15; we default lower to keep runs quick).
pub const STEPS: usize = 6;

/// Tile the NYX sample `STEPS` times along the leading dimension: a
/// multi-step output stream. Returns `(input, meta, step_bytes)`.
pub fn steps_input(scale: &Scale, seed: u64) -> (Arc<Vec<u8>>, ArrayMeta, u64) {
    let (input, meta) = scale.nyx(seed);
    let mut big = Vec::with_capacity(input.len() * STEPS);
    for _ in 0..STEPS {
        big.extend_from_slice(&input);
    }
    let dims = meta.shape.dims();
    let shape = Shape::new(&[dims[0] * STEPS, dims[1], dims[2]]);
    (
        Arc::new(big),
        ArrayMeta::new(meta.dtype, shape),
        input.len() as u64,
    )
}

/// The four comparator pipelines of Fig. 1 / §VI-A.
pub fn comparator_codecs() -> Vec<(&'static str, Codec)> {
    vec![
        ("MGARD-GPU", Codec::Mgard(MgardConfig::relative(1e-2))),
        ("cuSZ", Codec::Sz(SzConfig::relative(1e-2))),
        ("ZFP-CUDA", Codec::Zfp(ZfpConfig::fixed_rate(16))),
        ("NVCOMP-LZ4", Codec::Lz4),
    ]
}

fn pct(t: &Timeline, cat: Category) -> f64 {
    let total: u64 = t.records().iter().map(|r| r.duration().0).sum();
    if total == 0 {
        return 0.0;
    }
    let part = t.busy_where(|r| {
        matches!(
            (cat, r.engine),
            (Category::H2D, hpdr_sim::Engine::H2D(_))
                | (Category::D2H, hpdr_sim::Engine::D2H(_))
                | (Category::Compute, hpdr_sim::Engine::Compute(_))
                | (Category::MemMgmt, hpdr_sim::Engine::Runtime(_))
                | (
                    Category::Host,
                    hpdr_sim::Engine::Staging(_) | hpdr_sim::Engine::Host
                )
        )
    });
    part.0 as f64 / total as f64 * 100.0
}

/// Fig. 1: time breakdown of the four non-optimized GPU pipelines on a
/// V100 (paper: 34–89% of time in memory operations).
pub fn fig01(scale: &Scale) -> String {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(1);
    let opts = PipelineOptions::baseline_unoptimized();
    let mut t = TextTable::new(&[
        "pipeline",
        "dir",
        "host copy %",
        "H2D %",
        "D2H %",
        "compute %",
        "mem-mgmt %",
        "memory ops %",
    ]);
    for (name, codec) in comparator_codecs() {
        let reducer = codec.reducer();
        let (container, creport) = compress_pipelined(
            &spec,
            work(),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .expect("fig01 compress");
        let (_, _, dreport) =
            decompress_pipelined(&spec, work(), reducer, &container, &opts).expect("fig01 dec");
        for (dir, rep) in [("comp", &creport), ("decomp", &dreport)] {
            t.row(vec![
                name.into(),
                dir.into(),
                format!("{:.1}", pct(&rep.timeline, Category::Host)),
                format!("{:.1}", pct(&rep.timeline, Category::H2D)),
                format!("{:.1}", pct(&rep.timeline, Category::D2H)),
                format!("{:.1}", pct(&rep.timeline, Category::Compute)),
                format!("{:.1}", pct(&rep.timeline, Category::MemMgmt)),
                format!("{:.1}", rep.memory_fraction * 100.0),
            ]);
        }
    }
    format!(
        "Fig. 1: time breakdown of non-optimized reduction pipelines (NYX, V100-sim)\n{}",
        t.render()
    )
}

/// Fig. 10: fixed-small vs fixed-large vs adaptive chunk pipelines
/// (MGARD, NYX).
pub fn fig10(scale: &Scale) -> String {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(2);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let mut t = TextTable::new(&[
        "setting",
        "chunks",
        "makespan",
        "sustained GB/s",
        "overlap %",
    ]);
    for (name, opts) in [
        (
            "fixed small (100MB/f)",
            PipelineOptions::fixed(scale.fixed_chunk() / 8),
        ),
        (
            "fixed large (2GB/f)",
            PipelineOptions::fixed(scale.large_chunk()),
        ),
        ("adaptive", scale.adaptive()),
    ] {
        let (_, rep) = compress_pipelined(
            &spec,
            work(),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .expect("fig10");
        t.row(vec![
            name.into(),
            rep.num_chunks.to_string(),
            rep.makespan.to_string(),
            format!("{:.2}", rep.end_to_end_gbps),
            format!("{:.1}", rep.overlap.unwrap_or(0.0) * 100.0),
        ]);
    }
    format!(
        "Fig. 10: reduction pipeline vs chunk-size strategy (MGARD-X, NYX, V100-sim)\n{}",
        t.render()
    )
}

/// Fig. 11: measured kernel throughput vs chunk size, with the fitted
/// roofline model, for three datasets × three error bounds.
pub fn fig11(scale: &Scale) -> String {
    // Scale the device 16x less aggressively than the data so the
    // unsaturated ramp below the kernel knee stays observable.
    let dev_scale = Scale {
        factor: (scale.factor / 16).max(1),
        ..*scale
    };
    let spec = dev_scale.spec(&hpdr_sim::spec::v100());
    let mut out = String::from("Fig. 11: roofline model of MGARD-X kernel throughput (V100-sim)\n");
    let datasets = [
        ("NYX", scale.nyx(3)),
        ("E3SM", scale.e3sm(4)),
        ("XGC", scale.xgc(5)),
    ];
    for (dname, (input, meta)) in datasets {
        for eb in [1e-2f64, 1e-4, 1e-6] {
            let reducer = Codec::Mgard(MgardConfig::relative(eb)).reducer();
            // Sweep chunk sizes, measuring compute-engine throughput.
            let mut points: Vec<(u64, f64)> = Vec::new();
            let row_bytes = (meta.shape.row_elements() * meta.dtype.size()) as u64;
            let total = input.len() as u64;
            let mut c = row_bytes * 4;
            while c <= total {
                let (container, rep) = compress_pipelined(
                    &spec,
                    work(),
                    Arc::clone(&reducer),
                    Arc::clone(&input),
                    &meta,
                    &PipelineOptions::fixed(c),
                )
                .expect("fig11");
                let compute_busy = rep
                    .timeline
                    .busy_where(|r| matches!(r.engine, hpdr_sim::Engine::Compute(_)));
                // Label by the realized mean chunk size (row alignment can
                // round the requested size).
                let mean_chunk = rep.input_bytes / container.chunks.len() as u64;
                points.push((
                    mean_chunk,
                    rep.input_bytes as f64 / compute_busy.0.max(1) as f64,
                ));
                c *= 4;
            }
            let model = fit(&points, 0.9);
            out.push_str(&format!(
                "  {dname:<5} eb={eb:>6.0e}: gamma={:.1} GB/s  threshold={}  points={}\n",
                model.gamma,
                model.threshold,
                points
                    .iter()
                    .map(|(c, p)| format!("({c},{p:.1})"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    out
}

/// One Fig. 12 measurement: kernel-level throughput of `codec` on
/// `adapter` over `bytes` of input (virtual time on GPU sims, wall time
/// on CPUs).
pub fn kernel_throughput(
    adapter: &dyn DeviceAdapter,
    codec: Codec,
    input: &[u8],
    meta: &ArrayMeta,
) -> f64 {
    adapter.clock_reset();
    let reducer = codec.reducer();
    reducer
        .compress(adapter, input, meta)
        .expect("fig12 compress");
    let t = adapter.clock_elapsed();
    input.len() as f64 / t.0.max(1) as f64
}

/// Fig. 12: kernel throughput of the three portable pipelines on five
/// processors.
pub fn fig12(scale: &Scale) -> String {
    let (input, meta) = scale.nyx(6);
    let mut adapters: Vec<(String, Box<dyn DeviceAdapter>)> = Vec::new();
    for spec in [
        hpdr_sim::spec::v100(),
        hpdr_sim::spec::a100(),
        hpdr_sim::spec::mi250x(),
        hpdr_sim::spec::rtx3090(),
    ] {
        adapters.push((
            format!(
                "{} ({})",
                spec.name,
                match spec.arch {
                    hpdr_sim::Arch::CudaSim => "CUDA-sim",
                    hpdr_sim::Arch::HipSim => "HIP-sim",
                }
            ),
            Box::new(GpuSimAdapter::new(scale.spec(&spec))),
        ));
    }
    adapters.push((
        "CPU (openmp)".to_string(),
        Box::new(CpuParallelAdapter::with_defaults()),
    ));

    let mut t = TextTable::new(&[
        "processor",
        "MGARD 1e-2",
        "MGARD 1e-4",
        "MGARD 1e-6",
        "ZFP r8",
        "ZFP r16",
        "ZFP r32",
        "Huffman",
    ]);
    for (name, adapter) in &adapters {
        let m = |eb: f64| {
            kernel_throughput(
                adapter.as_ref(),
                Codec::Mgard(MgardConfig::relative(eb)),
                &input,
                &meta,
            )
        };
        let z = |r: u32| {
            kernel_throughput(
                adapter.as_ref(),
                Codec::Zfp(ZfpConfig::fixed_rate(r)),
                &input,
                &meta,
            )
        };
        let h = kernel_throughput(adapter.as_ref(), Codec::Huffman, &input, &meta);
        t.row(vec![
            name.clone(),
            format!("{:.2}", m(1e-2)),
            format!("{:.2}", m(1e-4)),
            format!("{:.2}", m(1e-6)),
            format!("{:.2}", z(8)),
            format!("{:.2}", z(16)),
            format!("{:.2}", z(32)),
            format!("{:.2}", h),
        ]);
    }
    format!(
        "Fig. 12: kernel throughput in GB/s (GPU rows: calibrated virtual time; CPU row: measured wall time)\n{}",
        t.render()
    )
}

/// Fig. 13 + Fig. 14 shared runner: end-to-end throughput and ratios for
/// None / Fixed / Adaptive.
pub struct PipelineComparison {
    pub codec_name: &'static str,
    /// (setting, compress GB/s, decompress GB/s, ratio)
    pub rows: Vec<(&'static str, f64, f64, f64)>,
}

pub fn compare_pipelines(
    scale: &Scale,
    codec_name: &'static str,
    reducer: Arc<dyn Reducer>,
    spec: &DeviceSpec,
) -> PipelineComparison {
    let (input, meta) = scale.nyx(7);
    let mut rows = Vec::new();
    for (name, opts) in [
        ("none", PipelineOptions::unpipelined()),
        ("fixed", scale.fixed()),
        ("adaptive", scale.adaptive()),
    ] {
        let (container, crep) = compress_pipelined(
            spec,
            work(),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .expect("fig13 compress");
        let (_, _, drep) =
            decompress_pipelined(spec, work(), Arc::clone(&reducer), &container, &opts)
                .expect("fig13 decompress");
        let ratio = crep.input_bytes as f64 / crep.compressed_bytes.max(1) as f64;
        rows.push((name, crep.end_to_end_gbps, drep.end_to_end_gbps, ratio));
    }
    PipelineComparison { codec_name, rows }
}

pub fn fig13(scale: &Scale) -> String {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let mut t = TextTable::new(&[
        "codec",
        "setting",
        "comp GB/s",
        "decomp GB/s",
        "comp speedup",
        "vs fixed",
    ]);
    for (name, reducer) in [
        (
            "MGARD-X",
            Codec::Mgard(MgardConfig::relative(1e-2)).reducer(),
        ),
        ("ZFP-X", Codec::Zfp(ZfpConfig::fixed_rate(16)).reducer()),
    ] {
        let cmp = compare_pipelines(scale, name, reducer, &spec);
        let none = cmp.rows[0].1;
        let fixed = cmp.rows[1].1;
        for (setting, c, d, _) in &cmp.rows {
            t.row(vec![
                name.into(),
                (*setting).into(),
                format!("{c:.2}"),
                format!("{d:.2}"),
                format!("{:.2}x", c / none),
                format!("{:.2}x", c / fixed),
            ]);
        }
    }
    format!(
        "Fig. 13: end-to-end throughput, None vs Fixed vs Adaptive (NYX, V100-sim)\n{}",
        t.render()
    )
}

pub fn fig14(scale: &Scale) -> String {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(8);
    let mut t = TextTable::new(&[
        "codec",
        "bound",
        "none",
        "fixed",
        "adaptive",
        "fixed loss %",
    ]);
    let mut cases: Vec<(String, Arc<dyn Reducer>)> = Vec::new();
    for eb in [1e-2f64, 1e-4, 1e-6] {
        cases.push((
            format!("MGARD {eb:.0e}"),
            Codec::Mgard(MgardConfig::relative(eb)).reducer(),
        ));
    }
    for rate in [8u32, 16, 32] {
        cases.push((
            format!("ZFP r{rate}"),
            Codec::Zfp(ZfpConfig::fixed_rate(rate)).reducer(),
        ));
    }
    for (name, reducer) in cases {
        let mut ratios = Vec::new();
        for opts in [
            PipelineOptions::unpipelined(),
            // Sub-divide the fixed chunk to stress the ratio cost of
            // chunking (the paper's 100 MB chunks on 4.3 GB inputs).
            PipelineOptions::fixed((scale.fixed_chunk() / 16).max(2048)),
            scale.adaptive(),
        ] {
            let (container, rep) = compress_pipelined(
                &spec,
                work(),
                Arc::clone(&reducer),
                Arc::clone(&input),
                &meta,
                &opts,
            )
            .expect("fig14");
            let _ = container;
            ratios.push(rep.input_bytes as f64 / rep.compressed_bytes.max(1) as f64);
        }
        let loss = (1.0 - ratios[1] / ratios[0]) * 100.0;
        t.row(vec![
            name,
            "rel".into(),
            format!("{:.1}", ratios[0]),
            format!("{:.1}", ratios[1]),
            format!("{:.1}", ratios[2]),
            format!("{loss:.1}"),
        ]);
    }
    format!(
        "Fig. 14: compression ratio vs pipeline setting (NYX, V100-sim)\n{}",
        t.render()
    )
}

/// Measure the profiles used by the cluster-scale figures over a
/// multi-step stream: HPDR pipelines across the stream; comparators run
/// one synchronous invocation per step ([`PipelineOptions::baseline_per_step`]).
pub fn profile(
    scale: &Scale,
    system: &SystemSpec,
    codec: Codec,
    opts: Option<&PipelineOptions>,
) -> CodecProfile {
    let scaled_sys = SystemSpec {
        gpu: scale.spec(&system.gpu),
        ..system.clone()
    };
    let (input, meta, step_bytes) = steps_input(scale, 9);
    let opts = match opts {
        Some(o) => *o,
        None => PipelineOptions::baseline_per_step(step_bytes),
    };
    hpdr_io::measure_codec_profile(&scaled_sys, codec.reducer(), work(), input, &meta, &opts)
        .expect("profile")
}

/// Fig. 15: multi-node aggregate reduction throughput (weak scaling).
pub fn fig15(scale: &Scale) -> String {
    let mut out = String::from("Fig. 15: aggregated reduction throughput (weak scaling)\n");
    let summit_sys = summit();
    let frontier_sys = frontier();
    let summit_codecs: Vec<(&str, Codec, Option<PipelineOptions>)> = vec![
        (
            "MGARD-X",
            Codec::Mgard(MgardConfig::relative(1e-2)),
            Some(scale.adaptive()),
        ),
        ("MGARD-GPU", Codec::Mgard(MgardConfig::relative(1e-2)), None),
        ("ZFP-CUDA", Codec::Zfp(ZfpConfig::fixed_rate(16)), None),
        ("cuSZ", Codec::Sz(SzConfig::relative(1e-2)), None),
        ("NVCOMP-LZ4", Codec::Lz4, None),
    ];
    for (sys, max_nodes, codecs) in [
        (&summit_sys, 512usize, &summit_codecs[..]),
        (&frontier_sys, 1024, &summit_codecs[..2]),
    ] {
        out.push_str(&format!("  {} (up to {max_nodes} nodes):\n", sys.name));
        let mut t = TextTable::new(&[
            "codec",
            "per-GPU GB/s",
            "scalability",
            "64 nodes",
            "max nodes (TB/s)",
        ]);
        for (name, codec, opts) in codecs {
            let p = profile(scale, sys, *codec, opts.as_ref());
            let at = |nodes: usize| hpdr_io::aggregate_reduction_gbps(sys, nodes, &p) / 1000.0;
            t.row(vec![
                (*name).into(),
                format!("{:.2}", p.compress_gbps),
                format!("{:.0}%", p.node_scalability * 100.0),
                format!("{:.2}", at(64)),
                format!("{:.2}", at(max_nodes)),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Fig. 16: multi-GPU scalability on a 6×V100 node, compression and
/// decompression.
pub fn fig16(scale: &Scale) -> String {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta, step_bytes) = steps_input(scale, 10);
    let mut t = TextTable::new(&["codec", "comp avg scal %", "decomp avg scal %"]);
    let mut cases: Vec<(&str, Arc<dyn Reducer>, PipelineOptions)> = vec![(
        "MGARD-X",
        Codec::Mgard(MgardConfig::relative(1e-2)).reducer(),
        scale.fixed(),
    )];
    for (name, codec) in comparator_codecs() {
        cases.push((
            name,
            codec.reducer(),
            PipelineOptions::baseline_per_step(step_bytes),
        ));
    }
    for (name, reducer, opts) in cases {
        let mk = || Arc::clone(&input);
        let comp = scalability_sweep(&spec, 6, work(), Arc::clone(&reducer), mk, &meta, &opts)
            .expect("fig16 comp");
        // Build a container once for the decompression sweep.
        let (container, _) = compress_pipelined(
            &spec,
            work(),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .expect("fig16 container");
        let decomp = decompress_scalability_sweep(&spec, 6, work(), reducer, &container, &opts)
            .expect("fig16 decomp");
        t.row(vec![
            name.into(),
            format!("{:.1}", average_scalability(&comp) * 100.0),
            format!("{:.1}", average_scalability(&decomp) * 100.0),
        ]);
    }
    format!(
        "Fig. 16: multi-GPU scalability on 6 V100s (avg real-to-ideal)\n{}",
        t.render()
    )
}

/// Fig. 17: weak-scaling parallel I/O acceleration (7.5 GB per GPU).
pub fn fig17(scale: &Scale) -> String {
    let mut out = String::from("Fig. 17: weak-scaling I/O with NYX (7.5 GB per GPU)\n");
    let per_gpu: u64 = 7_500_000_000;
    for (sys, nodes_list) in [
        (summit(), vec![64usize, 128, 256, 512]),
        (frontier(), vec![128usize, 256, 512, 1024]),
    ] {
        out.push_str(&format!("  {}:\n", sys.name));
        let adaptive = scale.adaptive();
        let mgard_x = profile(
            scale,
            &sys,
            Codec::Mgard(MgardConfig::relative(1e-2)),
            Some(&adaptive),
        );
        let mgard_gpu = profile(scale, &sys, Codec::Mgard(MgardConfig::relative(1e-2)), None);
        let lz4 = profile(scale, &sys, Codec::Lz4, None);
        let zfp = profile(scale, &sys, Codec::Zfp(ZfpConfig::fixed_rate(16)), None);
        let cusz = profile(scale, &sys, Codec::Sz(SzConfig::relative(1e-2)), None);
        let mut t = TextTable::new(&[
            "nodes",
            "raw write s",
            "LZ4",
            "cuSZ",
            "ZFP",
            "MGARD-GPU",
            "MGARD-X",
            "MGARD-X read",
        ]);
        for &nodes in &nodes_list {
            let raw_w = write_cost(&sys, nodes, per_gpu, None);
            let raw_r = read_cost(&sys, nodes, per_gpu, None);
            let sp = |p: &CodecProfile| {
                format!(
                    "{:.2}x",
                    write_cost(&sys, nodes, per_gpu, Some(p)).speedup_vs(&raw_w)
                )
            };
            let read_sp = format!(
                "{:.2}x",
                read_cost(&sys, nodes, per_gpu, Some(&mgard_x)).speedup_vs(&raw_r)
            );
            t.row(vec![
                nodes.to_string(),
                format!("{:.1}", raw_w.total().as_secs_f64()),
                sp(&lz4),
                sp(&cusz),
                sp(&zfp),
                sp(&mgard_gpu),
                sp(&mgard_x),
                read_sp,
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Fig. 18: strong-scaling I/O on Frontier (32 TB E3SM, 67 TB XGC).
#[allow(clippy::type_complexity)]
pub fn fig18(scale: &Scale) -> String {
    let mut out = String::from("Fig. 18: strong-scaling I/O on Frontier (rel eb 1e-4)\n");
    let sys = frontier();
    let cases: Vec<(&str, (Arc<Vec<u8>>, ArrayMeta), u64)> = vec![
        ("E3SM 32TB", scale.e3sm(11), 32u64 << 40),
        ("XGC 67TB", scale.xgc(12), 67u64 << 40),
    ];
    for (name, (input, meta), total_bytes) in cases {
        let scaled_sys = SystemSpec {
            gpu: scale.spec(&sys.gpu),
            ..sys.clone()
        };
        let codec = Codec::Mgard(MgardConfig::relative(1e-4));
        let px = hpdr_io::measure_codec_profile(
            &scaled_sys,
            codec.reducer(),
            work(),
            Arc::clone(&input),
            &meta,
            &scale.adaptive(),
        )
        .expect("fig18 profile");
        let pg = hpdr_io::measure_codec_profile(
            &scaled_sys,
            codec.reducer(),
            work(),
            input,
            &meta,
            &PipelineOptions::baseline_unoptimized(),
        )
        .expect("fig18 profile");
        let _ = &pg;
        out.push_str(&format!("  {name} (measured ratio {:.1}x):\n", px.ratio));
        let mut t = TextTable::new(&[
            "nodes",
            "raw w s",
            "raw r s",
            "MGARD-GPU w",
            "MGARD-GPU r",
            "MGARD-X w",
            "MGARD-X r",
        ]);
        for nodes in [512usize, 1024, 2048] {
            let raw_w = strong_scaling_write(&sys, nodes, total_bytes, None);
            let raw_r = strong_scaling_read(&sys, nodes, total_bytes, None);
            let g_w = strong_scaling_write(&sys, nodes, total_bytes, Some(&pg));
            let g_r = strong_scaling_read(&sys, nodes, total_bytes, Some(&pg));
            let x_w = strong_scaling_write(&sys, nodes, total_bytes, Some(&px));
            let x_r = strong_scaling_read(&sys, nodes, total_bytes, Some(&px));
            t.row(vec![
                nodes.to_string(),
                format!("{:.1}", raw_w.total().as_secs_f64()),
                format!("{:.1}", raw_r.total().as_secs_f64()),
                format!("{:.2}x", g_w.speedup_vs(&raw_w)),
                format!("{:.2}x", g_r.speedup_vs(&raw_r)),
                format!("{:.2}x", x_w.speedup_vs(&raw_w)),
                format!("{:.2}x", x_r.speedup_vs(&raw_r)),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Ablations of the §V design choices.
pub fn ablations(scale: &Scale) -> String {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(13);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let mut out = String::from("Ablations of HPDR design choices (MGARD-X, NYX, V100-sim)\n");
    let run_c = |opts: &PipelineOptions| {
        compress_pipelined(
            &spec,
            work(),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            opts,
        )
        .expect("ablation compress")
    };
    // (a) CMM.
    let with = run_c(&scale.fixed()).1;
    let without = run_c(&PipelineOptions {
        cmm: false,
        ..scale.fixed()
    })
    .1;
    out.push_str(&format!(
        "  CMM: makespan {} (on) vs {} (off): {:.2}x from context caching\n",
        with.makespan,
        without.makespan,
        without.makespan.0 as f64 / with.makespan.0 as f64
    ));
    // (b) 2 vs 3 buffers (anti-dependency design).
    let two = run_c(&scale.fixed()).1;
    let three = run_c(&PipelineOptions {
        two_buffers: false,
        ..scale.fixed()
    })
    .1;
    out.push_str(&format!(
        "  Buffers: 2-buffer (anti-deps) {} vs 3-buffer {}; memory saved 1/3, slowdown {:.3}x\n",
        two.makespan,
        three.makespan,
        two.makespan.0 as f64 / three.makespan.0.max(1) as f64
    ));
    // (c) Reconstruction launch-order swap.
    let (container, _) = run_c(&scale.fixed());
    let run_d = |opts: &PipelineOptions| {
        decompress_pipelined(&spec, work(), Arc::clone(&reducer), &container, opts)
            .expect("ablation decompress")
            .2
    };
    let swapped = run_d(&scale.fixed());
    let unswapped = run_d(&PipelineOptions {
        deser_first: false,
        ..scale.fixed()
    });
    out.push_str(&format!(
        "  Launch order: deser-first {} vs default {}: {:.3}x\n",
        swapped.makespan,
        unswapped.makespan,
        unswapped.makespan.0 as f64 / swapped.makespan.0.max(1) as f64
    ));
    // (d) CPU adapters: serial vs openmp wall time (kernel level).
    let serial = SerialAdapter::new();
    let parallel = CpuParallelAdapter::with_defaults();
    let t_serial = {
        serial.clock_reset();
        reducer.compress(&serial, &input, &meta).unwrap();
        serial.clock_elapsed()
    };
    let t_par = {
        parallel.clock_reset();
        reducer.compress(&parallel, &input, &meta).unwrap();
        parallel.clock_elapsed()
    };
    out.push_str(&format!(
        "  CPU adapters: serial {} vs openmp({}) {}: {:.2}x parallel speedup\n",
        t_serial,
        parallel.info().threads,
        t_par,
        t_serial.0 as f64 / t_par.0.max(1) as f64
    ));
    out
}

/// Run everything (the `reproduce all` entry point).
pub fn run_all(scale: &Scale) -> String {
    let mut out = String::new();
    for section in [
        crate::tables::table1(),
        crate::tables::table2(),
        crate::tables::table3(scale),
        fig01(scale),
        fig10(scale),
        fig11(scale),
        fig12(scale),
        fig13(scale),
        fig14(scale),
        fig15(scale),
        fig16(scale),
        fig17(scale),
        fig18(scale),
        ablations(scale),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

/// Span trace of one representative run of a figure's experiment, used
/// by `reproduce --trace <dir>` to emit a Perfetto-loadable trace per
/// figure. Analytic sections (tables, the I/O-model figures) return
/// `None` — they run no simulated schedule of their own.
pub fn figure_trace(scale: &Scale, target: &str) -> Option<hpdr_sim::Trace> {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(1);
    let reducer = || Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let run = |opts: &PipelineOptions| {
        compress_pipelined(&spec, work(), reducer(), Arc::clone(&input), &meta, opts)
            .expect("figure trace")
            .1
            .trace
    };
    match target {
        // The unoptimized baseline whose breakdown Fig. 1 reports.
        "fig1" | "fig01" => Some(run(&PipelineOptions::baseline_unoptimized())),
        // Chunked pipelines: the adaptive schedule is the interesting one.
        "fig10" | "fig13" | "fig14" => Some(run(&scale.adaptive())),
        "fig11" => Some(run(&PipelineOptions::fixed(scale.fixed_chunk() / 8))),
        "fig12" | "ablations" => Some(run(&scale.fixed())),
        // Multi-GPU: two devices sharing one virtual clock.
        "fig16" => {
            let inputs = vec![Arc::clone(&input), Arc::clone(&input)];
            let (_, rep) = hpdr_pipeline::compress_multi_gpu(
                &spec,
                2,
                work(),
                reducer(),
                inputs,
                &meta,
                &scale.fixed(),
            )
            .expect("fig16 trace");
            Some(rep.trace)
        }
        _ => None,
    }
}

/// Compress a small container for bench reuse.
pub fn sample_container(scale: &Scale) -> (Container, Arc<dyn Reducer>, DeviceSpec) {
    let spec = scale.spec(&hpdr_sim::spec::v100());
    let (input, meta) = scale.nyx(14);
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let (container, _) = compress_pipelined(
        &spec,
        work(),
        Arc::clone(&reducer),
        input,
        &meta,
        &scale.fixed(),
    )
    .expect("sample container");
    (container, reducer, spec)
}
