//! Tables I–III of the paper, regenerated from the live implementation.

use crate::TextTable;
use hpdr_core::{CpuParallelAdapter, DeviceAdapter, GpuSimAdapter, SerialAdapter, Shape};

/// Table I: parallel abstraction → execution model mapping. Generated
/// from the abstractions' actual lowering (see `hpdr_core::abstractions`).
pub fn table1() -> String {
    let mut t = TextTable::new(&["Parallel Abstraction", "GEM", "DEM"]);
    t.row(vec!["Locality".into(), "Block -> Group".into(), "-".into()]);
    t.row(vec![
        "Iterative".into(),
        "B*Vectors -> Group".into(),
        "-".into(),
    ]);
    t.row(vec![
        "Map&Process".into(),
        "-".into(),
        "All Subsets -> Whole Domain".into(),
    ]);
    t.row(vec![
        "Global".into(),
        "-".into(),
        "Domain -> Whole Domain".into(),
    ]);
    format!(
        "Table I: Mapping Parallel Abstractions to Execution Models\n{}",
        t.render()
    )
}

/// Table II: execution model → device mapping, read from the live
/// adapters' metadata.
pub fn table2() -> String {
    let adapters: Vec<Box<dyn DeviceAdapter>> = vec![
        Box::new(SerialAdapter::new()),
        Box::new(CpuParallelAdapter::with_defaults()),
        Box::new(GpuSimAdapter::new(hpdr_sim::spec::v100())),
        Box::new(GpuSimAdapter::new(hpdr_sim::spec::mi250x())),
    ];
    let mut t = TextTable::new(&[
        "Adapter",
        "Device",
        "Workers",
        "GEM group maps to",
        "GEM staging",
        "DEM domain maps to",
        "Virtual time",
    ]);
    for a in &adapters {
        let info = a.info();
        let (group, staging, domain) = match info.kind {
            hpdr_core::AdapterKind::Serial => ("core (serial)", "cache", "all cores (serial)"),
            hpdr_core::AdapterKind::CpuParallel => ("core", "cache", "all cores"),
            hpdr_core::AdapterKind::CudaSim => ("SM", "shared mem", "all cores (grid sync)"),
            hpdr_core::AdapterKind::HipSim => ("CU", "shared mem", "all SUs (grid sync)"),
        };
        t.row(vec![
            info.kind.name().into(),
            info.device,
            info.threads.to_string(),
            group.into(),
            staging.into(),
            domain.into(),
            a.uses_virtual_time().to_string(),
        ]);
    }
    format!(
        "Table II: Mapping Execution Models to Devices\n{}",
        t.render()
    )
}

/// Table III: evaluation datasets — the paper's shapes plus the scaled
/// analogues actually generated in this run.
pub fn table3(scale: &crate::Scale) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "Field",
        "Paper dims",
        "Type",
        "Paper size",
        "This run",
    ]);
    let paper_nyx = Shape::new(&[512, 512, 512]);
    let paper_xgc = Shape::new(&[8, 33, 1_117_528, 37]);
    let paper_e3sm = Shape::new(&[2880, 240, 960]);
    let gen_nyx = scale.nyx(0);
    let gen_xgc = scale.xgc(0);
    let gen_e3sm = scale.e3sm(0);
    let mb = |b: usize| format!("{:.1} MB", b as f64 / 1e6);
    t.row(vec![
        "NYX".into(),
        "density".into(),
        paper_nyx.to_string(),
        "FP32".into(),
        "536.8 MB".into(),
        format!("{} = {}", gen_nyx.1.shape, mb(gen_nyx.0.len())),
    ]);
    t.row(vec![
        "XGC".into(),
        "e_f".into(),
        paper_xgc.to_string(),
        "FP64".into(),
        "87.3 GB".into(),
        format!("{} = {}", gen_xgc.1.shape, mb(gen_xgc.0.len())),
    ]);
    t.row(vec![
        "E3SM".into(),
        "PSL".into(),
        paper_e3sm.to_string(),
        "FP32".into(),
        "2.7 GB".into(),
        format!("{} = {}", gen_e3sm.1.shape, mb(gen_e3sm.0.len())),
    ]);
    format!("Table III: Datasets used for evaluation\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        assert!(table1().contains("Locality"));
        assert!(table2().contains("cuda-sim"));
        assert!(table3(&crate::Scale::bench()).contains("NYX"));
    }
}
