//! Shared experiment runners for the HPDR benchmark harness.
//!
//! Every table and figure of the paper's evaluation section has a runner
//! here; the `reproduce` binary prints them all, and each Criterion bench
//! times the underlying operation of one figure.
//!
//! ## Scaling discipline
//!
//! The paper's experiments use 0.5 GB – 67 TB inputs; this harness runs on
//! one machine, so experiments execute at a reduced size with the device
//! models' saturation knees reduced by the *same factor*
//! ([`Scale::spec`]). Saturated bandwidths and kernel plateaus are
//! untouched, so throughputs, overlap ratios, speedup factors and
//! crossovers — the paper's *shapes* — are preserved while wall time and
//! memory stay laptop-sized.

pub mod figures;
pub mod scaling;
pub mod tables;

pub use figures::*;
pub use scaling::*;
pub use tables::*;

use hpdr::CpuParallelAdapter;
use hpdr_core::DeviceAdapter;
use std::sync::Arc;

/// The host worker pool used to execute kernels inside simulations.
pub fn work() -> Arc<dyn DeviceAdapter> {
    Arc::new(CpuParallelAdapter::with_defaults())
}

/// Simple fixed-width text table builder for figure output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
