//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all
//! cargo run --release -p bench --bin reproduce -- fig13 fig16
//! cargo run --release -p bench --bin reproduce -- --large all
//! cargo run --release -p bench --bin reproduce -- --trace traces/ fig10 fig16
//! ```
//!
//! `--trace <dir>` additionally writes a Chrome-trace JSON per figure
//! (for the figures that run a simulated schedule) into `<dir>`; open
//! them at <https://ui.perfetto.dev>.

use bench::{ablations, fig01, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18};
use bench::{figure_trace, table1, table2, table3, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::report();
    let mut trace_dir: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--large" => scale = Scale::large(),
            "--bench-scale" => scale = Scale::bench(),
            "--trace" => match args.get(i + 1) {
                Some(dir) => {
                    trace_dir = Some(dir.clone());
                    i += 1;
                }
                None => {
                    eprintln!("--trace needs an output directory");
                    std::process::exit(1);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(1);
            }
            target => targets.push(target.to_string()),
        }
        i += 1;
    }
    let targets: Vec<&str> = if targets.is_empty() || targets.iter().any(|t| t == "all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "ablations",
        ]
    } else {
        targets.iter().map(String::as_str).collect()
    };
    println!(
        "HPDR experiment reproduction (scale factor 1/{}, data: NYX {}^3 ...)\n",
        scale.factor, scale.nyx_side
    );
    for t in targets {
        let section = match t {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(&scale),
            "fig1" | "fig01" => fig01(&scale),
            "fig10" => fig10(&scale),
            "fig11" => fig11(&scale),
            "fig12" => fig12(&scale),
            "fig13" => fig13(&scale),
            "fig14" => fig14(&scale),
            "fig15" => fig15(&scale),
            "fig16" => fig16(&scale),
            "fig17" => fig17(&scale),
            "fig18" => fig18(&scale),
            "ablations" => ablations(&scale),
            other => {
                eprintln!("unknown target '{other}'");
                continue;
            }
        };
        println!("{section}");
        if let Some(dir) = &trace_dir {
            if let Some(trace) = figure_trace(&scale, t) {
                std::fs::create_dir_all(dir).expect("create trace dir");
                let path = format!("{dir}/{t}.trace.json");
                std::fs::write(&path, hpdr::trace::to_chrome_trace(&trace)).expect("write trace");
                println!("trace: {path} ({} spans)\n", trace.len());
            }
        }
    }
}
