//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all
//! cargo run --release -p bench --bin reproduce -- fig13 fig16
//! cargo run --release -p bench --bin reproduce -- --large all
//! ```

use bench::{ablations, fig01, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18};
use bench::{table1, table2, table3, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--large") {
        Scale::large()
    } else if args.iter().any(|a| a == "--bench-scale") {
        Scale::bench()
    } else {
        Scale::report()
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let targets: Vec<&str> = if targets.is_empty() || targets.contains(&"all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "ablations",
        ]
    } else {
        targets
    };
    println!(
        "HPDR experiment reproduction (scale factor 1/{}, data: NYX {}^3 ...)\n",
        scale.factor, scale.nyx_side
    );
    for t in targets {
        let section = match t {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(&scale),
            "fig1" | "fig01" => fig01(&scale),
            "fig10" => fig10(&scale),
            "fig11" => fig11(&scale),
            "fig12" => fig12(&scale),
            "fig13" => fig13(&scale),
            "fig14" => fig14(&scale),
            "fig15" => fig15(&scale),
            "fig16" => fig16(&scale),
            "fig17" => fig17(&scale),
            "fig18" => fig18(&scale),
            "ablations" => ablations(&scale),
            other => {
                eprintln!("unknown target '{other}'");
                continue;
            }
        };
        println!("{section}");
    }
}
