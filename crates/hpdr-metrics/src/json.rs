//! Minimal recursive-descent JSON reader.
//!
//! The workspace emits all of its reports as handwritten JSON (no serde
//! in the dependency closure); `hpdr slo --report <path>` needs to read
//! one *back*. This parser covers exactly the JSON the reports emit —
//! objects, arrays, strings with plain escapes, numbers, booleans,
//! null — and keeps object keys in insertion order so round-trip
//! inspection stays deterministic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (None on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.at)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(self.err(&format!("escape '\\{}'", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (reports are ASCII, but a
                    // label could carry anything).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => {
                self.at += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(JsonValue::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_report_shapes() {
        let doc = r#"{
  "schema": "hpdr-metrics/v1",
  "scrapes": 3,
  "gauges": {"queue": 2.5, "neg": -1e-3},
  "series": {"a": [[0, 0.0], [50, 1.0]]},
  "flags": [true, false, null],
  "label": "t0 \"heavy\" \n"
}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("hpdr-metrics/v1"));
        assert_eq!(v.get("scrapes").unwrap().as_u64(), Some(3));
        assert_eq!(
            v.get("gauges").unwrap().get("queue").unwrap().as_f64(),
            Some(2.5)
        );
        let series = v.get("series").unwrap().get("a").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].as_arr().unwrap()[0].as_u64(), Some(50));
        assert_eq!(v.get("label").unwrap().as_str(), Some("t0 \"heavy\" \n"));
        assert_eq!(
            v.get("flags").unwrap().as_arr().unwrap()[2],
            JsonValue::Null
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"open").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = parse_json("{\"z\": 1, \"a\": 2}").unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }
}
