//! Per-tenant SLO objectives: latency-attainment goals and error-budget
//! burn rates over a sliding virtual-time window.
//!
//! An objective says "a fraction `goal` of terminal jobs must complete
//! within `latency_target`". A terminal job is *good* iff it completed
//! within the target; everything else — slow completions, timeouts,
//! cancellations, failures — burns error budget. The burn rate over the
//! sliding window is
//!
//! ```text
//!   burn = bad_window_fraction / (1 − goal)
//! ```
//!
//! so `burn == 1` means the tenant is spending budget exactly at the
//! sustainable rate and `burn > burn_threshold` fires an alert on the
//! rising edge (recorded once per excursion, not once per scrape). All
//! arithmetic is over virtual instants, so attainment reports and alert
//! timelines are byte-reproducible for a given seed.

use hpdr_sim::Ns;
use std::collections::{BTreeMap, VecDeque};

/// One latency SLO applied to every tenant of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// A job is good iff it completes within this latency.
    pub latency_target: Ns,
    /// Target good fraction in (0, 1); the error budget is `1 − goal`.
    pub goal: f64,
    /// Sliding window the burn rate is computed over.
    pub window: Ns,
    /// Burn rate above which an alert fires (rising edge).
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_target: Ns::from_millis(10),
            goal: 0.9,
            window: Ns::from_millis(200),
            burn_threshold: 2.0,
        }
    }
}

/// A burn-rate excursion above the threshold (rising edge only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAlert {
    pub tenant: u32,
    /// Scrape instant at which the excursion was detected.
    pub at: Ns,
    /// Burn rate at that instant.
    pub burn: f64,
}

#[derive(Debug, Default)]
struct TenantSlo {
    /// Terminal events inside (or not yet aged out of) the window.
    window: VecDeque<(Ns, bool)>,
    good: u64,
    total: u64,
    /// Currently above the threshold (suppresses repeat alerts).
    alerting: bool,
    alerts: u64,
}

/// Cumulative attainment for one tenant (report row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAttainment {
    pub tenant: u32,
    pub good: u64,
    pub total: u64,
    /// `good / total` (1.0 when no jobs terminated — no budget burned).
    pub attainment: f64,
    pub alerts: u64,
}

/// Sliding-window burn-rate tracker over all tenants of a run.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    tenants: BTreeMap<u32, TenantSlo>,
    alerts: Vec<SloAlert>,
}

impl SloTracker {
    pub fn new(cfg: SloConfig) -> SloTracker {
        SloTracker {
            cfg,
            tenants: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }

    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Record one terminal job: `good` = completed within the target.
    pub fn record(&mut self, tenant: u32, finished: Ns, good: bool) {
        let t = self.tenants.entry(tenant).or_default();
        t.window.push_back((finished, good));
        t.total += 1;
        if good {
            t.good += 1;
        }
    }

    /// Advance to scrape instant `now`: age the window, compute each
    /// tenant's burn rate, and fire rising-edge alerts. Returns the
    /// per-tenant burn rates plus the alerts fired *at this scrape*.
    pub fn scrape(&mut self, now: Ns) -> (Vec<(u32, f64)>, Vec<SloAlert>) {
        let budget = (1.0 - self.cfg.goal).max(1e-9);
        let cutoff = now.saturating_sub(self.cfg.window);
        let mut burns = Vec::with_capacity(self.tenants.len());
        let mut fired = Vec::new();
        for (&tenant, t) in self.tenants.iter_mut() {
            while t.window.front().is_some_and(|&(at, _)| at < cutoff) {
                t.window.pop_front();
            }
            let total = t.window.len() as f64;
            let bad = t.window.iter().filter(|&&(_, good)| !good).count() as f64;
            let burn = if total == 0.0 {
                0.0
            } else {
                (bad / total) / budget
            };
            let above = burn > self.cfg.burn_threshold;
            if above && !t.alerting {
                t.alerts += 1;
                let alert = SloAlert {
                    tenant,
                    at: now,
                    burn,
                };
                self.alerts.push(alert);
                fired.push(alert);
            }
            t.alerting = above;
            burns.push((tenant, burn));
        }
        (burns, fired)
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Cumulative per-tenant attainment rows (all terminal jobs, not
    /// just the current window).
    pub fn attainment(&self) -> Vec<SloAttainment> {
        self.tenants
            .iter()
            .map(|(&tenant, t)| SloAttainment {
                tenant,
                good: t.good,
                total: t.total,
                attainment: if t.total == 0 {
                    1.0
                } else {
                    t.good as f64 / t.total as f64
                },
                alerts: t.alerts,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            latency_target: Ns::from_millis(10),
            goal: 0.9,
            window: Ns(1_000),
            burn_threshold: 2.0,
        }
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let mut t = SloTracker::new(cfg());
        // 2 bad of 4 in window: bad_frac 0.5, budget 0.1 → burn 5.
        for (at, good) in [(100, true), (200, false), (300, true), (400, false)] {
            t.record(0, Ns(at), good);
        }
        let (burns, fired) = t.scrape(Ns(500));
        assert_eq!(burns.len(), 1);
        assert!((burns[0].1 - 5.0).abs() < 1e-12, "burn {}", burns[0].1);
        assert_eq!(fired.len(), 1, "5 > threshold 2 fires");
        assert_eq!(fired[0].tenant, 0);
        assert_eq!(fired[0].at, Ns(500));
    }

    #[test]
    fn alerts_fire_on_rising_edge_only() {
        let mut t = SloTracker::new(cfg());
        t.record(3, Ns(100), false);
        let (_, f1) = t.scrape(Ns(200));
        assert_eq!(f1.len(), 1);
        // Still above threshold at the next scrape: no repeat alert.
        let (_, f2) = t.scrape(Ns(300));
        assert!(f2.is_empty());
        // Window ages the bad event out → burn 0 → re-arm.
        let (burns, _) = t.scrape(Ns(2_000));
        assert_eq!(burns[0].1, 0.0);
        t.record(3, Ns(2_100), false);
        let (_, f3) = t.scrape(Ns(2_200));
        assert_eq!(f3.len(), 1, "re-armed after dropping below");
        assert_eq!(t.alerts().len(), 2);
        assert_eq!(t.attainment()[0].alerts, 2);
    }

    #[test]
    fn attainment_is_cumulative_not_windowed() {
        let mut t = SloTracker::new(cfg());
        t.record(1, Ns(10), true);
        t.record(1, Ns(20), false);
        t.record(2, Ns(30), true);
        let _ = t.scrape(Ns(1_000_000)); // everything aged out
        let rows = t.attainment();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, 1);
        assert_eq!((rows[0].good, rows[0].total), (1, 2));
        assert!((rows[0].attainment - 0.5).abs() < 1e-12);
        assert!((rows[1].attainment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_burns_nothing() {
        let mut t = SloTracker::new(cfg());
        let (burns, fired) = t.scrape(Ns(100));
        assert!(burns.is_empty());
        assert!(fired.is_empty());
        t.record(0, Ns(10), true);
        let (burns, _) = t.scrape(Ns(5_000));
        assert_eq!(burns[0].1, 0.0, "aged-out window is not a breach");
    }
}
