//! Streaming latency histogram (HDR-style log-linear buckets).
//!
//! The serving layer records one latency per completed job; quantiles
//! must come from bounded memory (a real server cannot keep every
//! sample) while staying deterministic and provably close to the exact
//! order statistics. Buckets are log-linear: 32 linear sub-buckets per
//! power of two, so the relative bucket width — and therefore the
//! maximum quantile error — is ≤ 1/32 ≈ 3.1%. The property tests in
//! `tests/serve.rs` check the "within one bucket width" guarantee
//! against sorted-array quantiles, including across [`StreamingHistogram::merge`].

/// Linear sub-buckets per octave (2^5 = 32).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// Index of the bucket containing `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as u64;
    let offset = (v >> octave) - SUB;
    (octave as usize * SUB as usize) + SUB as usize + offset as usize
}

/// Highest value mapping to bucket `idx` (the bucket's representative:
/// reporting the upper edge keeps quantiles conservative).
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let octave = ((idx - SUB as usize) / SUB as usize) as u32;
    let offset = ((idx - SUB as usize) % SUB as usize) as u64;
    ((SUB + offset + 1) << octave) - 1
}

/// Width of bucket `idx` (the quantile error bound for values in it).
pub fn bucket_width(v: u64) -> u64 {
    if v < SUB {
        return 1;
    }
    let octave = 63 - v.leading_zeros() - SUB_BITS;
    1 << octave
}

/// Bounded-memory quantile sketch over `u64` samples (nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl StreamingHistogram {
    pub fn new() -> StreamingHistogram {
        StreamingHistogram::default()
    }

    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` bucket-wise. Because both sketches use
    /// the same fixed bucket boundaries, merging loses no precision: the
    /// merged sketch is bucket-identical to one that recorded every
    /// sample of both — so the ≤ 1/32 quantile error bound is preserved.
    /// This is how the registry aggregates per-device histograms.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, &theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of the recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Nearest-rank quantile: the representative of the bucket holding
    /// the `ceil(q·n)`-th smallest sample. Within one bucket width of
    /// [`exact_quantile`] over the same samples. `q` is clamped to
    /// (0, 1]; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true maximum.
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }
}

/// Exact nearest-rank quantile of an ascending-sorted slice.
pub fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = StreamingHistogram::new();
        for v in [0u64, 1, 5, 17, 31] {
            h.record(v);
        }
        // Below SUB every value has its own bucket.
        assert_eq!(h.quantile(0.2), 0);
        assert_eq!(h.quantile(0.4), 1);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn exact_quantile_nearest_rank() {
        let s = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(exact_quantile(&s, 0.5), 50);
        assert_eq!(exact_quantile(&s, 0.95), 100);
        assert_eq!(exact_quantile(&s, 0.99), 100);
        assert_eq!(exact_quantile(&s, 0.1), 10);
        assert_eq!(exact_quantile(&s, 1.0), 100);
        assert_eq!(exact_quantile(&[], 0.5), 0);
        // Single sample: every quantile is that sample.
        assert_eq!(exact_quantile(&[42], 0.01), 42);
        assert_eq!(exact_quantile(&[42], 0.99), 42);
    }

    #[test]
    fn bucket_index_and_high_are_consistent() {
        for v in (0u64..4096).chain([1 << 20, (1 << 20) + 12345, u64::MAX >> 1]) {
            let idx = bucket_index(v);
            let high = bucket_high(idx);
            assert!(high >= v, "high {high} < v {v}");
            assert!(high - v < bucket_width(v), "v {v} high {high}");
            // The representative maps back to its own bucket.
            assert_eq!(bucket_index(high), idx, "v {v}");
        }
    }

    #[test]
    fn quantile_within_one_bucket_width_of_exact() {
        let mut h = StreamingHistogram::new();
        let mut samples: Vec<u64> = (0..500).map(|i| (i * i * 37 + 1000) % 2_000_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let approx = h.quantile(q);
            assert!(
                approx.abs_diff(exact) < bucket_width(exact).max(1),
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn mean_and_count() {
        let mut h = StreamingHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 200);
        assert_eq!(h.sum(), 600);
        assert!(StreamingHistogram::new().is_empty());
        assert_eq!(StreamingHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = StreamingHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.99), 1_000_003);
        assert_eq!(h.quantile(0.01), 1_000_003);
    }

    #[test]
    fn merge_is_bucket_identical_to_recording_everything() {
        let a_samples: Vec<u64> = (0..200).map(|i| i * 997 % 500_000).collect();
        let b_samples: Vec<u64> = (0..300).map(|i| (i * i * 31) % 3_000_000).collect();
        let (mut a, mut b, mut all) = (
            StreamingHistogram::new(),
            StreamingHistogram::new(),
            StreamingHistogram::new(),
        );
        for &s in &a_samples {
            a.record(s);
            all.record(s);
        }
        for &s in &b_samples {
            b.record(s);
            all.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingHistogram::new();
        a.record(123);
        let before = (a.count(), a.sum(), a.max(), a.quantile(0.5));
        a.merge(&StreamingHistogram::new());
        assert_eq!(before, (a.count(), a.sum(), a.max(), a.quantile(0.5)));
        let mut empty = StreamingHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.quantile(1.0), 123);
    }
}
