//! Collectors: adapt lower-layer telemetry (span traces, worker-pool
//! counters) into registry instruments.
//!
//! Trace-derived instruments are pure functions of the virtual event
//! stream and feed the deterministic series; pool counters depend on
//! host thread scheduling and are recorded as **volatile** gauges only.

use crate::registry::{InstrumentId, Registry};
use hpdr_core::pool::PoolStats;
use hpdr_sim::{Category, DeviceId, Trace};
use hpdr_trace::{batch_digest_with, DigestScratch};

/// Cached handles for one device's batch-trace instruments, plus the
/// digest's reusable interval buffers. Each handle is created lazily on
/// the first batch that exercises it, so only categories that actually
/// ran get instruments — identical output to formatting the names per
/// call, minus the per-batch string and heap work.
#[derive(Debug, Clone, Default)]
pub struct BatchTraceIds {
    busy: [Option<InstrumentId>; 5],
    overlap: Option<InstrumentId>,
    contention: Option<InstrumentId>,
    scratch: DigestScratch,
}

fn category_slot(c: Category) -> usize {
    match c {
        Category::H2D => 0,
        Category::D2H => 1,
        Category::Compute => 2,
        Category::MemMgmt => 3,
        Category::Host => 4,
    }
}

/// Fold one batch's span trace into the registry: per-category engine
/// busy time, the §V-C overlap fraction, and allocator-lock contention,
/// all labelled by the device the batch ran on. Runs once per launch on
/// the serving hot path, so the trace is walked exactly once via
/// [`batch_digest`] and every instrument is touched through a cached
/// handle in `ids` (keep one [`BatchTraceIds`] per device).
pub fn record_batch_trace(
    reg: &mut Registry,
    trace: &Trace,
    device: DeviceId,
    ids: &mut BatchTraceIds,
) {
    let dev = device.0;
    let digest = batch_digest_with(trace, device, &mut ids.scratch);
    for (category, busy) in digest.busy_by_category() {
        let id = *ids.busy[category_slot(category)].get_or_insert_with(|| {
            let c = format!("{category:?}").to_lowercase();
            reg.counter_handle(&format!(
                "engine_busy_ns_total{{category=\"{c}\",device=\"{dev}\"}}"
            ))
        });
        reg.counter_add_id(id, busy.0);
    }
    if let Some(overlap) = digest.overlap {
        let id = *ids.overlap.get_or_insert_with(|| {
            reg.gauge_handle(&format!("pipeline_overlap_fraction{{device=\"{dev}\"}}"))
        });
        reg.gauge_set_id(id, overlap);
    }
    if digest.contention.0 > 0 {
        let id = *ids.contention.get_or_insert_with(|| {
            reg.counter_handle(&format!("alloc_contention_ns_total{{device=\"{dev}\"}}"))
        });
        reg.counter_add_id(id, digest.contention.0);
    }
}

/// Record a worker-pool stats delta as **volatile** gauges (wakeup and
/// scratch counts depend on host scheduling, so they never enter the
/// deterministic series — they only show in `hpdr top`).
pub fn record_pool_stats(reg: &mut Registry, delta: PoolStats, workers: usize) {
    reg.gauge_set_volatile("pool_workers", workers as f64);
    reg.gauge_set_volatile("pool_jobs", delta.jobs as f64);
    reg.gauge_set_volatile("pool_wakeups", delta.wakeups as f64);
    reg.gauge_set_volatile("pool_tasks", delta.tasks as f64);
    reg.gauge_set_volatile("pool_scratch_reuse_ratio", delta.scratch_reuse_ratio());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsConfig;
    use hpdr_sim::{Engine, Ns, OpKind, SpanRecord};

    fn span(engine: Engine, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            op: 0,
            label: "x".to_string(),
            engine,
            queue: None,
            deps: Vec::new(),
            kind: OpKind::Fixed,
            class: None,
            start: Ns(start),
            end: Ns(end),
            bytes: 0,
            footprint_bytes: 0,
            ready: Ns(start),
            wall: Ns::ZERO,
        }
    }

    #[test]
    fn batch_trace_lands_in_labelled_counters() {
        let dev = DeviceId(0);
        let trace = Trace::from_spans(vec![
            span(Engine::H2D(dev), 0, 100),
            span(Engine::Compute(dev), 50, 250),
        ]);
        let mut reg = Registry::new(MetricsConfig::default());
        let mut ids = BatchTraceIds::default();
        record_batch_trace(&mut reg, &trace, dev, &mut ids);
        assert_eq!(
            reg.counter_value("engine_busy_ns_total{category=\"h2d\",device=\"0\"}"),
            Some(100)
        );
        assert_eq!(
            reg.counter_value("engine_busy_ns_total{category=\"compute\",device=\"0\"}"),
            Some(200)
        );
        let overlap = reg
            .gauge_value("pipeline_overlap_fraction{device=\"0\"}")
            .unwrap();
        assert!(overlap > 0.0, "h2d and compute overlap 50ns");
        // Two batches accumulate (handles cached after the first call).
        record_batch_trace(&mut reg, &trace, dev, &mut ids);
        assert_eq!(
            reg.counter_value("engine_busy_ns_total{category=\"h2d\",device=\"0\"}"),
            Some(200)
        );
    }

    #[test]
    fn pool_stats_are_volatile_only() {
        let mut reg = Registry::new(MetricsConfig::default());
        let delta = PoolStats {
            jobs: 3,
            wakeups: 17,
            tasks: 24,
            scratch_reuses: 9,
            scratch_allocs: 3,
        };
        record_pool_stats(&mut reg, delta, 8);
        assert_eq!(reg.gauge_value("pool_workers"), Some(8.0));
        assert_eq!(reg.gauge_value("pool_scratch_reuse_ratio"), Some(0.75));
        reg.flush(Ns(1_000_000));
        assert!(!reg.exposition().contains("pool_"));
        assert!(reg.series("pool_wakeups").is_none());
    }
}
