//! The instrument registry: counters, gauges and histograms sampled on
//! the **virtual clock** into ring-buffer time series.
//!
//! A [`Registry`] is owned by one run (a serve session, a loadgen run):
//! it is deliberately *not* process-global, so parallel runs in one
//! process cannot perturb each other and a scrape is a pure function of
//! the run's virtual event stream — two runs with the same seed produce
//! byte-identical exposition text and `hpdr-metrics/v1` JSON.
//!
//! Scrapes happen at fixed virtual intervals: `tick(now)` samples every
//! boundary crossed since the last call, so a scheduler only needs to
//! call it whenever its clock advances. Each scrape copies every
//! non-volatile counter/gauge into its bounded ring series and advances
//! the SLO tracker (burn rates land in series like any other gauge).
//!
//! **Volatile** instruments (worker-pool wakeups, scratch-arena
//! counters) carry values that depend on host thread scheduling; they
//! render in live views (`hpdr top`) but are excluded from series,
//! exposition and JSON so determinism guarantees survive.

use crate::histogram::StreamingHistogram;
use crate::json::parse_json;
use crate::slo::{SloAlert, SloConfig, SloTracker};
use hpdr_sim::Ns;
use std::collections::{BTreeMap, VecDeque};

/// Schema identifier embedded in every metrics JSON document.
pub const METRICS_SCHEMA: &str = "hpdr-metrics/v1";

/// Registry configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsConfig {
    /// Virtual time between scrapes.
    pub scrape_interval: Ns,
    /// Ring capacity per series (oldest samples drop first).
    pub series_capacity: usize,
    /// Per-tenant SLO objective (burn-rate tracking off when `None`).
    pub slo: Option<SloConfig>,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            scrape_interval: Ns::from_millis(25),
            series_capacity: 240,
            slo: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Hist(StreamingHistogram),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Hist(_) => "summary",
        }
    }

    fn scalar(&self) -> Option<f64> {
        match self {
            Value::Counter(v) => Some(*v as f64),
            Value::Gauge(v) => Some(*v),
            Value::Hist(_) => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Instrument {
    name: String,
    value: Value,
    volatile: bool,
    /// `(sample, trace)` of the worst histogram sample recorded with an
    /// exemplar: the flight-recorder trace id a latency spike links to.
    exemplar: Option<(u64, u64)>,
}

/// A stable handle to one instrument. Updating through a handle is a
/// single array access — no name formatting, no map lookup — which is
/// what keeps metering off the serving hot path: callers format the
/// `family{label="..."}` name once, keep the handle, and pay O(1) per
/// event after that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrumentId(usize);

/// The per-run instrument registry.
///
/// Instruments live in a slab (`Vec`) addressed by [`InstrumentId`];
/// `index` maps names to slots and fixes the deterministic name-sorted
/// order every scrape, exposition and JSON rendering walks in.
#[derive(Debug)]
pub struct Registry {
    cfg: MetricsConfig,
    instruments: Vec<Instrument>,
    index: BTreeMap<String, usize>,
    series: BTreeMap<String, VecDeque<(Ns, f64)>>,
    scrapes: u64,
    last_scrape: Ns,
    slo: Option<SloTracker>,
}

impl Registry {
    pub fn new(cfg: MetricsConfig) -> Registry {
        Registry {
            slo: cfg.slo.map(SloTracker::new),
            cfg,
            instruments: Vec::new(),
            index: BTreeMap::new(),
            series: BTreeMap::new(),
            scrapes: 0,
            last_scrape: Ns::ZERO,
        }
    }

    pub fn config(&self) -> MetricsConfig {
        self.cfg
    }

    /// Name-ordered iteration over the instruments — the single source
    /// of the deterministic output order.
    fn ordered(&self) -> impl Iterator<Item = (&str, &Instrument)> {
        self.index
            .iter()
            .map(|(name, &i)| (name.as_str(), &self.instruments[i]))
    }

    fn slot(&mut self, name: &str, volatile: bool, default: Value) -> usize {
        let i = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.instruments.len();
                self.instruments.push(Instrument {
                    name: name.to_string(),
                    value: default,
                    volatile,
                    exemplar: None,
                });
                self.index.insert(name.to_string(), i);
                i
            }
        };
        self.instruments[i].volatile |= volatile;
        i
    }

    fn entry(&mut self, name: &str, volatile: bool, default: Value) -> &mut Instrument {
        let i = self.slot(name, volatile, default);
        &mut self.instruments[i]
    }

    /// Handle to a (non-volatile) counter, created at 0 on first use.
    pub fn counter_handle(&mut self, name: &str) -> InstrumentId {
        InstrumentId(self.slot(name, false, Value::Counter(0)))
    }

    /// Handle to a (non-volatile) gauge, created at 0.0 on first use.
    pub fn gauge_handle(&mut self, name: &str) -> InstrumentId {
        InstrumentId(self.slot(name, false, Value::Gauge(0.0)))
    }

    /// Handle to a (non-volatile) histogram, created empty on first use.
    pub fn hist_handle(&mut self, name: &str) -> InstrumentId {
        InstrumentId(self.slot(name, false, Value::Hist(StreamingHistogram::new())))
    }

    /// O(1) counter increment through a handle.
    pub fn counter_add_id(&mut self, id: InstrumentId, delta: u64) {
        let inst = &mut self.instruments[id.0];
        if let Value::Counter(v) = &mut inst.value {
            *v += delta;
        } else {
            debug_assert!(false, "instrument '{}' is not a counter", inst.name);
        }
    }

    /// O(1) gauge store through a handle.
    pub fn gauge_set_id(&mut self, id: InstrumentId, value: f64) {
        let inst = &mut self.instruments[id.0];
        if let Value::Gauge(v) = &mut inst.value {
            *v = value;
        } else {
            debug_assert!(false, "instrument '{}' is not a gauge", inst.name);
        }
    }

    /// O(1) histogram sample through a handle.
    pub fn hist_record_id(&mut self, id: InstrumentId, sample: u64) {
        let inst = &mut self.instruments[id.0];
        if let Value::Hist(h) = &mut inst.value {
            h.record(sample);
        } else {
            debug_assert!(false, "instrument '{}' is not a histogram", inst.name);
        }
    }

    /// O(1) histogram sample with an exemplar: when `sample` is the
    /// worst the instrument has seen, `trace` becomes its exemplar, so
    /// the histogram's tail always names a concrete flight trace id.
    pub fn hist_record_exemplar_id(&mut self, id: InstrumentId, sample: u64, trace: u64) {
        let inst = &mut self.instruments[id.0];
        if let Value::Hist(h) = &mut inst.value {
            h.record(sample);
            let worst_so_far = match inst.exemplar {
                Some((v, _)) => v,
                None => 0,
            };
            if sample >= worst_so_far {
                inst.exemplar = Some((sample, trace));
            }
        } else {
            debug_assert!(false, "instrument '{}' is not a histogram", inst.name);
        }
    }

    /// The `(sample, trace)` exemplar of a histogram instrument.
    pub fn exemplar(&self, name: &str) -> Option<(u64, u64)> {
        self.lookup(name)?.exemplar
    }

    /// Add to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let inst = self.entry(name, false, Value::Counter(0));
        if let Value::Counter(v) = &mut inst.value {
            *v += delta;
        } else {
            debug_assert!(false, "instrument '{name}' is not a counter");
        }
    }

    /// Set a gauge to its current value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let inst = self.entry(name, false, Value::Gauge(0.0));
        if let Value::Gauge(v) = &mut inst.value {
            *v = value;
        } else {
            debug_assert!(false, "instrument '{name}' is not a gauge");
        }
    }

    /// Set a **volatile** gauge: visible in live views only, excluded
    /// from series, exposition and JSON (its value depends on host
    /// thread scheduling, not on the virtual event stream).
    pub fn gauge_set_volatile(&mut self, name: &str, value: f64) {
        let inst = self.entry(name, true, Value::Gauge(0.0));
        if let Value::Gauge(v) = &mut inst.value {
            *v = value;
        }
    }

    /// Record one sample into a histogram (created empty on first use).
    pub fn hist_record(&mut self, name: &str, sample: u64) {
        let inst = self.entry(name, false, Value::Hist(StreamingHistogram::new()));
        if let Value::Hist(h) = &mut inst.value {
            h.record(sample);
        } else {
            debug_assert!(false, "instrument '{name}' is not a histogram");
        }
    }

    /// Bucket-wise merge another sketch into a histogram instrument —
    /// how per-device sketches aggregate into one registry family.
    pub fn hist_merge(&mut self, name: &str, other: &StreamingHistogram) {
        let inst = self.entry(name, false, Value::Hist(StreamingHistogram::new()));
        if let Value::Hist(h) = &mut inst.value {
            h.merge(other);
        }
    }

    fn lookup(&self, name: &str) -> Option<&Instrument> {
        Some(&self.instruments[*self.index.get(name)?])
    }

    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.lookup(name)?.value {
            Value::Counter(v) => Some(v),
            _ => None,
        }
    }

    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.lookup(name)?.value {
            Value::Gauge(v) => Some(v),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&StreamingHistogram> {
        match &self.lookup(name)?.value {
            Value::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Ring series of a scalar instrument (scrape instants + values).
    pub fn series(&self, name: &str) -> Option<&VecDeque<(Ns, f64)>> {
        self.series.get(name)
    }

    /// Names of all instruments that have a series.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    pub fn scrape_count(&self) -> u64 {
        self.scrapes
    }

    pub fn last_scrape(&self) -> Ns {
        self.last_scrape
    }

    /// Record a terminal job against the SLO objective (no-op when SLO
    /// tracking is off). `good` = completed within the latency target.
    pub fn slo_record(&mut self, tenant: u32, finished: Ns, good: bool) {
        if let Some(slo) = self.slo.as_mut() {
            slo.record(tenant, finished, good);
        }
    }

    pub fn slo(&self) -> Option<&SloTracker> {
        self.slo.as_ref()
    }

    /// True iff advancing the virtual clock to `now` crosses at least
    /// one scrape boundary, i.e. the next [`Registry::tick`] would
    /// actually sample. Sampled gauges are only observed at scrape
    /// instants, so callers on a hot event loop can skip refreshing
    /// them (and the `tick` call itself) whenever this is false —
    /// that's one comparison instead of a handful of map lookups per
    /// iteration.
    pub fn boundary_due(&self, now: Ns) -> bool {
        let interval = self.cfg.scrape_interval.max(Ns(1));
        Ns(self.last_scrape.0 + interval.0) <= now
    }

    /// Sample every scrape boundary crossed up to `now`. Returns the
    /// SLO alerts fired by these scrapes (rising-edge, at most one per
    /// tenant per excursion) so callers can record them into a trace.
    pub fn tick(&mut self, now: Ns) -> Vec<SloAlert> {
        let mut fired = Vec::new();
        let interval = self.cfg.scrape_interval.max(Ns(1));
        let mut next = Ns(self.last_scrape.0 + interval.0);
        while next <= now {
            fired.extend(self.scrape_at(next));
            next = Ns(self.last_scrape.0 + interval.0);
        }
        fired
    }

    /// Force one final scrape at `now` (run end), off-boundary if
    /// needed, so the series always cover the full makespan.
    pub fn flush(&mut self, now: Ns) -> Vec<SloAlert> {
        let mut fired = self.tick(now);
        if now > self.last_scrape || self.scrapes == 0 {
            fired.extend(self.scrape_at(now.max(self.last_scrape)));
        }
        fired
    }

    fn scrape_at(&mut self, t: Ns) -> Vec<SloAlert> {
        let mut fired = Vec::new();
        if let Some(slo) = self.slo.as_mut() {
            let (burns, alerts) = slo.scrape(t);
            fired = alerts;
            for (tenant, burn) in burns {
                self.gauge_set(&format!("slo_burn_rate{{tenant=\"{tenant}\"}}"), burn);
            }
            for a in &fired {
                self.counter_add(&format!("slo_alerts_total{{tenant=\"{}\"}}", a.tenant), 1);
            }
        }
        let cap = self.cfg.series_capacity.max(1);
        for (name, &i) in &self.index {
            let inst = &self.instruments[i];
            if inst.volatile {
                continue;
            }
            let Some(v) = inst.value.scalar() else {
                continue;
            };
            let ring = self.series.entry(name.clone()).or_default();
            if ring.len() == cap {
                ring.pop_front();
            }
            ring.push_back((t, v));
        }
        self.scrapes += 1;
        self.last_scrape = t;
        fired
    }

    /// Prometheus-style text exposition over the non-volatile
    /// instruments, timestamped with the last virtual scrape instant.
    /// Deterministic: ordered map iteration, fixed float precision.
    pub fn exposition(&self) -> String {
        let ts = self.last_scrape.0;
        let mut out = String::with_capacity(1024);
        out.push_str("# hpdr-metrics exposition; timestamps are virtual nanoseconds\n");
        let mut last_family = String::new();
        for (name, inst) in self.ordered() {
            if inst.volatile {
                continue;
            }
            let (family, labels) = split_labels(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {}\n", inst.value.kind()));
                last_family = family.to_string();
            }
            match &inst.value {
                Value::Counter(v) => out.push_str(&format!("{name} {v} {ts}\n")),
                Value::Gauge(v) => out.push_str(&format!("{name} {v:.6} {ts}\n")),
                Value::Hist(h) => {
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{} {} {ts}\n",
                            with_label(family, labels, &format!("quantile=\"{label}\"")),
                            h.quantile(q)
                        ));
                    }
                    let suffixed = |suffix: &str| {
                        if labels.is_empty() {
                            format!("{family}{suffix}")
                        } else {
                            format!("{family}{suffix}{{{labels}}}")
                        }
                    };
                    out.push_str(&format!("{} {} {ts}\n", suffixed("_count"), h.count()));
                    out.push_str(&format!("{} {} {ts}\n", suffixed("_sum"), h.sum()));
                    out.push_str(&format!("{} {} {ts}\n", suffixed("_max"), h.max()));
                    if let Some((v, trace)) = inst.exemplar {
                        out.push_str(&format!(
                            "{} {v} {ts}\n",
                            with_label(
                                &format!("{family}_exemplar"),
                                labels,
                                &format!("trace=\"{trace}\"")
                            )
                        ));
                    }
                }
            }
        }
        out
    }

    /// Serialize to `hpdr-metrics/v1` JSON (non-volatile instruments +
    /// ring series + SLO attainment/alerts). Byte-deterministic for a
    /// given virtual event stream.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
        s.push_str(&format!(
            "  \"scrape_interval_ns\": {},\n",
            self.cfg.scrape_interval.0
        ));
        s.push_str(&format!("  \"scrapes\": {},\n", self.scrapes));
        s.push_str(&format!("  \"last_scrape_ns\": {},\n", self.last_scrape.0));

        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, inst) in self.ordered() {
            if inst.volatile {
                continue;
            }
            let key = json_key(name);
            match &inst.value {
                Value::Counter(v) => counters.push(format!("{key}: {v}")),
                Value::Gauge(v) => gauges.push(format!("{key}: {v:.6}")),
                Value::Hist(h) => {
                    let ex = inst.exemplar.map_or(String::new(), |(v, t)| {
                        format!(",\"exemplar\":{{\"value\":{v},\"trace\":{t}}}")
                    });
                    hists.push(format!(
                        "{key}: {{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\
                         \"p99\":{},\"max\":{}{ex}}}",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.max()
                    ))
                }
            }
        }
        let obj = |items: Vec<String>| {
            if items.is_empty() {
                "{}".to_string()
            } else {
                format!("{{\n    {}\n  }}", items.join(",\n    "))
            }
        };
        s.push_str(&format!("  \"counters\": {},\n", obj(counters)));
        s.push_str(&format!("  \"gauges\": {},\n", obj(gauges)));
        s.push_str(&format!("  \"histograms\": {},\n", obj(hists)));

        let series: Vec<String> = self
            .series
            .iter()
            .map(|(name, ring)| {
                let points: Vec<String> = ring
                    .iter()
                    .map(|(t, v)| format!("[{},{v:.6}]", t.0))
                    .collect();
                format!("{}: [{}]", json_key(name), points.join(","))
            })
            .collect();
        s.push_str(&format!("  \"series\": {}", obj(series)));

        if let Some(slo) = &self.slo {
            let cfg = slo.config();
            s.push_str(",\n  \"slo\": {\n");
            s.push_str(&format!(
                "    \"latency_target_ns\": {},\n    \"goal\": {:.6},\n    \
                 \"window_ns\": {},\n    \"burn_threshold\": {:.6},\n",
                cfg.latency_target.0, cfg.goal, cfg.window.0, cfg.burn_threshold
            ));
            let rows: Vec<String> = slo
                .attainment()
                .iter()
                .map(|r| {
                    format!(
                        "{{\"tenant\":{},\"good\":{},\"total\":{},\"attainment\":{:.6},\
                         \"alerts\":{}}}",
                        r.tenant, r.good, r.total, r.attainment, r.alerts
                    )
                })
                .collect();
            s.push_str(&format!("    \"attainment\": [{}],\n", rows.join(",")));
            let alerts: Vec<String> = slo
                .alerts()
                .iter()
                .map(|a| {
                    format!(
                        "{{\"tenant\":{},\"at_ns\":{},\"burn\":{:.6}}}",
                        a.tenant, a.at.0, a.burn
                    )
                })
                .collect();
            s.push_str(&format!("    \"alerts\": [{}]\n  }}", alerts.join(",")));
        }
        s.push_str("\n}\n");
        s
    }

    /// Live table of the latest scrape for `hpdr top`: every instrument
    /// (volatile ones marked `~`), plus the tail of each ring series.
    pub fn render_table(&self, tail: usize) -> Vec<String> {
        let mut out = vec![format!(
            "metrics: {} scrapes every {:.3} ms virtual, last at {:.3} ms ({} instruments)",
            self.scrapes,
            self.cfg.scrape_interval.0 as f64 / 1e6,
            self.last_scrape.0 as f64 / 1e6,
            self.instruments.len()
        )];
        out.push(format!(
            "  {:<52} {:<8} {:>14}  {}",
            "instrument", "type", "value", "series tail"
        ));
        for (name, inst) in self.ordered() {
            let shown = if inst.volatile {
                format!("~{name}")
            } else {
                name.to_string()
            };
            let value = match &inst.value {
                Value::Counter(v) => format!("{v}"),
                Value::Gauge(v) => format!("{v:.4}"),
                Value::Hist(h) => format!(
                    "n={} p50={} p99={}",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.99)
                ),
            };
            let tail_str = match self.series.get(name) {
                Some(ring) if !ring.is_empty() => {
                    let skip = ring.len().saturating_sub(tail);
                    ring.iter()
                        .skip(skip)
                        .map(|(_, v)| format!("{v:.1}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                }
                _ => {
                    if inst.volatile {
                        "(volatile)".to_string()
                    } else {
                        String::new()
                    }
                }
            };
            out.push(format!(
                "  {shown:<52} {:<8} {value:>14}  {tail_str}",
                inst.value.kind()
            ));
        }
        out
    }
}

/// Quote an instrument name as a JSON key, escaping the `"` characters
/// its labels carry (`family{tenant="0"}`).
fn json_key(name: &str) -> String {
    format!("\"{}\"", name.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Split `family{labels}` into `(family, labels)` (labels without braces).
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

fn with_label(family: &str, labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{family}{{{extra}}}")
    } else {
        format!("{family}{{{labels},{extra}}}")
    }
}

/// Validate an `hpdr-metrics/v1` JSON document: schema id, required
/// sections, and well-formed series (pairs with non-decreasing virtual
/// timestamps, each no longer than the scrape count).
pub fn validate_metrics_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json)?;
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some(s) if s == METRICS_SCHEMA => {}
        Some(s) => return Err(format!("wrong schema id '{s}' (want {METRICS_SCHEMA})")),
        None => return Err(format!("missing schema id {METRICS_SCHEMA}")),
    }
    let scrapes = doc
        .get("scrapes")
        .and_then(|v| v.as_u64())
        .ok_or("missing 'scrapes'")?;
    for key in ["counters", "gauges", "histograms", "series"] {
        if doc.get(key).and_then(|v| v.as_obj()).is_none() {
            return Err(format!("missing object '{key}'"));
        }
    }
    let series = doc.get("series").and_then(|v| v.as_obj()).expect("checked");
    for (name, ring) in series {
        let points = ring
            .as_arr()
            .ok_or_else(|| format!("series '{name}' is not an array"))?;
        if points.len() as u64 > scrapes {
            return Err(format!(
                "series '{name}' has {} points but only {scrapes} scrapes happened",
                points.len()
            ));
        }
        let mut prev: Option<u64> = None;
        for p in points {
            let pair = p
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("series '{name}' point is not a [t, v] pair"))?;
            let t = pair[0]
                .as_u64()
                .ok_or_else(|| format!("series '{name}' has a non-integer timestamp"))?;
            if prev.is_some_and(|p| t < p) {
                return Err(format!("series '{name}' timestamps go backwards at {t}"));
            }
            prev = Some(t);
        }
    }
    if let Some(slo) = doc.get("slo") {
        for key in ["latency_target_ns", "goal", "attainment", "alerts"] {
            if slo.get(key).is_none() {
                return Err(format!("slo section missing '{key}'"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        Registry::new(MetricsConfig {
            scrape_interval: Ns(100),
            series_capacity: 4,
            slo: None,
        })
    }

    #[test]
    fn tick_scrapes_every_crossed_boundary() {
        let mut r = reg();
        r.counter_add("jobs_total", 1);
        r.tick(Ns(250)); // boundaries at 100, 200
        assert_eq!(r.scrape_count(), 2);
        r.counter_add("jobs_total", 2);
        r.tick(Ns(260)); // no new boundary
        assert_eq!(r.scrape_count(), 2);
        r.tick(Ns(400));
        let s: Vec<(u64, f64)> = r
            .series("jobs_total")
            .unwrap()
            .iter()
            .map(|&(t, v)| (t.0, v))
            .collect();
        assert_eq!(s, vec![(100, 1.0), (200, 1.0), (300, 3.0), (400, 3.0)]);
        assert_eq!(r.last_scrape(), Ns(400));
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut r = reg();
        r.gauge_set("depth", 1.0);
        r.tick(Ns(600)); // 6 boundaries, capacity 4
        let s = r.series("depth").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.front().unwrap().0, Ns(300));
    }

    #[test]
    fn flush_samples_off_boundary_end() {
        let mut r = reg();
        r.gauge_set("g", 7.0);
        r.flush(Ns(150));
        let s = r.series("g").unwrap();
        assert_eq!(
            s.iter().map(|&(t, _)| t.0).collect::<Vec<_>>(),
            vec![100, 150]
        );
        // Flushing twice at the same instant adds nothing.
        let mut r2 = reg();
        r2.gauge_set("g", 1.0);
        r2.flush(Ns(100));
        let n = r2.scrape_count();
        r2.flush(Ns(100));
        assert_eq!(r2.scrape_count(), n);
    }

    #[test]
    fn volatile_instruments_stay_out_of_serialized_views() {
        let mut r = reg();
        r.gauge_set("visible", 1.0);
        r.gauge_set_volatile("pool_wakeups", 123.0);
        r.flush(Ns(100));
        assert!(r.series("pool_wakeups").is_none());
        assert!(!r.exposition().contains("pool_wakeups"));
        assert!(!r.to_json().contains("pool_wakeups"));
        // But the live table shows it, marked volatile.
        let table = r.render_table(4).join("\n");
        assert!(table.contains("~pool_wakeups"), "{table}");
        assert!(table.contains("visible"));
    }

    #[test]
    fn exposition_format_is_prometheus_like() {
        let mut r = reg();
        r.counter_add("serve_admitted_total{tenant=\"0\"}", 5);
        r.counter_add("serve_admitted_total{tenant=\"1\"}", 2);
        r.gauge_set("queue_jobs", 3.0);
        r.hist_record("batch_jobs{device=\"0\"}", 4);
        r.flush(Ns(100));
        let text = r.exposition();
        assert!(text.contains("# TYPE serve_admitted_total counter"));
        // One TYPE line per family, not per labelled sample.
        assert_eq!(text.matches("# TYPE serve_admitted_total").count(), 1);
        assert!(text.contains("serve_admitted_total{tenant=\"0\"} 5 100"));
        assert!(text.contains("queue_jobs 3.000000 100"));
        assert!(text.contains("batch_jobs{device=\"0\",quantile=\"0.5\"} 4 100"));
        assert!(text.contains("batch_jobs_count{device=\"0\"} 1 100"));
    }

    #[test]
    fn json_roundtrips_through_validator() {
        let mut r = Registry::new(MetricsConfig {
            scrape_interval: Ns(100),
            series_capacity: 8,
            slo: Some(SloConfig::default()),
        });
        r.counter_add("a_total", 1);
        r.gauge_set("g", 0.5);
        r.hist_record("h", 10);
        r.slo_record(0, Ns(50), true);
        r.slo_record(0, Ns(60), false);
        r.flush(Ns(250));
        let json = r.to_json();
        validate_metrics_json(&json).unwrap();
        assert!(json.contains("\"slo\""));
        assert!(json.contains("\"attainment\""));
        // Burn-rate gauges land in the ring series.
        assert!(r.series("slo_burn_rate{tenant=\"0\"}").is_some());
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_metrics_json("{}").is_err());
        let mut r = reg();
        r.gauge_set("g", 1.0);
        r.flush(Ns(100));
        let good = r.to_json();
        assert!(validate_metrics_json(&good.replace("/v1", "/v0")).is_err());
        // More series points than scrapes is inconsistent.
        let bad = good.replace("\"scrapes\": 1", "\"scrapes\": 0");
        assert!(validate_metrics_json(&bad).is_err());
    }

    #[test]
    fn exemplar_tracks_worst_sample_and_serializes() {
        let mut r = reg();
        let h = r.hist_handle("lat_ns");
        r.hist_record_exemplar_id(h, 100, 1);
        r.hist_record_exemplar_id(h, 900, 2);
        r.hist_record_exemplar_id(h, 300, 3);
        assert_eq!(r.exemplar("lat_ns"), Some((900, 2)));
        assert_eq!(r.histogram("lat_ns").unwrap().count(), 3);
        r.flush(Ns(100));
        assert!(r
            .exposition()
            .contains("lat_ns_exemplar{trace=\"2\"} 900 100"));
        let json = r.to_json();
        assert!(json.contains("\"exemplar\":{\"value\":900,\"trace\":2}"));
        validate_metrics_json(&json).unwrap();
        // Plain recording leaves no exemplar behind.
        r.hist_record("plain", 5);
        assert_eq!(r.exemplar("plain"), None);
    }

    #[test]
    fn hist_merge_aggregates_per_device_sketches() {
        let mut r = reg();
        let mut dev0 = StreamingHistogram::new();
        let mut dev1 = StreamingHistogram::new();
        dev0.record(100);
        dev1.record(300);
        r.hist_merge("lat", &dev0);
        r.hist_merge("lat", &dev1);
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 300);
    }
}
