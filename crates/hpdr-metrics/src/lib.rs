//! HPDR observability: a virtual-time instrument registry with
//! per-tenant SLO tracking.
//!
//! The framework's serving and pipeline layers run on a deterministic
//! virtual clock (1 byte/ns); this crate makes that observable without
//! giving the determinism up. A [`Registry`] holds monotonic counters,
//! gauges and log-linear [`StreamingHistogram`]s, scrapes them at fixed
//! virtual intervals into bounded ring series, and renders them as
//! Prometheus-style text exposition or `hpdr-metrics/v1` JSON — both
//! byte-identical across runs with the same seed. [`SloTracker`] layers
//! per-tenant latency objectives and sliding-window error-budget burn
//! rates on top, firing rising-edge alerts that callers record into
//! their span traces.
//!
//! See DESIGN.md §13 for the metrics model and the SLO/burn-rate math.

pub mod collect;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod slo;

pub use collect::{record_batch_trace, record_pool_stats, BatchTraceIds};
pub use histogram::{bucket_width, exact_quantile, StreamingHistogram};
pub use json::{parse_json, JsonValue};
pub use registry::{validate_metrics_json, InstrumentId, MetricsConfig, Registry, METRICS_SCHEMA};
pub use slo::{SloAlert, SloAttainment, SloConfig, SloTracker};
