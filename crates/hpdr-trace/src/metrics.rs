//! Aggregated metrics over a span trace: engine utilization, the paper
//! §V-C overlap ratio, the Fig. 1 memory-op share, per-op-class latency
//! histograms, and allocator contention.

use hpdr_sim::{Category, DeviceId, Engine, Ns, OpKind, SpanRecord, Trace};

/// Stable human-readable engine name (also used for Perfetto thread
/// names).
pub fn engine_name(e: Engine) -> String {
    match e {
        Engine::H2D(d) => format!("dev{}.h2d", d.0),
        Engine::D2H(d) => format!("dev{}.d2h", d.0),
        Engine::Compute(d) => format!("dev{}.compute", d.0),
        Engine::Staging(d) => format!("dev{}.staging", d.0),
        Engine::Runtime(r) => format!("runtime{}.alloc", r.0),
        Engine::Host => "host".to_string(),
    }
}

/// The Fig. 1 category of an engine (same mapping as
/// `Timeline::breakdown`).
pub fn category_of(e: Engine) -> Category {
    match e {
        Engine::H2D(_) => Category::H2D,
        Engine::D2H(_) => Category::D2H,
        Engine::Compute(_) => Category::Compute,
        Engine::Runtime(_) => Category::MemMgmt,
        Engine::Staging(_) | Engine::Host => Category::Host,
    }
}

/// Merge possibly-overlapping intervals into a disjoint sorted list,
/// in place (no allocation beyond the input's own buffer).
fn merge_in_place(iv: &mut Vec<(Ns, Ns)>) {
    iv.sort_unstable();
    let mut w = 0;
    for i in 0..iv.len() {
        let (s, e) = iv[i];
        if s >= e {
            continue;
        }
        if w > 0 && s <= iv[w - 1].1 {
            iv[w - 1].1 = iv[w - 1].1.max(e);
        } else {
            iv[w] = (s, e);
            w += 1;
        }
    }
    iv.truncate(w);
}

/// Merge possibly-overlapping intervals into a disjoint sorted list.
fn merge(mut iv: Vec<(Ns, Ns)>) -> Vec<(Ns, Ns)> {
    merge_in_place(&mut iv);
    iv
}

fn total(iv: &[(Ns, Ns)]) -> Ns {
    iv.iter().map(|&(s, e)| e - s).sum()
}

/// Total length of the intersection of two disjoint sorted interval lists.
fn intersection(a: &[(Ns, Ns)], b: &[(Ns, Ns)]) -> Ns {
    let (mut i, mut j) = (0, 0);
    let mut acc = Ns::ZERO;
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if s < e {
            acc += e - s;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

fn engine_intervals(trace: &Trace, engine: Engine) -> Vec<(Ns, Ns)> {
    merge(
        trace
            .spans()
            .iter()
            .filter(|s| s.engine == engine)
            .map(|s| (s.start, s.end))
            .collect(),
    )
}

/// Busy/utilization summary for one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    pub engine: Engine,
    pub name: String,
    pub ops: usize,
    /// Total busy time (ops on one engine never overlap).
    pub busy: Ns,
    /// Idle time inside the trace's makespan.
    pub idle: Ns,
    /// busy / makespan; in (0, 1] for any engine that ran at least one
    /// timed op.
    pub utilization: f64,
}

/// Per-engine busy/idle/utilization, sorted by engine name for
/// deterministic output. Engines with no ops in the trace don't appear.
pub fn engine_stats(trace: &Trace) -> Vec<EngineStats> {
    let makespan = trace.makespan();
    let mut engines: Vec<Engine> = Vec::new();
    for s in trace.spans() {
        if !engines.contains(&s.engine) {
            engines.push(s.engine);
        }
    }
    let mut stats: Vec<EngineStats> = engines
        .into_iter()
        .map(|engine| {
            let spans: Vec<&SpanRecord> = trace
                .spans()
                .iter()
                .filter(|s| s.engine == engine)
                .collect();
            let busy: Ns = spans.iter().map(|s| s.duration()).sum();
            EngineStats {
                engine,
                name: engine_name(engine),
                ops: spans.len(),
                busy,
                idle: makespan.saturating_sub(busy),
                utilization: if makespan.is_zero() {
                    0.0
                } else {
                    busy.0 as f64 / makespan.0 as f64
                },
            }
        })
        .collect();
    stats.sort_by(|a, b| a.name.cmp(&b.name));
    stats
}

/// Paper §V-C overlap ratio for one device, from the trace: the fraction
/// of DMA time during which the device was concurrently doing anything
/// else (compute or the opposite-direction DMA). `None` if the device
/// performed no DMA. This replaces and generalizes
/// `Timeline::overlap_ratio` — same definition, computed from spans.
pub fn overlap_ratio(trace: &Trace, dev: DeviceId) -> Option<f64> {
    let h2d = engine_intervals(trace, Engine::H2D(dev));
    let d2h = engine_intervals(trace, Engine::D2H(dev));
    let compute = engine_intervals(trace, Engine::Compute(dev));
    let dma_total = total(&h2d) + total(&d2h);
    if dma_total.is_zero() {
        return None;
    }
    let other_for_h2d = merge([compute.clone(), d2h.clone()].concat());
    let other_for_d2h = merge([compute, h2d.clone()].concat());
    let overlapped = intersection(&h2d, &other_for_h2d) + intersection(&d2h, &other_for_d2h);
    Some(overlapped.0 as f64 / dma_total.0 as f64)
}

/// One-pass digest of a batch trace for live metering: per-category
/// busy time, the §V-C overlap ratio for one device, and allocator
/// contention. Identical numbers to [`engine_stats`] +
/// [`overlap_ratio`] + [`alloc_contention`], but a single walk over
/// the spans instead of a dozen — this runs once per batch launch on
/// the serving hot path, where the separate passes showed up as
/// measurable metering overhead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchDigest {
    /// Busy ns per Fig. 1 category, indexed by
    /// [`BatchDigest::CATEGORIES`] order.
    pub busy: [Ns; 5],
    /// Overlap ratio for the requested device (`None` if it did no DMA).
    pub overlap: Option<f64>,
    /// Total alloc/free queueing behind the runtime lock.
    pub contention: Ns,
}

impl BatchDigest {
    /// Index order of the `busy` array.
    pub const CATEGORIES: [Category; 5] = [
        Category::H2D,
        Category::D2H,
        Category::Compute,
        Category::MemMgmt,
        Category::Host,
    ];

    /// Categories that actually ran, with their busy time.
    pub fn busy_by_category(&self) -> impl Iterator<Item = (Category, Ns)> + '_ {
        Self::CATEGORIES
            .iter()
            .zip(self.busy)
            .filter(|(_, b)| !b.is_zero())
            .map(|(c, b)| (*c, b))
    }
}

/// Reusable buffers for [`batch_digest_with`]: interval lists stay
/// allocated across batches, so the steady-state digest does no heap
/// work — it runs once per launch on the serving hot path.
#[derive(Debug, Clone, Default)]
pub struct DigestScratch {
    h2d: Vec<(Ns, Ns)>,
    d2h: Vec<(Ns, Ns)>,
    compute: Vec<(Ns, Ns)>,
    other: Vec<(Ns, Ns)>,
}

/// Compute a [`BatchDigest`] in one pass over the trace.
pub fn batch_digest(trace: &Trace, dev: DeviceId) -> BatchDigest {
    batch_digest_with(trace, dev, &mut DigestScratch::default())
}

/// [`batch_digest`] with caller-owned scratch buffers (keep one
/// [`DigestScratch`] per device and the per-batch digest is
/// allocation-free after warm-up).
pub fn batch_digest_with(trace: &Trace, dev: DeviceId, s: &mut DigestScratch) -> BatchDigest {
    s.h2d.clear();
    s.d2h.clear();
    s.compute.clear();
    let mut busy = [Ns::ZERO; 5];
    let mut contention = Ns::ZERO;
    for sp in trace.spans() {
        let cat = category_of(sp.engine);
        let slot = BatchDigest::CATEGORIES
            .iter()
            .position(|c| *c == cat)
            .expect("mapped");
        busy[slot] += sp.duration();
        match sp.engine {
            Engine::H2D(d) if d == dev => s.h2d.push((sp.start, sp.end)),
            Engine::D2H(d) if d == dev => s.d2h.push((sp.start, sp.end)),
            Engine::Compute(d) if d == dev => s.compute.push((sp.start, sp.end)),
            Engine::Runtime(_) => contention += sp.wait(),
            _ => {}
        }
    }
    merge_in_place(&mut s.h2d);
    merge_in_place(&mut s.d2h);
    merge_in_place(&mut s.compute);
    let dma_total = total(&s.h2d) + total(&s.d2h);
    let overlap = if dma_total.is_zero() {
        None
    } else {
        s.other.clear();
        s.other.extend_from_slice(&s.compute);
        s.other.extend_from_slice(&s.d2h);
        merge_in_place(&mut s.other);
        let mut overlapped = intersection(&s.h2d, &s.other);
        s.other.clear();
        s.other.extend_from_slice(&s.compute);
        s.other.extend_from_slice(&s.h2d);
        merge_in_place(&mut s.other);
        overlapped += intersection(&s.d2h, &s.other);
        Some(overlapped.0 as f64 / dma_total.0 as f64)
    };
    BatchDigest {
        busy,
        overlap,
        contention,
    }
}

/// Fraction of total busy time spent on memory operations (H2D + D2H +
/// host staging copies + mem-mgmt) — the paper's Fig. 1 "34–89%" metric,
/// computed from spans.
pub fn memory_fraction(trace: &Trace) -> f64 {
    let mut mem = Ns::ZERO;
    let mut all = Ns::ZERO;
    for s in trace.spans() {
        let d = s.duration();
        all += d;
        match category_of(s.engine) {
            Category::H2D | Category::D2H | Category::MemMgmt | Category::Host => mem += d,
            Category::Compute => {}
        }
    }
    if all.is_zero() {
        0.0
    } else {
        mem.0 as f64 / all.0 as f64
    }
}

/// A log2-bucketed latency histogram.
///
/// Bucket `i` counts ops whose duration `d` satisfies `2^i ≤ d < 2^(i+1)`
/// nanoseconds (bucket 0 also holds zero-duration ops).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    pub count: u64,
    pub total: Ns,
    pub min: Ns,
    pub max: Ns,
}

impl LatencyHistogram {
    fn add(&mut self, d: Ns) {
        let idx = if d.0 <= 1 {
            0
        } else {
            (63 - d.0.leading_zeros()) as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.total += d;
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    pub fn mean(&self) -> Ns {
        Ns(self.total.0.checked_div(self.count).unwrap_or(0))
    }
}

/// The histogram key of a span: kernels are split per [`hpdr_sim::KernelClass`]
/// ("kernel:mgard"), everything else by op kind on its engine category.
pub fn span_key(span: &SpanRecord) -> String {
    match span.kind {
        OpKind::Kernel => match span.class {
            Some(c) => format!("kernel:{}", format!("{c:?}").to_lowercase()),
            None => "kernel:?".to_string(),
        },
        OpKind::Transfer => match span.engine {
            Engine::H2D(_) => "h2d".to_string(),
            Engine::D2H(_) => "d2h".to_string(),
            _ => "transfer".to_string(),
        },
        OpKind::Alloc => "alloc".to_string(),
        OpKind::Free => "free".to_string(),
        OpKind::HostCopy => "host-copy".to_string(),
        OpKind::Fixed => "fixed".to_string(),
    }
}

/// Per-op-class latency histograms, sorted by key for deterministic
/// output.
pub fn latency_histograms(trace: &Trace) -> Vec<(String, LatencyHistogram)> {
    let mut hists: Vec<(String, LatencyHistogram)> = Vec::new();
    for span in trace.spans() {
        let key = span_key(span);
        let hist = match hists.iter_mut().find(|(k, _)| *k == key) {
            Some((_, h)) => h,
            None => {
                hists.push((key, LatencyHistogram::default()));
                &mut hists.last_mut().expect("just pushed").1
            }
        };
        hist.add(span.duration());
    }
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    hists
}

/// Per-job serving metrics extracted from a serve trace.
///
/// The serving scheduler (`hpdr-serve`) emits exactly one span per
/// admitted job — `ready` is the submission instant, `start` the
/// dispatch, `end` the terminal instant, and the label ends with the
/// terminal outcome name — plus one zero-length span per rejected
/// submission (label prefix `reject[`). This extractor is the single
/// source of truth for "latency is trace-derived": the serve report
/// builds its percentile sketches from these samples, never from
/// scheduler-internal counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobSpanStats {
    /// End-to-end latency (terminal − submission) per completed job,
    /// in span order.
    pub latencies: Vec<u64>,
    /// Queue wait (dispatch − submission) per completed job.
    pub waits: Vec<u64>,
    /// Rejected submissions (spans labelled `reject[...]`).
    pub rejected: u64,
    /// Admitted-job spans that never reached a terminal state (label
    /// still `job[?] ...`). Must be 0 for any completed serve run —
    /// every Begin span gets its matching End in place.
    pub open: u64,
}

/// Scan a trace for per-job serving spans. Non-job spans (kernel,
/// transfer, ...) pass through untouched, so the extractor also works
/// on mixed traces.
pub fn job_span_stats(trace: &Trace) -> JobSpanStats {
    let mut stats = JobSpanStats::default();
    for span in trace.spans() {
        if span.label.starts_with("reject[") {
            stats.rejected += 1;
        } else if span.label.starts_with("job[?]") {
            stats.open += 1;
        } else if span.label.ends_with(" completed") {
            stats.latencies.push(span.end.saturating_sub(span.ready).0);
            stats.waits.push(span.wait().0);
        }
    }
    stats
}

/// Serve-trace span-op namespaces (mirrors `hpdr-serve`'s scheduler:
/// job ops count up from 0, rejects from `1 << 40`, alerts from
/// `1 << 41`; ops at or above `1 << 42` belong to cluster front-ends).
const MERGE_NAMESPACE_BASES: [usize; 3] = [0, 1 << 40, 1 << 41];
const MERGE_CLUSTER_BASE: usize = 1 << 42;
/// Per-shard op stride inside each namespace: shards stay disjoint as
/// long as one shard emits fewer than 2^32 spans per namespace.
const MERGE_SHARD_STRIDE: usize = 1 << 32;

/// Merge per-shard serve traces into one cluster trace.
///
/// Each shard's span ops are re-based within their namespace by
/// `shard_index * 2^32`, so job/reject/alert ops from different shards
/// never collide while labels (and therefore [`job_span_stats`]) are
/// untouched — the merged trace's latency samples are exactly the
/// concatenation of the shards'. `extra` carries cluster-level spans
/// (cross-node transfers, re-route marks) whose ops must already live
/// in the cluster namespace (`>= 2^42`); they pass through unchanged.
/// Spans sort by `(ready, op)`, matching a single scheduler's output.
pub fn merge_shard_traces(shard_traces: &[Trace], extra: Vec<SpanRecord>) -> Trace {
    let mut spans: Vec<SpanRecord> = Vec::new();
    for (shard, trace) in shard_traces.iter().enumerate() {
        for span in trace.spans() {
            let mut s = span.clone();
            if s.op < MERGE_CLUSTER_BASE {
                let base = MERGE_NAMESPACE_BASES
                    .iter()
                    .rev()
                    .find(|&&b| s.op >= b)
                    .copied()
                    .unwrap_or(0);
                s.op = base + shard * MERGE_SHARD_STRIDE + (s.op - base);
            }
            spans.push(s);
        }
    }
    for s in &extra {
        debug_assert!(
            s.op >= MERGE_CLUSTER_BASE,
            "cluster span op {} below the cluster namespace",
            s.op
        );
    }
    spans.extend(extra);
    spans.sort_by_key(|s| (s.ready, s.op));
    Trace::from_spans(spans)
}

/// Total time alloc/free ops spent queued behind the shared runtime lock
/// after their data dependencies were satisfied — the paper §III-B
/// allocator-contention cost that the CMM eliminates (CMM schedules emit
/// no per-call alloc/free ops, so their contention is zero).
pub fn alloc_contention(trace: &Trace) -> Ns {
    trace
        .spans()
        .iter()
        .filter(|s| matches!(s.engine, Engine::Runtime(_)))
        .map(|s| s.wait())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::{KernelClass, RuntimeId};

    fn span(
        op: usize,
        engine: Engine,
        start: u64,
        end: u64,
        kind: OpKind,
        class: Option<KernelClass>,
    ) -> SpanRecord {
        SpanRecord {
            op,
            label: format!("op{op}"),
            engine,
            queue: Some(0),
            deps: vec![],
            kind,
            class,
            start: Ns(start),
            end: Ns(end),
            bytes: end - start,
            footprint_bytes: 0,
            ready: Ns(start),
            wall: Ns::ZERO,
        }
    }

    fn d0() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn engine_stats_utilization() {
        let trace = Trace::from_spans(vec![
            span(0, Engine::H2D(d0()), 0, 50, OpKind::Transfer, None),
            span(
                1,
                Engine::Compute(d0()),
                50,
                100,
                OpKind::Kernel,
                Some(KernelClass::Mgard),
            ),
            span(2, Engine::H2D(d0()), 50, 80, OpKind::Transfer, None),
        ]);
        let stats = engine_stats(&trace);
        assert_eq!(stats.len(), 2);
        let compute = stats.iter().find(|s| s.name == "dev0.compute").unwrap();
        assert_eq!(compute.busy, Ns(50));
        assert_eq!(compute.idle, Ns(50));
        assert!((compute.utilization - 0.5).abs() < 1e-12);
        let h2d = stats.iter().find(|s| s.name == "dev0.h2d").unwrap();
        assert_eq!(h2d.ops, 2);
        assert_eq!(h2d.busy, Ns(80));
    }

    #[test]
    fn overlap_counts_dma_under_compute() {
        // H2D [0,100); compute [50,150) ⇒ 50 of 100 DMA ns overlapped.
        let trace = Trace::from_spans(vec![
            span(0, Engine::H2D(d0()), 0, 100, OpKind::Transfer, None),
            span(
                1,
                Engine::Compute(d0()),
                50,
                150,
                OpKind::Kernel,
                Some(KernelClass::Zfp),
            ),
        ]);
        let r = overlap_ratio(&trace, d0()).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
        // No DMA on device 1.
        assert!(overlap_ratio(&trace, DeviceId(1)).is_none());
    }

    #[test]
    fn opposite_direction_dma_counts_as_overlap() {
        let trace = Trace::from_spans(vec![
            span(0, Engine::H2D(d0()), 0, 100, OpKind::Transfer, None),
            span(1, Engine::D2H(d0()), 0, 100, OpKind::Transfer, None),
        ]);
        let r = overlap_ratio(&trace, d0()).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_fraction_fig1_style() {
        // 60 memory ns (h2d 30 + alloc 10 + staging 20) vs 40 compute ns.
        let trace = Trace::from_spans(vec![
            span(0, Engine::H2D(d0()), 0, 30, OpKind::Transfer, None),
            span(1, Engine::Runtime(RuntimeId(0)), 0, 10, OpKind::Alloc, None),
            span(2, Engine::Staging(d0()), 0, 20, OpKind::HostCopy, None),
            span(
                3,
                Engine::Compute(d0()),
                30,
                70,
                OpKind::Kernel,
                Some(KernelClass::Huffman),
            ),
        ]);
        assert!((memory_fraction(&trace) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_log2() {
        let mut h = LatencyHistogram::default();
        h.add(Ns(1)); // bucket 0
        h.add(Ns(2)); // bucket 1
        h.add(Ns(3)); // bucket 1
        h.add(Ns(1024)); // bucket 10
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.min, Ns(1));
        assert_eq!(h.max, Ns(1024));
        assert_eq!(h.mean(), Ns((1 + 2 + 3 + 1024) / 4));
    }

    #[test]
    fn histograms_keyed_by_class() {
        let trace = Trace::from_spans(vec![
            span(
                0,
                Engine::Compute(d0()),
                0,
                10,
                OpKind::Kernel,
                Some(KernelClass::Mgard),
            ),
            span(1, Engine::H2D(d0()), 0, 10, OpKind::Transfer, None),
            span(2, Engine::Runtime(RuntimeId(0)), 0, 5, OpKind::Alloc, None),
        ]);
        let keys: Vec<String> = latency_histograms(&trace)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec!["alloc", "h2d", "kernel:mgard"]);
    }

    #[test]
    fn alloc_contention_sums_runtime_waits() {
        let mut a = span(0, Engine::Runtime(RuntimeId(0)), 0, 10, OpKind::Alloc, None);
        let mut b = span(
            1,
            Engine::Runtime(RuntimeId(0)),
            10,
            20,
            OpKind::Alloc,
            None,
        );
        a.ready = Ns(0);
        b.ready = Ns(0); // ready at 0 but ran at 10 ⇒ 10 ns contention
        let trace = Trace::from_spans(vec![a, b]);
        assert_eq!(alloc_contention(&trace), Ns(10));
    }

    #[test]
    fn merge_handles_empty_shard_traces() {
        // An empty shard still occupies its index: the shard after it
        // keeps its own stride slot instead of sliding down into the
        // empty one's.
        let empty = Trace::from_spans(vec![]);
        let busy = Trace::from_spans(vec![span(
            3,
            Engine::Compute(d0()),
            0,
            10,
            OpKind::Kernel,
            None,
        )]);
        let merged = merge_shard_traces(&[empty, busy], vec![]);
        assert_eq!(merged.spans().len(), 1);
        assert_eq!(merged.spans()[0].op, MERGE_SHARD_STRIDE + 3);
        assert!(merge_shard_traces(&[], vec![]).spans().is_empty());
    }

    #[test]
    fn merge_of_a_single_shard_is_the_identity() {
        // Shard 0's re-base is `base + 0·stride + (op − base)` in every
        // namespace, so a one-shard cluster trace is span-for-span the
        // shard's own trace.
        let spans = vec![
            span(0, Engine::Compute(d0()), 0, 10, OpKind::Kernel, None),
            span(7, Engine::Compute(d0()), 10, 20, OpKind::Kernel, None),
            span(
                (1 << 40) + 1,
                Engine::Compute(d0()),
                20,
                21,
                OpKind::Kernel,
                None,
            ),
            span(
                (1 << 41) + 2,
                Engine::Compute(d0()),
                21,
                22,
                OpKind::Kernel,
                None,
            ),
        ];
        let merged = merge_shard_traces(&[Trace::from_spans(spans.clone())], vec![]);
        assert_eq!(merged.spans().len(), spans.len());
        for (m, s) in merged.spans().iter().zip(&spans) {
            assert_eq!(m.op, s.op);
            assert_eq!(m.label, s.label);
            assert_eq!((m.start, m.end), (s.start, s.end));
        }
    }

    #[test]
    fn merge_rebase_at_the_stride_boundary() {
        // The per-shard namespaces are disjoint only while a shard emits
        // fewer than 2^32 spans per namespace: op `stride − 1` is shard
        // 0's last private slot, and op `stride` lands exactly on shard
        // 1's slot 0. The merge keeps both colliding spans (it never
        // dedupes by op) — the collision is an aliasing hazard for op
        // lookups, not data loss.
        let s0 = Trace::from_spans(vec![
            span(
                MERGE_SHARD_STRIDE - 1,
                Engine::Compute(d0()),
                0,
                1,
                OpKind::Kernel,
                None,
            ),
            span(
                MERGE_SHARD_STRIDE,
                Engine::Compute(d0()),
                1,
                2,
                OpKind::Kernel,
                None,
            ),
        ]);
        let s1 = Trace::from_spans(vec![span(
            0,
            Engine::Compute(d0()),
            2,
            3,
            OpKind::Kernel,
            None,
        )]);
        let merged = merge_shard_traces(&[s0, s1], vec![]);
        let ops: Vec<usize> = merged.spans().iter().map(|s| s.op).collect();
        assert_eq!(merged.spans().len(), 3, "collision must not drop spans");
        assert!(ops.contains(&(MERGE_SHARD_STRIDE - 1)), "{ops:?}");
        assert_eq!(
            ops.iter().filter(|&&o| o == MERGE_SHARD_STRIDE).count(),
            2,
            "op `stride` from shard 0 aliases shard 1's op 0: {ops:?}"
        );
        // Cluster-namespace ops pass through un-rebased even when they
        // arrive inside a shard trace.
        let cluster = Trace::from_spans(vec![span(
            MERGE_CLUSTER_BASE + 5,
            Engine::Compute(d0()),
            0,
            1,
            OpKind::Kernel,
            None,
        )]);
        let merged = merge_shard_traces(&[Trace::from_spans(vec![]), cluster], vec![]);
        assert_eq!(merged.spans()[0].op, MERGE_CLUSTER_BASE + 5);
    }
}
