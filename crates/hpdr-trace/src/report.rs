//! One-stop profile report over a trace, with internal invariant
//! checks (used by the `hpdr profile` CLI and the CI smoke run).

use crate::critical::{critical_path, CriticalPath};
use crate::metrics::{
    alloc_contention, engine_stats, latency_histograms, memory_fraction, overlap_ratio,
    EngineStats, LatencyHistogram,
};
use hpdr_sim::{DeviceId, Ns, RuntimeStats, Trace};
use std::fmt::Write as _;

/// Aggregated observability report for one traced run.
#[derive(Debug, Clone)]
pub struct Profile {
    pub makespan: Ns,
    pub engines: Vec<EngineStats>,
    /// §V-C overlap ratio per device appearing in the trace.
    pub overlap: Vec<(DeviceId, Option<f64>)>,
    /// Fig. 1 memory-op share of total busy time.
    pub memory_fraction: f64,
    /// Time alloc/free ops queued behind the shared runtime lock.
    pub alloc_contention: Ns,
    pub critical: CriticalPath,
    pub histograms: Vec<(String, LatencyHistogram)>,
    /// Sum of per-op payload wall-clock times (measured host time, as
    /// opposed to the modeled virtual `makespan`).
    pub wall_total: Ns,
    /// Measured runtime counters (wall clock + worker-pool activity),
    /// when the trace producer recorded them.
    pub runtime: Option<RuntimeStats>,
}

impl Profile {
    /// Build a profile, checking the subsystem's own invariants:
    ///
    /// * the trace is non-empty;
    /// * every engine's utilization is in (0, 1];
    /// * the critical-path length equals the makespan exactly.
    ///
    /// Violations are returned as errors (the CI smoke run turns them
    /// into a non-zero exit).
    pub fn from_trace(trace: &Trace) -> Result<Profile, String> {
        if trace.is_empty() {
            return Err("trace is empty — was tracing enabled?".into());
        }
        let engines = engine_stats(trace);
        for e in &engines {
            // Zero-duration engines (e.g. untimed host ops) report 0.0
            // utilization; every *timed* engine must land in (0, 1].
            let in_bounds = e.utilization > 0.0 && e.utilization <= 1.0;
            if !e.busy.is_zero() && !in_bounds {
                return Err(format!(
                    "engine {} utilization {} outside (0, 1]",
                    e.name, e.utilization
                ));
            }
        }
        let critical = critical_path(trace);
        if critical.length != critical.makespan {
            return Err(format!(
                "critical path length {} != makespan {}",
                critical.length, critical.makespan
            ));
        }
        Ok(Profile {
            makespan: trace.makespan(),
            engines,
            overlap: trace
                .devices()
                .into_iter()
                .map(|d| (d, overlap_ratio(trace, d)))
                .collect(),
            memory_fraction: memory_fraction(trace),
            alloc_contention: alloc_contention(trace),
            critical,
            histograms: latency_histograms(trace),
            wall_total: Ns(trace.spans().iter().map(|s| s.wall.0).sum()),
            runtime: trace.runtime_stats(),
        })
    }

    /// Human-readable report lines.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!("makespan (virtual)  {}", self.makespan));
        out.push(format!("payload wall-clock  {}", self.wall_total));
        if let Some(rt) = &self.runtime {
            out.push(format!("run wall-clock      {}", rt.wall));
            out.push(format!(
                "worker pool         {} jobs, {} wakeups, {} tasks",
                rt.pool_jobs, rt.pool_wakeups, rt.pool_tasks
            ));
            out.push(format!(
                "staging scratch     {} reused, {} allocated",
                rt.scratch_reuses, rt.scratch_allocs
            ));
        }
        out.push(format!(
            "memory-op share     {:5.1}% of busy time",
            self.memory_fraction * 100.0
        ));
        for (d, r) in &self.overlap {
            match r {
                Some(r) => out.push(format!("overlap dev{}        {:5.1}%", d.0, r * 100.0)),
                None => out.push(format!("overlap dev{}        (no DMA)", d.0)),
            }
        }
        out.push(format!("alloc contention    {}", self.alloc_contention));
        out.push("engines:".to_string());
        for e in &self.engines {
            out.push(format!(
                "  {:16} {:4} ops  busy {:>12}  util {:5.1}%",
                e.name,
                e.ops,
                e.busy.to_string(),
                e.utilization * 100.0
            ));
        }
        out.push(format!(
            "critical path       {} ops, {} (== makespan), {:.1}% on memory ops",
            self.critical.ops.len(),
            self.critical.length,
            self.critical.memory_share() * 100.0
        ));
        for (cat, t) in &self.critical.by_category {
            if !t.is_zero() {
                out.push(format!("  on {:9} {:>12}", cat.name(), t.to_string()));
            }
        }
        out.push("op-class latencies:".to_string());
        for (key, h) in &self.histograms {
            out.push(format!(
                "  {:14} n={:<4} mean {:>10}  min {:>10}  max {:>10}",
                key,
                h.count,
                h.mean().to_string(),
                h.min.to_string(),
                h.max.to_string()
            ));
        }
        out
    }

    /// Hand-rolled JSON rendering (no serde in the dependency tree).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"makespan_ns\":{}", self.makespan.0);
        let _ = write!(s, ",\"payload_wall_ns\":{}", self.wall_total.0);
        match &self.runtime {
            Some(rt) => {
                let _ = write!(
                    s,
                    ",\"runtime\":{{\"wall_ns\":{},\"pool_jobs\":{},\"pool_wakeups\":{},\
                     \"pool_tasks\":{},\"scratch_reuses\":{},\"scratch_allocs\":{}}}",
                    rt.wall.0,
                    rt.pool_jobs,
                    rt.pool_wakeups,
                    rt.pool_tasks,
                    rt.scratch_reuses,
                    rt.scratch_allocs
                );
            }
            None => s.push_str(",\"runtime\":null"),
        }
        let _ = write!(s, ",\"memory_fraction\":{:.6}", self.memory_fraction);
        let _ = write!(s, ",\"alloc_contention_ns\":{}", self.alloc_contention.0);
        s.push_str(",\"engines\":[");
        for (i, e) in self.engines.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"ops\":{},\"busy_ns\":{},\"utilization\":{:.6}}}",
                e.name, e.ops, e.busy.0, e.utilization
            );
        }
        s.push_str("],\"overlap\":[");
        for (i, (d, r)) in self.overlap.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match r {
                Some(r) => {
                    let _ = write!(s, "{{\"device\":{},\"ratio\":{:.6}}}", d.0, r);
                }
                None => {
                    let _ = write!(s, "{{\"device\":{},\"ratio\":null}}", d.0);
                }
            }
        }
        s.push_str("],\"critical_path\":{");
        let _ = write!(
            s,
            "\"ops\":{:?},\"length_ns\":{},\"memory_share\":{:.6}",
            self.critical.ops,
            self.critical.length.0,
            self.critical.memory_share()
        );
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::{Engine, KernelClass, OpKind, SpanRecord};

    fn two_op_trace() -> Trace {
        let d = DeviceId(0);
        Trace::from_spans(vec![
            SpanRecord {
                op: 0,
                label: "h2d".into(),
                engine: Engine::H2D(d),
                queue: Some(0),
                deps: vec![],
                kind: OpKind::Transfer,
                class: None,
                start: Ns(0),
                end: Ns(100),
                bytes: 100,
                footprint_bytes: 100,
                ready: Ns(0),
                wall: Ns(40),
            },
            SpanRecord {
                op: 1,
                label: "k".into(),
                engine: Engine::Compute(d),
                queue: Some(0),
                deps: vec![0],
                kind: OpKind::Kernel,
                class: Some(KernelClass::Zfp),
                start: Ns(100),
                end: Ns(300),
                bytes: 100,
                footprint_bytes: 100,
                ready: Ns(100),
                wall: Ns(60),
            },
        ])
    }

    #[test]
    fn profile_computes_and_checks_invariants() {
        let p = Profile::from_trace(&two_op_trace()).expect("clean");
        assert_eq!(p.makespan, Ns(300));
        assert_eq!(p.critical.ops, vec![0, 1]);
        assert!((p.memory_fraction - 100.0 / 300.0).abs() < 1e-12);
        assert!(!p.render().is_empty());
        let json = p.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"makespan_ns\":300"));
        assert_eq!(p.wall_total, Ns(100));
        assert!(json.contains("\"payload_wall_ns\":100"));
        assert!(json.contains("\"runtime\":null"));
    }

    #[test]
    fn runtime_stats_flow_into_report_and_json() {
        let mut t = two_op_trace();
        t.set_runtime_stats(RuntimeStats {
            wall: Ns(12345),
            pool_jobs: 4,
            pool_wakeups: 9,
            pool_tasks: 40,
            scratch_reuses: 3,
            scratch_allocs: 1,
        });
        let p = Profile::from_trace(&t).expect("clean");
        let rt = p.runtime.expect("runtime stats present");
        assert_eq!(rt.wall, Ns(12345));
        let json = p.to_json();
        assert!(json.contains("\"wall_ns\":12345"));
        assert!(json.contains("\"pool_jobs\":4"));
        assert!(json.contains("\"scratch_reuses\":3"));
        let text = p.render().join("\n");
        assert!(text.contains("worker pool"));
        assert!(text.contains("run wall-clock"));
    }

    #[test]
    fn empty_trace_is_an_error() {
        let err = Profile::from_trace(&Trace::default()).unwrap_err();
        assert!(err.contains("empty"));
    }
}
