//! # hpdr-trace — observability over the virtual-time machine
//!
//! PR 1 gave the scheduler a *static* twin (the happens-before hazard
//! analyzer in `hpdr-sim/verify`); this crate is its *dynamic* twin.
//! A [`hpdr_sim::Trace`] — one span per executed op, recorded by
//! [`hpdr_sim::Sim::set_trace`] — is turned into:
//!
//! * **Chrome-trace / Perfetto JSON** ([`to_chrome_trace`]): pid =
//!   device, tid = engine, one complete event per span, ready to drop
//!   into `chrome://tracing` or <https://ui.perfetto.dev>;
//! * **aggregated metrics** ([`metrics`]): per-engine busy/utilization,
//!   the paper §V-C compute↔DMA overlap ratio, the Fig. 1 memory-op
//!   time share, per-op-class latency histograms, and allocator
//!   contention time (CMM on vs off);
//! * **critical-path extraction** ([`critical_path`]): the chain of ops
//!   that bounds end-to-end time, walked backward through the three
//!   happens-before edge families (explicit deps, queue program order,
//!   engine serialization), with a per-category breakdown of where the
//!   bound sits (H2D/D2H vs compute — the Fig. 1 story derived from a
//!   trace instead of hand-rolled counters);
//! * a one-stop [`Profile`] report combining all of the above with
//!   internal invariant checks (used by `hpdr profile` and CI smoke).

pub mod chrome;
pub mod critical;
pub mod metrics;
pub mod report;

pub use chrome::{to_chrome_trace, validate_chrome_trace, ChromeTraceSummary};
pub use critical::{critical_path, CriticalPath};
pub use metrics::{
    alloc_contention, batch_digest, batch_digest_with, category_of, engine_name, engine_stats,
    job_span_stats, latency_histograms, memory_fraction, merge_shard_traces, overlap_ratio,
    BatchDigest, DigestScratch, EngineStats, JobSpanStats, LatencyHistogram,
};
pub use report::Profile;
