//! Chrome-trace (Perfetto-loadable) JSON export.
//!
//! The emitted file is a JSON array of trace events in the Trace Event
//! Format: `M` (metadata) events naming processes and threads first,
//! then one `X` (complete) event per span, sorted by start time. The
//! mapping follows the issue's convention:
//!
//! * **pid = device**: device *d* gets pid *d*+1 (named `device<d>`);
//!   shared runtimes get pid 9000+*r* (`runtime<r>`), the host pid 9999;
//! * **tid = engine**: within a device pid, tid 1 = H2D, 2 = D2H,
//!   3 = compute, 4 = staging; runtime/host pids use tid 1.
//!
//! Timestamps and durations are microseconds (the format's unit) with
//! nanosecond precision kept in three decimals. Load the file at
//! <https://ui.perfetto.dev> or `chrome://tracing`.

use crate::metrics::engine_name;
use hpdr_sim::{Engine, Trace};
use std::fmt::Write as _;

/// pid for an engine's process row.
fn pid_of(e: Engine) -> u64 {
    match e {
        Engine::H2D(d) | Engine::D2H(d) | Engine::Compute(d) | Engine::Staging(d) => d.0 as u64 + 1,
        Engine::Runtime(r) => 9000 + r.0 as u64,
        Engine::Host => 9999,
    }
}

/// tid within the engine's process row.
fn tid_of(e: Engine) -> u64 {
    match e {
        Engine::H2D(_) => 1,
        Engine::D2H(_) => 2,
        Engine::Compute(_) => 3,
        Engine::Staging(_) => 4,
        Engine::Runtime(_) | Engine::Host => 1,
    }
}

fn process_name(e: Engine) -> String {
    match e {
        Engine::H2D(d) | Engine::D2H(d) | Engine::Compute(d) | Engine::Staging(d) => {
            format!("device{}", d.0)
        }
        Engine::Runtime(r) => format!("runtime{}", r.0),
        Engine::Host => "host".to_string(),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render a trace as Chrome-trace JSON, one event per line.
pub fn to_chrome_trace(trace: &Trace) -> String {
    // Deterministic (pid, tid) rows: engines in first-appearance order,
    // then sorted by their ids.
    let mut rows: Vec<Engine> = Vec::new();
    for s in trace.spans() {
        if !rows.contains(&s.engine) {
            rows.push(s.engine);
        }
    }
    rows.sort_by_key(|&e| (pid_of(e), tid_of(e)));

    let mut lines: Vec<String> = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    for &e in &rows {
        let pid = pid_of(e);
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            lines.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                process_name(e)
            ));
        }
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid_of(e),
            engine_name(e)
        ));
    }

    // X events sorted by (ts, pid, tid, op) so timestamps are monotone.
    let mut order: Vec<usize> = (0..trace.len()).collect();
    order.sort_by_key(|&i| {
        let s = &trace.spans()[i];
        (s.start, pid_of(s.engine), tid_of(s.engine), s.op)
    });
    for i in order {
        let s = &trace.spans()[i];
        let mut args = format!(
            "\"op\":{},\"bytes\":{},\"footprint\":{}",
            s.op, s.bytes, s.footprint_bytes
        );
        if let Some(q) = s.queue {
            let _ = write!(args, ",\"queue\":{q}");
        }
        if let Some(c) = s.class {
            let _ = write!(args, ",\"class\":\"{c:?}\"");
        }
        lines.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            escape(&s.label),
            pid_of(s.engine),
            tid_of(s.engine),
            us(s.start.0),
            us(s.duration().0),
        ));
    }

    let mut out = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// What [`validate_chrome_trace`] found in a well-formed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    pub metadata_events: usize,
    pub complete_events: usize,
    /// Distinct pids of complete events, ascending.
    pub pids: Vec<u64>,
}

/// Extract a numeric field (`"key":123` or `"key":12.5`) from one event
/// line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Structural validator for the schema emitted by [`to_chrome_trace`]
/// (there is no JSON parser in the dependency tree, so this is
/// line-oriented over the one-event-per-line layout):
///
/// * the file is a JSON array (`[` … `]`), one event object per line;
/// * every event has `name`, `ph`, `pid`, `tid` and an `args` object;
/// * all metadata (`M`) events precede all complete (`X`) events;
/// * every `X` event has numeric `ts` ≥ 0 and `dur` ≥ 0;
/// * `X` timestamps are monotone non-decreasing in file order.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let mut lines = json.lines().map(str::trim).filter(|l| !l.is_empty());
    if lines.next() != Some("[") {
        return Err("trace must open with a JSON array bracket".into());
    }
    let body: Vec<&str> = lines.collect();
    let Some((&last, events)) = body.split_last() else {
        return Err("trace has no closing bracket".into());
    };
    if last != "]" {
        return Err("trace must close with a JSON array bracket".into());
    }

    let mut summary = ChromeTraceSummary {
        metadata_events: 0,
        complete_events: 0,
        pids: Vec::new(),
    };
    let mut seen_complete = false;
    let mut last_ts = -1.0f64;
    for (i, raw) in events.iter().enumerate() {
        let line = raw.strip_suffix(',').unwrap_or(raw);
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("event {i}: not a JSON object: {line}"));
        }
        if !line.contains("\"name\":") || !line.contains("\"args\":{") {
            return Err(format!("event {i}: missing name/args"));
        }
        let pid = field_num(line, "pid").ok_or(format!("event {i}: missing numeric pid"))?;
        field_num(line, "tid").ok_or(format!("event {i}: missing numeric tid"))?;
        if pid < 1.0 {
            return Err(format!("event {i}: pid must be positive"));
        }
        if line.contains("\"ph\":\"M\"") {
            if seen_complete {
                return Err(format!("event {i}: metadata after complete events"));
            }
            summary.metadata_events += 1;
        } else if line.contains("\"ph\":\"X\"") {
            seen_complete = true;
            let ts = field_num(line, "ts").ok_or(format!("event {i}: missing numeric ts"))?;
            let dur = field_num(line, "dur").ok_or(format!("event {i}: missing numeric dur"))?;
            if ts < 0.0 || dur < 0.0 {
                return Err(format!("event {i}: negative ts/dur"));
            }
            if ts < last_ts {
                return Err(format!(
                    "event {i}: timestamps not monotone ({ts} < {last_ts})"
                ));
            }
            last_ts = ts;
            summary.complete_events += 1;
            let pid = pid as u64;
            if !summary.pids.contains(&pid) {
                summary.pids.push(pid);
            }
        } else {
            return Err(format!("event {i}: unknown event phase"));
        }
    }
    summary.pids.sort_unstable();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::{DeviceId, KernelClass, Ns, OpKind, RuntimeId, SpanRecord};

    fn span(op: usize, engine: Engine, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            op,
            label: format!("op \"{op}\""), // embedded quotes exercise escaping
            engine,
            queue: Some(op % 2),
            deps: vec![],
            kind: OpKind::Fixed,
            class: matches!(engine, Engine::Compute(_)).then_some(KernelClass::Mgard),
            start: Ns(start),
            end: Ns(end),
            bytes: 123,
            footprint_bytes: 456,
            ready: Ns(start),
            wall: Ns::ZERO,
        }
    }

    fn sample() -> Trace {
        Trace::from_spans(vec![
            span(0, Engine::H2D(DeviceId(0)), 0, 1500),
            span(1, Engine::Compute(DeviceId(0)), 1500, 4000),
            span(2, Engine::Runtime(RuntimeId(0)), 200, 400),
            span(3, Engine::Host, 0, 100),
        ])
    }

    #[test]
    fn export_validates() {
        let json = to_chrome_trace(&sample());
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.complete_events, 4);
        // device0=1, runtime0=9000, host=9999
        assert_eq!(summary.pids, vec![1, 9000, 9999]);
        // 3 process_name + 4 thread_name rows
        assert_eq!(summary.metadata_events, 7);
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = to_chrome_trace(&sample());
        // 1500 ns = 1.500 us
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.500"), "{json}");
    }

    #[test]
    fn pid_is_device_tid_is_engine() {
        let json = to_chrome_trace(&sample());
        assert!(json.contains("\"pid\":1,\"tid\":1,\"ts\":0.000")); // h2d
        assert!(json.contains("\"pid\":1,\"tid\":3")); // compute
        assert!(json.contains("\"name\":\"device0\""));
        assert!(json.contains("\"name\":\"dev0.compute\""));
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[\n]").is_ok());
        let out_of_order = "[\n{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5.0,\"dur\":1.0,\"args\":{}},\n{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1.0,\"dur\":1.0,\"args\":{}}\n]";
        assert!(validate_chrome_trace(out_of_order)
            .unwrap_err()
            .contains("monotone"));
        let meta_late = "[\n{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1.0,\"dur\":1.0,\"args\":{}},\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"p\"}}\n]";
        assert!(validate_chrome_trace(meta_late)
            .unwrap_err()
            .contains("metadata after"));
    }
}
