//! Critical-path extraction through the happens-before DAG.
//!
//! The scheduler (`hpdr_sim::Sim::run`) starts each op at
//! `max(dep ends, queue tail, engine free)` — exactly the three
//! happens-before edge families of the static analyzer
//! (`hpdr-sim/verify`): explicit dependencies, queue program order and
//! engine serialization. Whenever an op starts later than t=0, one of
//! those three predecessors finished *exactly* at its start time, so
//! walking backward from the op that defines the makespan and always
//! stepping to a predecessor with `end == start` yields a chain of
//! back-to-back spans whose durations sum to the makespan — the ops
//! that bound end-to-end time. Shortening any op *off* this path cannot
//! improve the run.

use crate::metrics::category_of;
use hpdr_sim::{Category, Ns, Trace};
use std::collections::HashMap;

/// The extracted critical path of a trace.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Op ids on the path, in execution order (first starts at the path
    /// start, last ends at the makespan).
    pub ops: Vec<usize>,
    /// Sum of the path ops' durations. Equals [`CriticalPath::makespan`]
    /// for any trace recorded by the scheduler.
    pub length: Ns,
    /// Makespan of the trace the path was extracted from.
    pub makespan: Ns,
    /// Path time per Fig. 1 category, in [`Category::ALL`] order.
    pub by_category: Vec<(Category, Ns)>,
}

impl CriticalPath {
    /// Path time spent in one category.
    pub fn category_time(&self, cat: Category) -> Ns {
        self.by_category
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, t)| *t)
            .unwrap_or(Ns::ZERO)
    }

    /// Fraction of the path on memory operations (everything but
    /// compute) — which share of the end-to-end bound sits on
    /// H2D/D2H/staging/mem-mgmt rather than kernels.
    pub fn memory_share(&self) -> f64 {
        if self.length.is_zero() {
            return 0.0;
        }
        let compute = self.category_time(Category::Compute);
        (self.length - compute).0 as f64 / self.length.0 as f64
    }
}

/// Extract the critical path of a trace.
///
/// Walks backward from the span with the latest end (ties: smallest op
/// id), at each step choosing a happens-before predecessor — explicit
/// dependency, queue predecessor or engine predecessor — whose end
/// equals the current op's start (ties: smallest op id). For traces
/// recorded by the scheduler such a predecessor always exists while
/// `start > 0`; for hand-built traces with gaps the walk falls back to
/// the latest-ending predecessor and the gap simply isn't attributed.
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let spans = trace.spans();
    let makespan = trace.makespan();
    if spans.is_empty() {
        return CriticalPath {
            ops: Vec::new(),
            length: Ns::ZERO,
            makespan,
            by_category: Category::ALL.iter().map(|&c| (c, Ns::ZERO)).collect(),
        };
    }

    // Index spans by op id and find each op's queue/engine predecessor
    // by scanning in submission order (ops are submitted in id order).
    let mut index_of: HashMap<usize, usize> = HashMap::with_capacity(spans.len());
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| spans[i].op);
    let mut queue_pred: HashMap<usize, usize> = HashMap::new();
    let mut engine_pred: HashMap<usize, usize> = HashMap::new();
    let mut queue_last: HashMap<usize, usize> = HashMap::new();
    let mut engine_last: HashMap<hpdr_sim::Engine, usize> = HashMap::new();
    for &i in &order {
        let s = &spans[i];
        index_of.insert(s.op, i);
        if let Some(q) = s.queue {
            if let Some(&prev) = queue_last.get(&q) {
                queue_pred.insert(s.op, prev);
            }
            queue_last.insert(q, s.op);
        }
        if let Some(&prev) = engine_last.get(&s.engine) {
            engine_pred.insert(s.op, prev);
        }
        engine_last.insert(s.engine, s.op);
    }

    // Terminal op: latest end, smallest op id on ties.
    let terminal = order
        .iter()
        .copied()
        .max_by(|&a, &b| {
            spans[a]
                .end
                .cmp(&spans[b].end)
                .then(spans[b].op.cmp(&spans[a].op))
        })
        .expect("non-empty");

    let mut path_rev: Vec<usize> = Vec::new();
    let mut cur = terminal;
    loop {
        path_rev.push(spans[cur].op);
        let start = spans[cur].start;
        if start.is_zero() {
            break;
        }
        let mut candidates: Vec<usize> = spans[cur].deps.clone();
        if let Some(&p) = queue_pred.get(&spans[cur].op) {
            candidates.push(p);
        }
        if let Some(&p) = engine_pred.get(&spans[cur].op) {
            candidates.push(p);
        }
        candidates.sort_unstable();
        candidates.dedup();
        let binding = candidates
            .iter()
            .copied()
            .filter_map(|op| index_of.get(&op).copied())
            .filter(|&i| spans[i].end == start)
            .min_by_key(|&i| spans[i].op);
        let next = binding.or_else(|| {
            // Gap (hand-built trace): step to the latest-ending
            // predecessor that finished before our start.
            candidates
                .iter()
                .copied()
                .filter_map(|op| index_of.get(&op).copied())
                .filter(|&i| spans[i].end <= start)
                .max_by(|&a, &b| {
                    spans[a]
                        .end
                        .cmp(&spans[b].end)
                        .then(spans[b].op.cmp(&spans[a].op))
                })
        });
        match next {
            Some(n) => cur = n,
            None => break,
        }
    }
    path_rev.reverse();

    let mut by_category: Vec<(Category, Ns)> =
        Category::ALL.iter().map(|&c| (c, Ns::ZERO)).collect();
    let mut length = Ns::ZERO;
    for op in &path_rev {
        let s = &spans[index_of[op]];
        let d = s.duration();
        length += d;
        let cat = category_of(s.engine);
        for entry in by_category.iter_mut() {
            if entry.0 == cat {
                entry.1 += d;
            }
        }
    }

    CriticalPath {
        ops: path_rev,
        length,
        makespan,
        by_category,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::{DeviceId, Engine, KernelClass, OpKind, SpanRecord};

    fn span(
        op: usize,
        engine: Engine,
        queue: Option<usize>,
        deps: Vec<usize>,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            op,
            label: format!("op{op}"),
            engine,
            queue,
            deps,
            kind: match engine {
                Engine::Compute(_) => OpKind::Kernel,
                Engine::H2D(_) | Engine::D2H(_) => OpKind::Transfer,
                _ => OpKind::Fixed,
            },
            class: matches!(engine, Engine::Compute(_)).then_some(KernelClass::Other),
            start: Ns(start),
            end: Ns(end),
            bytes: 0,
            footprint_bytes: 0,
            ready: Ns(start),
            wall: Ns::ZERO,
        }
    }

    fn d0() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn empty_trace_has_empty_path() {
        let cp = critical_path(&Trace::from_spans(vec![]));
        assert!(cp.ops.is_empty());
        assert_eq!(cp.length, Ns::ZERO);
    }

    /// Hand-built DAG mirroring a 2-chunk pipeline:
    ///
    /// ```text
    /// op0 h2d(a)   [0,100)   queue 0
    /// op1 k(a)     [100,250) queue 0, dep 0      <- critical
    /// op2 h2d(b)   [100,200) queue 1 (engine pred: op0)
    /// op3 k(b)     [250,380) queue 1, dep 2 (engine pred: op1) <- critical
    /// op4 d2h(b)   [380,400) queue 1, dep 3      <- critical
    /// ```
    ///
    /// The expected exact chain is 0 → 1 → 3 → 4: op3 starts when the
    /// compute engine frees (end of op1), not when its dep (op2, ends
    /// 200) is ready — engine serialization is on the bound.
    #[test]
    fn known_dag_returns_exact_chain() {
        let trace = Trace::from_spans(vec![
            span(0, Engine::H2D(d0()), Some(0), vec![], 0, 100),
            span(1, Engine::Compute(d0()), Some(0), vec![0], 100, 250),
            span(2, Engine::H2D(d0()), Some(1), vec![], 100, 200),
            span(3, Engine::Compute(d0()), Some(1), vec![2], 250, 380),
            span(4, Engine::D2H(d0()), Some(1), vec![3], 380, 400),
        ]);
        let cp = critical_path(&trace);
        assert_eq!(cp.ops, vec![0, 1, 3, 4]);
        assert_eq!(cp.length, Ns(400));
        assert_eq!(cp.makespan, Ns(400));
        assert_eq!(cp.category_time(Category::Compute), Ns(280));
        assert_eq!(cp.category_time(Category::H2D), Ns(100));
        assert_eq!(cp.category_time(Category::D2H), Ns(20));
        assert!((cp.memory_share() - 120.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn queue_order_edge_is_followed() {
        // op1 has no deps but queues behind op0; the path must use the
        // queue program-order edge.
        let trace = Trace::from_spans(vec![
            span(0, Engine::H2D(d0()), Some(0), vec![], 0, 60),
            span(1, Engine::Compute(d0()), Some(0), vec![], 60, 150),
        ]);
        let cp = critical_path(&trace);
        assert_eq!(cp.ops, vec![0, 1]);
        assert_eq!(cp.length, Ns(150));
    }

    #[test]
    fn gap_fallback_does_not_panic() {
        // op1 starts at 80 but its only predecessor ends at 50 (a gap a
        // scheduler trace can't produce).
        let trace = Trace::from_spans(vec![
            span(0, Engine::H2D(d0()), Some(0), vec![], 0, 50),
            span(1, Engine::Compute(d0()), Some(1), vec![0], 80, 150),
        ]);
        let cp = critical_path(&trace);
        assert_eq!(cp.ops, vec![0, 1]);
        assert_eq!(cp.length, Ns(120)); // durations only; gap unattributed
        assert_eq!(cp.makespan, Ns(150));
    }
}
