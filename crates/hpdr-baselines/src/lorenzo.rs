//! Lorenzo prediction on pre-quantized integers (the cuSZ "dual-quant"
//! scheme): quantize first (`q = round(v / 2eb)`), then take the
//! n-dimensional Lorenzo difference on exact integers. The integer delta
//! is fully parallel both ways — the inverse is one inclusive prefix-sum
//! per axis — which is precisely the trick that made SZ GPU-friendly.

use hpdr_core::Shape;

/// Forward n-dimensional Lorenzo difference, in place.
/// `delta[x] = Σ_{S ⊆ dims, S≠∅} (-1)^{|S|+1} q[x - 1_S]` subtracted from
/// `q[x]`; computed as one backward-difference pass per axis.
pub fn lorenzo_forward(q: &mut [i64], shape: &Shape) {
    let dims = shape.dims().to_vec();
    let strides = shape.strides();
    for d in 0..dims.len() {
        backward_diff_axis(q, &dims, &strides, d);
    }
}

/// Inverse n-dimensional Lorenzo: one inclusive prefix-sum per axis (in
/// reverse axis order; the per-axis operators commute, but we mirror the
/// forward order for clarity).
pub fn lorenzo_inverse(q: &mut [i64], shape: &Shape) {
    let dims = shape.dims().to_vec();
    let strides = shape.strides();
    for d in (0..dims.len()).rev() {
        prefix_sum_axis(q, &dims, &strides, d);
    }
}

// Both passes run slab-wise so the inner loops are contiguous and SIMD-
// dispatchable: for the innermost axis (stride 1) the lines themselves
// tile the array; for an outer axis, positions `j` and `j-1` along the
// axis occupy adjacent `stride`-long contiguous slices of each
// `dims[axis] * stride` super-block, so the per-line strided walk becomes
// an element-wise whole-slice subtract/add (identical arithmetic, each
// element still combines with exactly its axis-predecessor).

fn backward_diff_axis(q: &mut [i64], dims: &[usize], strides: &[usize], axis: usize) {
    let k = hpdr_kernels::kernels();
    let s = strides[axis];
    let len = dims[axis];
    if s == 1 {
        for line in q.chunks_exact_mut(len) {
            (k.line_backward_diff)(line);
        }
    } else {
        for block in q.chunks_exact_mut(len * s) {
            // Walk from the end so each read sees the original value.
            for j in (1..len).rev() {
                let (prev, cur) = block[(j - 1) * s..(j + 1) * s].split_at_mut(s);
                (k.slice_sub)(cur, prev);
            }
        }
    }
}

fn prefix_sum_axis(q: &mut [i64], dims: &[usize], strides: &[usize], axis: usize) {
    let k = hpdr_kernels::kernels();
    let s = strides[axis];
    let len = dims[axis];
    if s == 1 {
        for line in q.chunks_exact_mut(len) {
            (k.line_prefix_sum)(line);
        }
    } else {
        for block in q.chunks_exact_mut(len * s) {
            for j in 1..len {
                let (prev, cur) = block[(j - 1) * s..(j + 1) * s].split_at_mut(s);
                (k.slice_add)(cur, prev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(shape: &Shape, data: Vec<i64>) {
        let mut q = data.clone();
        lorenzo_forward(&mut q, shape);
        lorenzo_inverse(&mut q, shape);
        assert_eq!(q, data);
    }

    #[test]
    fn roundtrip_1d_2d_3d() {
        roundtrip(&Shape::new(&[17]), (0..17).map(|i| i * i - 40).collect());
        roundtrip(
            &Shape::new(&[6, 9]),
            (0..54).map(|i| (i * 31 % 100) - 50).collect(),
        );
        roundtrip(
            &Shape::new(&[4, 5, 6]),
            (0..120).map(|i| (i * 7919 % 1000) - 500).collect(),
        );
    }

    #[test]
    fn constant_field_deltas_are_zero_except_origin() {
        let shape = Shape::new(&[5, 5]);
        let mut q = vec![42i64; 25];
        lorenzo_forward(&mut q, &shape);
        assert_eq!(q[0], 42);
        assert!(q[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn linear_ramp_produces_small_deltas() {
        let shape = Shape::new(&[8, 8]);
        let mut q: Vec<i64> = (0..64).map(|f| (f / 8 + f % 8) as i64).collect();
        lorenzo_forward(&mut q, &shape);
        // 2D Lorenzo annihilates bilinear fields away from the borders.
        for i in 1..8 {
            for j in 1..8 {
                assert_eq!(q[i * 8 + j], 0, "interior delta at ({i},{j})");
            }
        }
    }

    #[test]
    fn forward_matches_inclusion_exclusion_2d() {
        let shape = Shape::new(&[3, 4]);
        let data: Vec<i64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8];
        let mut q = data.clone();
        lorenzo_forward(&mut q, &shape);
        let at = |i: isize, j: isize| -> i64 {
            if i < 0 || j < 0 {
                0
            } else {
                data[(i * 4 + j) as usize]
            }
        };
        for i in 0..3isize {
            for j in 0..4isize {
                let expect = at(i, j) - at(i - 1, j) - at(i, j - 1) + at(i - 1, j - 1);
                assert_eq!(q[(i * 4 + j) as usize], expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn wrapping_does_not_panic_on_extremes() {
        let shape = Shape::new(&[4]);
        roundtrip(&shape, vec![i64::MAX, i64::MIN, 0, -1]);
    }
}
