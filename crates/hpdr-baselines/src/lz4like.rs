//! LZ4-style byte-level lossless compressor (the nvCOMP-LZ4 comparator,
//! paper §VI-A). Greedy hash-table LZ77 with 16-bit offsets and
//! varint-coded literal/match lengths. On floating-point scientific data
//! this achieves ≈1.1× — the paper's point is precisely that a
//! general-purpose byte compressor cannot accelerate float-heavy I/O.

use hpdr_core::{
    ArrayMeta, ByteReader, ByteWriter, DType, DeviceAdapter, HpdrError, KernelClass, Reducer,
    Result, Shape,
};

const MAGIC: u32 = 0x4C5A_3442; // "LZ4B"
const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 16;
const MAX_OFFSET: usize = u16::MAX as usize;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(r: &mut ByteReader<'_>) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = r.get_u8()?;
        if shift >= 63 {
            return Err(HpdrError::corrupt("varint too long"));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compress a byte slice. Output format: sequences of
/// `[varint lit_len][literals][u16 offset][varint match_extra]` with a
/// final literal-only sequence (offset 0 marker).
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX && i - cand <= MAX_OFFSET && input[cand..cand + 4] == input[i..i + 4]
        {
            // Extend the match.
            let mut len = 4;
            while i + len < n && input[cand + len] == input[i + len] {
                len += 1;
            }
            // Emit sequence: literals since lit_start, then the match.
            put_varint(&mut out, (i - lit_start) as u64);
            out.extend_from_slice(&input[lit_start..i]);
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            put_varint(&mut out, (len - MIN_MATCH) as u64);
            // Index a few positions inside the match for future matches.
            let step = (len / 8).max(1);
            let mut j = i + 1;
            while j + MIN_MATCH <= n && j < i + len {
                table[hash4(&input[j..])] = j;
                j += step;
            }
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    // Final literal run (offset 0 sentinel).
    put_varint(&mut out, (n - lit_start) as u64);
    out.extend_from_slice(&input[lit_start..]);
    out.extend_from_slice(&0u16.to_le_bytes());
    put_varint(&mut out, 0);
    out
}

/// Decompress [`lz_compress`] output. `expected_len` bounds allocation.
pub fn lz_decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut r = ByteReader::new(input);
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    loop {
        let lit_len = get_varint(&mut r)? as usize;
        if out.len() + lit_len > expected_len {
            return Err(HpdrError::corrupt("literal run exceeds declared size"));
        }
        out.extend_from_slice(r.get_bytes(lit_len)?);
        let offset = r.get_u16()? as usize;
        let extra = get_varint(&mut r)? as usize;
        if offset == 0 {
            if extra != 0 {
                return Err(HpdrError::corrupt("bad terminator"));
            }
            break;
        }
        let match_len = MIN_MATCH + extra;
        if offset > out.len() {
            return Err(HpdrError::corrupt("match offset before stream start"));
        }
        if out.len() + match_len > expected_len {
            return Err(HpdrError::corrupt("match exceeds declared size"));
        }
        // Byte-wise copy: matches may self-overlap (RLE-style).
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != expected_len {
        return Err(HpdrError::corrupt(format!(
            "decompressed {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    r.expect_exhausted()?;
    Ok(out)
}

/// LZ4-like (nvCOMP analogue) as a byte-level reduction pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lz4Reducer;

impl Reducer for Lz4Reducer {
    fn name(&self) -> &'static str {
        "nvcomp-lz4-like"
    }

    fn kernel_class(&self) -> KernelClass {
        KernelClass::Lz4
    }

    fn is_lossless(&self) -> bool {
        true
    }

    fn compress(
        &self,
        adapter: &dyn DeviceAdapter,
        bytes: &[u8],
        meta: &ArrayMeta,
    ) -> Result<Vec<u8>> {
        if bytes.len() != meta.num_bytes() {
            return Err(HpdrError::invalid("byte length does not match metadata"));
        }
        let payload = lz_compress(bytes);
        adapter.charge(KernelClass::Lz4, bytes.len() as u64);
        let mut w = ByteWriter::with_capacity(payload.len() + 64);
        w.put_u32(MAGIC);
        w.put_u8(meta.dtype.tag());
        w.put_u8(meta.shape.ndims() as u8);
        for &d in meta.shape.dims() {
            w.put_u64(d as u64);
        }
        w.put_u64(bytes.len() as u64);
        w.put_block(&payload);
        Ok(w.into_vec())
    }

    fn decompress(
        &self,
        adapter: &dyn DeviceAdapter,
        stream: &[u8],
    ) -> Result<(Vec<u8>, ArrayMeta)> {
        let mut r = ByteReader::new(stream);
        if r.get_u32()? != MAGIC {
            return Err(HpdrError::corrupt("bad LZ4-like magic"));
        }
        let dtype =
            DType::from_tag(r.get_u8()?).ok_or_else(|| HpdrError::corrupt("unknown dtype"))?;
        let nd = r.get_u8()? as usize;
        if !(1..=4).contains(&nd) {
            return Err(HpdrError::corrupt("bad rank"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        let shape = Shape::try_new(&dims)?;
        let raw_len = r.get_u64()? as usize;
        let meta = ArrayMeta::new(dtype, shape);
        if raw_len != meta.num_bytes() {
            return Err(HpdrError::corrupt("length/metadata mismatch"));
        }
        let payload = r.get_block()?;
        r.expect_exhausted()?;
        let out = lz_decompress(payload, raw_len)?;
        adapter.charge(KernelClass::Lz4, raw_len as u64);
        Ok((out, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::SerialAdapter;

    #[test]
    fn roundtrip_texty_and_binary() {
        let cases: Vec<Vec<u8>> = vec![
            b"the quick brown fox jumps over the lazy dog, the quick brown fox".to_vec(),
            vec![0u8; 10_000],
            (0..5000u32).flat_map(|i| (i % 251).to_le_bytes()).collect(),
            vec![],
            vec![7],
            b"abcd".repeat(1000),
        ];
        for data in cases {
            let c = lz_compress(&data);
            let d = lz_decompress(&c, data.len()).unwrap();
            assert_eq!(d, data);
        }
    }

    #[test]
    fn repetitive_data_compresses_floats_dont() {
        let repetitive = b"ABCDEFGH".repeat(4096);
        let c = lz_compress(&repetitive);
        assert!(c.len() < repetitive.len() / 10);

        // Float-ish noise: low ratio (the paper's nvCOMP-LZ4 story).
        let floats: Vec<u8> = (0..32_768u32)
            .flat_map(|i| ((i as f32 * 0.7919).sin() * 1e7).to_le_bytes())
            .collect();
        let c = lz_compress(&floats);
        let ratio = floats.len() as f64 / c.len() as f64;
        assert!(ratio < 1.6, "noise ratio {ratio:.2} suspiciously high");
        let d = lz_decompress(&c, floats.len()).unwrap();
        assert_eq!(d, floats);
    }

    #[test]
    fn overlapping_matches_rle() {
        let mut data = vec![9u8];
        data.extend(std::iter::repeat_n(9u8, 300)); // offset-1 match
        let c = lz_compress(&data);
        assert!(c.len() < 32);
        assert_eq!(lz_decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_rejected() {
        let data = b"hello world hello world hello world".to_vec();
        let c = lz_compress(&data);
        assert!(lz_decompress(&c, data.len() + 5).is_err());
        assert!(lz_decompress(&c[..c.len() - 2], data.len()).is_err());
        assert!(lz_decompress(&[0xFF; 3], 10).is_err());
    }

    #[test]
    fn reducer_roundtrip() {
        let adapter = SerialAdapter::new();
        let bytes: Vec<u8> = (0..4096u32).flat_map(|i| (i / 16).to_le_bytes()).collect();
        let meta = ArrayMeta::new(DType::F32, Shape::new(&[4096]));
        let r = Lz4Reducer;
        let stream = r.compress(&adapter, &bytes, &meta).unwrap();
        let (out, meta2) = r.decompress(&adapter, &stream).unwrap();
        assert_eq!(out, bytes);
        assert_eq!(meta2, meta);
        assert!(r.is_lossless());
    }
}
