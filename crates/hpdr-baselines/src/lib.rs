//! # hpdr-baselines — comparator reduction pipelines
//!
//! The non-HPDR compressors the paper evaluates against (§VI-A):
//!
//! * [`szlike`] — "cuSZ v0.6" analogue: dual-quant Lorenzo prediction +
//!   Huffman with escape-coded outliers (guaranteed error bound);
//! * [`lz4like`] — "nvCOMP-LZ4 v2.2" analogue: greedy hash-table LZ77
//!   (lossless, ~1.1× on float data);
//!
//! plus the MGARD-GPU / ZFP-CUDA comparators, which reuse the portable
//! kernels but run them through the *non-optimized* pipeline (no
//! transfer overlap, per-call allocations) — see
//! `hpdr-pipeline::runner::PipelineMode::None` with CMM disabled.

pub mod lorenzo;
pub mod lz4like;
pub mod szlike;

pub use lz4like::{lz_compress, lz_decompress, Lz4Reducer};
pub use szlike::{SzConfig, SzReducer};
