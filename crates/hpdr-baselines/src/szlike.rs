//! SZ-style error-bounded compressor (the cuSZ comparator, paper §VI-A):
//! dual-quant Lorenzo prediction + Huffman, with outlier escapes.
//!
//! Guarantees `|v − v'| ≤ eb` by construction: values are quantized to
//! `q = round(v / 2eb)` *before* prediction, and the integer Lorenzo
//! transform is exact.

use crate::lorenzo::{lorenzo_forward, lorenzo_inverse};
use hpdr_core::{
    ArrayMeta, ByteReader, ByteWriter, DType, DeviceAdapter, Float, HpdrError, KernelClass,
    Reducer, Result, Shape,
};
use hpdr_huffman::HuffmanConfig;

const MAGIC: u32 = 0x535A_4C4B; // "SZLK"

/// SZ-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzConfig {
    /// Error bound relative to the data range.
    pub rel_bound: f64,
    pub dict_size: u32,
}

impl SzConfig {
    pub fn relative(rel_bound: f64) -> SzConfig {
        SzConfig {
            rel_bound,
            dict_size: 4096,
        }
    }
}

fn compress_typed<T: Float>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    shape: &Shape,
    cfg: &SzConfig,
) -> Result<Vec<u8>> {
    if cfg.rel_bound <= 0.0 || !cfg.rel_bound.is_finite() {
        return Err(HpdrError::invalid("relative bound must be positive"));
    }
    // min_max doubles as the finiteness check: NaN poisons the pair and
    // infinities propagate into it.
    let (mn, mx) = hpdr_kernels::min_max(adapter, data);
    if !(data.is_empty() || (mn.is_finite() && mx.is_finite())) {
        return Err(HpdrError::invalid("non-finite value in SZ input"));
    }
    let range = (mx.to_f64() - mn.to_f64()).max(f64::MIN_POSITIVE);
    let abs_eb = cfg.rel_bound * range;
    let twoe = 2.0 * abs_eb;
    // Both guards keep every quantized magnitude below 2^62: the second
    // catches data far from the origin (|v| ≫ range), where the i64
    // quantizer would otherwise saturate and silently break the bound.
    let amax = mn.to_f64().abs().max(mx.to_f64().abs());
    if range / abs_eb > 1e17 || amax / twoe >= 4.0e18 {
        return Err(HpdrError::unsupported(
            "error bound too tight for i64 quantization",
        ));
    }

    // Dual-quant: pre-quantize, then exact integer Lorenzo. The fused
    // widen + divide + round-ties-even + integer-convert kernel runs
    // through the SIMD dispatch.
    let n = data.len();
    let k = hpdr_kernels::kernels();
    let mut q = vec![0i64; n];
    if let Some(v) = T::as_f32_slice(data) {
        (k.sz_quantize_f32)(v, twoe, &mut q);
    } else if let Some(v) = T::as_f64_slice(data) {
        (k.sz_quantize_f64)(v, twoe, &mut q);
    } else {
        for (qi, v) in q.iter_mut().zip(data) {
            *qi = (v.to_f64() / twoe).round_ties_even() as i64;
        }
    }
    lorenzo_forward(&mut q, shape);

    // Symbolize with escape-coded outliers (SIMD kernel; the outlier
    // positions come back as indices into `q`, still in hand).
    let radius = (cfg.dict_size / 2) as i64;
    let escape = cfg.dict_size - 1;
    let mut symbols = vec![0u32; q.len()];
    let mut outlier_pos: Vec<u64> = Vec::new();
    (hpdr_kernels::kernels().sz_symbolize)(&q, radius, escape, &mut symbols, &mut outlier_pos);
    let outliers: Vec<(u64, i64)> = outlier_pos.iter().map(|&i| (i, q[i as usize])).collect();
    let encoded = hpdr_huffman::compress_u32(
        adapter,
        &symbols,
        &HuffmanConfig {
            dict_size: cfg.dict_size,
            chunk_elems: 1 << 16,
        },
    )?;
    adapter.charge(KernelClass::Lorenzo, (data.len() * T::BYTES) as u64);

    let mut w = ByteWriter::with_capacity(encoded.len() + 64);
    w.put_u32(MAGIC);
    w.put_u8(T::DTYPE.tag());
    w.put_u8(shape.ndims() as u8);
    for &d in shape.dims() {
        w.put_u64(d as u64);
    }
    w.put_f64(abs_eb);
    w.put_u32(cfg.dict_size);
    w.put_u64(outliers.len() as u64);
    for &(idx, d) in &outliers {
        w.put_u64(idx);
        w.put_i64(d);
    }
    w.put_block(&encoded);
    Ok(w.into_vec())
}

fn decompress_typed<T: Float>(
    adapter: &dyn DeviceAdapter,
    stream: &[u8],
) -> Result<(Vec<T>, Shape)> {
    let mut r = ByteReader::new(stream);
    if r.get_u32()? != MAGIC {
        return Err(HpdrError::corrupt("bad SZ-like magic"));
    }
    if r.get_u8()? != T::DTYPE.tag() {
        return Err(HpdrError::invalid("dtype mismatch"));
    }
    let nd = r.get_u8()? as usize;
    if !(1..=4).contains(&nd) {
        return Err(HpdrError::corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(nd);
    for _ in 0..nd {
        dims.push(r.get_u64()? as usize);
    }
    let shape = Shape::try_new(&dims)?;
    let abs_eb = r.get_f64()?;
    if abs_eb <= 0.0 || !abs_eb.is_finite() {
        return Err(HpdrError::corrupt("bad error bound"));
    }
    let dict_size = r.get_u32()?;
    if dict_size < 16 {
        return Err(HpdrError::corrupt("bad dict size"));
    }
    let n_out = r.get_u64()? as usize;
    if n_out > shape.num_elements() {
        return Err(HpdrError::corrupt("too many outliers"));
    }
    let mut outliers = Vec::with_capacity(n_out);
    for _ in 0..n_out {
        let idx = r.get_u64()?;
        if idx as usize >= shape.num_elements() {
            return Err(HpdrError::corrupt("outlier index out of range"));
        }
        outliers.push((idx, r.get_i64()?));
    }
    let encoded = r.get_block()?;
    r.expect_exhausted()?;
    let symbols = hpdr_huffman::decompress_u32(adapter, encoded)?;
    if symbols.len() != shape.num_elements() {
        return Err(HpdrError::corrupt("symbol count mismatch"));
    }

    let radius = (dict_size / 2) as i64;
    let escape = dict_size - 1;
    let mut q: Vec<i64> = symbols
        .iter()
        .map(|&s| if s == escape { 0 } else { s as i64 - radius })
        .collect();
    for &(idx, d) in &outliers {
        q[idx as usize] = d;
    }
    lorenzo_inverse(&mut q, &shape);
    let twoe = 2.0 * abs_eb;
    adapter.charge(KernelClass::Lorenzo, (q.len() * T::BYTES) as u64);
    Ok((
        q.iter().map(|&v| T::from_f64(v as f64 * twoe)).collect(),
        shape,
    ))
}

/// SZ-like (cuSZ analogue) as a byte-level reduction pipeline.
#[derive(Debug, Clone, Copy)]
pub struct SzReducer(pub SzConfig);

impl Reducer for SzReducer {
    fn name(&self) -> &'static str {
        "cusz-like"
    }

    fn kernel_class(&self) -> KernelClass {
        KernelClass::Lorenzo
    }

    fn is_lossless(&self) -> bool {
        false
    }

    fn compress(
        &self,
        adapter: &dyn DeviceAdapter,
        bytes: &[u8],
        meta: &ArrayMeta,
    ) -> Result<Vec<u8>> {
        if bytes.len() != meta.num_bytes() {
            return Err(HpdrError::invalid("byte length does not match metadata"));
        }
        match meta.dtype {
            DType::F32 => compress_typed(adapter, &f32::bytes_to_vec(bytes), &meta.shape, &self.0),
            DType::F64 => compress_typed(adapter, &f64::bytes_to_vec(bytes), &meta.shape, &self.0),
        }
    }

    fn decompress(
        &self,
        adapter: &dyn DeviceAdapter,
        stream: &[u8],
    ) -> Result<(Vec<u8>, ArrayMeta)> {
        let tag = *stream
            .get(4)
            .ok_or_else(|| HpdrError::corrupt("stream too short"))?;
        match DType::from_tag(tag).ok_or_else(|| HpdrError::corrupt("unknown dtype"))? {
            DType::F32 => {
                let (v, shape) = decompress_typed::<f32>(adapter, stream)?;
                Ok((f32::slice_to_bytes(&v), ArrayMeta::new(DType::F32, shape)))
            }
            DType::F64 => {
                let (v, shape) = decompress_typed::<f64>(adapter, stream)?;
                Ok((f64::slice_to_bytes(&v), ArrayMeta::new(DType::F64, shape)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn smooth(n: usize) -> Vec<f32> {
        (0..n * n)
            .map(|i| {
                let (x, y) = ((i / n) as f32 / n as f32, (i % n) as f32 / n as f32);
                (5.0 * x).sin() + (3.0 * y).cos()
            })
            .collect()
    }

    #[test]
    fn error_bound_guaranteed() {
        let adapter = CpuParallelAdapter::new(4);
        let data = smooth(48);
        let shape = Shape::new(&[48, 48]);
        for rel in [1e-2f64, 1e-4] {
            let c = compress_typed(&adapter, &data, &shape, &SzConfig::relative(rel)).unwrap();
            let (out, _) = decompress_typed::<f32>(&adapter, &c).unwrap();
            let range = 4.0f64; // ~[-2, 2]
            let err = data
                .iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0, f64::max);
            assert!(err <= rel * range, "rel={rel} err={err}");
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let adapter = SerialAdapter::new();
        let data = smooth(64);
        let shape = Shape::new(&[64, 64]);
        let c = compress_typed(&adapter, &data, &shape, &SzConfig::relative(1e-3)).unwrap();
        let ratio = (data.len() * 4) as f64 / c.len() as f64;
        assert!(ratio > 4.0, "ratio {ratio:.2}");
    }

    #[test]
    fn reducer_roundtrip_and_corruption() {
        let adapter = SerialAdapter::new();
        let data = smooth(20);
        let meta = ArrayMeta::new(DType::F32, Shape::new(&[20, 20]));
        let r = SzReducer(SzConfig::relative(1e-3));
        let stream = r
            .compress(&adapter, &f32::slice_to_bytes(&data), &meta)
            .unwrap();
        let (bytes, meta2) = r.decompress(&adapter, &stream).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(bytes.len(), data.len() * 4);
        for cut in [0usize, 3, 11, stream.len() - 1] {
            assert!(r.decompress(&adapter, &stream[..cut]).is_err());
        }
    }

    #[test]
    fn outlier_heavy_data_still_bounded() {
        let adapter = SerialAdapter::new();
        // Spiky data: every 7th value is a huge spike → lots of escapes.
        let data: Vec<f64> = (0..500)
            .map(|i| {
                if i % 7 == 0 {
                    1e6
                } else {
                    (i as f64 * 0.1).sin()
                }
            })
            .collect();
        let shape = Shape::new(&[500]);
        let c = compress_typed(&adapter, &data, &shape, &SzConfig::relative(1e-4)).unwrap();
        let (out, _) = decompress_typed::<f64>(&adapter, &c).unwrap();
        let range = 1e6 + 1.0;
        let err = data
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err <= 1e-4 * range, "err {err}");
    }

    /// Stage-level timing for the 32³ bench point. Run manually:
    /// `cargo test -p hpdr-baselines --release profile_sz_stages -- --ignored --nocapture`
    #[test]
    #[ignore = "profiling harness, run manually with --nocapture"]
    fn profile_sz_stages_32cube() {
        let adapter = SerialAdapter::new();
        let n = 32usize * 32 * 32;
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let x = (i % 32) as f32 / 32.0;
                let y = ((i / 32) % 32) as f32 / 32.0;
                let z = (i / 1024) as f32 / 32.0;
                (5.0 * x).sin() + (3.0 * y).cos() + (2.0 * z).sin()
            })
            .collect();
        let shape = Shape::new(&[32, 32, 32]);
        let cfg = SzConfig::relative(1e-3);
        let reps = 200;
        let best = |label: &str, f: &mut dyn FnMut()| {
            let mut min = std::time::Duration::MAX;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                f();
                min = min.min(t0.elapsed());
            }
            println!("{label:>14}: {:>9.1} us", min.as_secs_f64() * 1e6);
        };

        let (mn, mx) = hpdr_kernels::min_max(&adapter, &data);
        best("min_max", &mut || {
            std::hint::black_box(hpdr_kernels::min_max(&adapter, &data));
        });
        let range = (mx.to_f64() - mn.to_f64()).max(f64::MIN_POSITIVE);
        let twoe = 2.0 * cfg.rel_bound * range;
        let mut q = vec![0i64; n];
        best("dual-quant", &mut || {
            (hpdr_kernels::kernels().sz_quantize_f32)(&data, twoe, &mut q);
            std::hint::black_box(&q);
        });
        best("lorenzo", &mut || {
            let mut l = q.clone();
            lorenzo_forward(&mut l, &shape);
            std::hint::black_box(&l);
        });
        let mut l = q.clone();
        lorenzo_forward(&mut l, &shape);
        let radius = (cfg.dict_size / 2) as i64;
        let escape = cfg.dict_size - 1;
        let mut symbols = vec![0u32; n];
        best("symbolize", &mut || {
            let mut outliers: Vec<u64> = Vec::new();
            (hpdr_kernels::kernels().sz_symbolize)(&l, radius, escape, &mut symbols, &mut outliers);
            std::hint::black_box(&outliers);
        });
        best("huffman-u32", &mut || {
            let e = hpdr_huffman::compress_u32(
                &adapter,
                &symbols,
                &HuffmanConfig {
                    dict_size: cfg.dict_size,
                    chunk_elems: 1 << 16,
                },
            )
            .unwrap();
            std::hint::black_box(&e);
        });
        best("full compress", &mut || {
            let c = compress_typed(&adapter, &data, &shape, &cfg).unwrap();
            std::hint::black_box(&c);
        });
    }

    #[test]
    fn huge_residuals_past_u32_escape_exactly() {
        // rel chosen so the second value quantizes to exactly 2^32: its
        // Lorenzo residual + radius is ≡ radius (mod 2^32), the worst case
        // for a u32-truncating symbolizer (it would alias to the zero
        // symbol and decode with error ~= the full range).
        let adapter = SerialAdapter::new();
        let data = [0.0f64, 1000.0];
        let shape = Shape::new(&[2]);
        let rel = 1.0 / (2.0 * 4294967296.0);
        let cfg = SzConfig::relative(rel);
        let c = compress_typed(&adapter, &data, &shape, &cfg).unwrap();
        let (out, _) = decompress_typed::<f64>(&adapter, &c).unwrap();
        let bound = rel * 1000.0;
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_config_and_nan() {
        let adapter = SerialAdapter::new();
        let shape = Shape::new(&[4]);
        assert!(compress_typed(&adapter, &[1.0f32; 4], &shape, &SzConfig::relative(0.0)).is_err());
        assert!(
            compress_typed(&adapter, &[f32::NAN; 4], &shape, &SzConfig::relative(1e-3)).is_err()
        );
    }
}
