//! # hpdr-audit — dynamic soundness auditing of HPDR schedules
//!
//! The static layers trust what ops *declare*: [`hpdr_sim::verify`]
//! derives hazards from declared [`hpdr_sim::Effects`], and
//! [`hpdr_verify`] lints the declared schedule options. Both are only
//! as sound as the declarations. This crate closes that gap from two
//! directions:
//!
//! * **Effect-soundness** ([`diff_effects`]) — run the real payloads
//!   under the memory pool's shadow-access recorder
//!   ([`hpdr_sim::Sim::set_audit`]) and diff what each op *actually*
//!   touched against what it declared. An access the declaration does
//!   not cover is an **error** (the hazard analyzer reasoned from a
//!   lie); a declaration never exercised is a **warning** (imprecise,
//!   over-constrains the schedule).
//! * **Schedule-space exploration** ([`explore`]) — the virtual-time
//!   simulator executes one linearization of the happens-before DAG,
//!   but the hardware model admits *every* linear extension. The
//!   explorer enumerates admissible interleavings (with a
//!   downset-memoized search, bounded by
//!   [`ExploreOptions::max_states`]) and asserts the paper's
//!   invariants — no use-after-free, no double free, no
//!   use-before-alloc, two-buffer liveness, deser-first order — in
//!   each one, reporting a witness schedule on violation.
//!
//! [`AuditReport`] bundles both per configuration and renders the
//! schema-validated `hpdr-audit/v1` JSON document behind `hpdr audit`.

pub mod effects_audit;
pub mod explore;
pub mod report;

pub use effects_audit::{diff_effects, EffectFinding, EffectIssue};
pub use explore::{explore, ExploreOptions, ExploreReport, Violation};
pub use report::{validate_audit_json, AuditReport, ConfigAudit};
