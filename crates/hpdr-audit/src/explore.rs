//! Bounded schedule-space exploration over the happens-before DAG.
//!
//! The virtual-time simulator executes *one* linearization (submission
//! order), but the machine model admits every linear extension of the
//! happens-before relation: any engine may stall arbitrarily between
//! ops. A schedule is only correct if its invariants hold in **all** of
//! them. The explorer enumerates admissible interleavings and checks,
//! at every execution step:
//!
//! * **use-after-free** — no op touches a buffer some already-executed
//!   op freed;
//! * **double-free** — no buffer is freed twice;
//! * **use-before-alloc** — no op touches a buffer whose runtime alloc
//!   op has not executed yet;
//! * **two-buffer-liveness** — with `two_buffers` declared, `H2D[k]`
//!   may only execute after the drain (`S[k-2]` / `D2Hout[k-2]`) of the
//!   buffer set it reuses;
//! * **deser-first-order** — with `deser_first` declared, `D2Hout[k]`
//!   may only execute after `Deser[k+1]` (when it exists): the header
//!   read must not queue behind the previous chunk's full output copy.
//!
//! **Partial-order reduction.** The search walks the lattice of
//! *downsets* (happens-before-closed executed sets) and memoizes on the
//! executed set: every distinct (downset, next-op) edge is checked
//! exactly once, which is sound because the freed/allocated replay
//! state is a pure function of *which* ops executed, not of their
//! order. All N! naive interleavings collapse onto the downset lattice
//! — for pipeline DAGs that is polynomial in the chunk count. The same
//! memo doubles as an exact linear-extension counter
//! (`count(S) = Σ_ready count(S ∪ {o})`), so the report can state
//! precisely how many schedules were certified.
//!
//! The search is bounded by [`ExploreOptions::max_states`]; when the
//! bound trips, [`ExploreReport::exhaustive`] is `false` and the count
//! is withheld — a bounded pass proves nothing about unvisited states
//! and must say so.

use std::collections::HashMap;

use hpdr_sim::verify::{Dag, OpKind, Reachability};
use hpdr_sim::BufId;
use hpdr_verify::{Direction, LintConfig};

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Maximum number of distinct downsets to memoize before giving up
    /// on exhaustiveness.
    pub max_states: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 250_000,
        }
    }
}

/// One invariant violation, with a witness schedule that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable kind tag (`use-after-free`, `double-free`,
    /// `use-before-alloc`, `two-buffer-liveness`, `deser-first-order`).
    pub kind: &'static str,
    /// The op whose execution violates the invariant.
    pub op: usize,
    /// Label of that op.
    pub label: String,
    /// The buffer involved, when the invariant is about a buffer.
    pub buf: Option<BufId>,
    /// An admissible execution prefix after which executing `op`
    /// violates the invariant (op indices in execution order).
    pub witness: Vec<usize>,
}

impl Violation {
    /// Human-readable diagnostic.
    pub fn describe(&self) -> String {
        let buf = match self.buf {
            Some(b) => format!(" (buffer {})", b.index()),
            None => String::new(),
        };
        format!(
            "{}: op #{} '{}'{} after admissible prefix {:?}",
            self.kind, self.op, self.label, buf, self.witness
        )
    }
}

/// Result of one exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Ops in the DAG.
    pub ops: usize,
    /// Distinct downsets visited (the exploration bound applies here).
    pub states: usize,
    /// Exact number of admissible linearizations, when the search ran
    /// to exhaustion (`u128::MAX` means the count saturated).
    pub schedules: Option<u128>,
    /// Whether every admissible interleaving was covered.
    pub exhaustive: bool,
    /// Maximum simultaneously-live runtime-allocated buffers seen in
    /// any explored state (0 when the DAG has no alloc ops, e.g. CMM).
    pub max_live: usize,
    /// Invariant violations, one witness per (kind, op, buffer).
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Parse `prefix[k]`-style op labels (e.g. `H2D[7]` with prefix `H2D`).
fn chunk_index(label: &str, prefix: &str) -> Option<usize> {
    let rest = label.strip_prefix(prefix)?;
    rest.strip_prefix('[')?.strip_suffix(']')?.parse().ok()
}

/// Per-op access lists flattened from declared effects.
#[derive(Clone, Copy, PartialEq)]
enum Access {
    Use,
    Alloc,
    Free,
}

struct Search<'a> {
    dag: &'a Dag,
    words: usize,
    /// Predecessor bitsets, one row per op.
    preds: Vec<Vec<u64>>,
    /// Flattened effect accesses per op.
    accesses: Vec<Vec<(BufId, Access)>>,
    /// Alloc op of each runtime-allocated buffer.
    alloc_op: HashMap<BufId, usize>,
    /// Free ops per buffer.
    free_ops: HashMap<BufId, Vec<usize>>,
    /// Schedule-invariant prerequisites: executing op `i` requires these
    /// ops to be in the executed set already.
    requires: Vec<Vec<(usize, &'static str)>>,
    /// downset -> linear extensions of its complement.
    memo: HashMap<Vec<u64>, u128>,
    max_states: usize,
    bound_hit: bool,
    path: Vec<usize>,
    /// Dedup: one witness per (kind, op, buf).
    seen: HashMap<(&'static str, usize, Option<usize>), ()>,
    violations: Vec<Violation>,
    max_live: usize,
}

impl Search<'_> {
    fn in_set(state: &[u64], op: usize) -> bool {
        (state[op / 64] >> (op % 64)) & 1 == 1
    }

    fn ready(&self, state: &[u64], op: usize) -> bool {
        !Self::in_set(state, op) && self.preds[op].iter().zip(state).all(|(p, s)| p & !s == 0)
    }

    fn freed_in(&self, state: &[u64], buf: BufId) -> bool {
        self.free_ops
            .get(&buf)
            .is_some_and(|ops| ops.iter().any(|&f| Self::in_set(state, f)))
    }

    fn violate(&mut self, kind: &'static str, op: usize, buf: Option<BufId>) {
        let key = (kind, op, buf.map(|b| b.index()));
        if self.seen.contains_key(&key) {
            return;
        }
        self.seen.insert(key, ());
        self.violations.push(Violation {
            kind,
            op,
            label: self.dag.ops[op].label.clone(),
            buf,
            witness: self.path.clone(),
        });
    }

    /// Check the step invariants for executing `op` on top of `state`.
    fn check_step(&mut self, state: &[u64], op: usize) {
        for idx in 0..self.accesses[op].len() {
            let (b, access) = self.accesses[op][idx];
            match access {
                Access::Use => {
                    if self.freed_in(state, b) {
                        self.violate("use-after-free", op, Some(b));
                    }
                    if let Some(&a) = self.alloc_op.get(&b) {
                        if a != op && !Self::in_set(state, a) {
                            self.violate("use-before-alloc", op, Some(b));
                        }
                    }
                }
                Access::Free => {
                    if self.freed_in(state, b) {
                        self.violate("double-free", op, Some(b));
                    }
                }
                Access::Alloc => {}
            }
        }
        for idx in 0..self.requires[op].len() {
            let (req, kind) = self.requires[op][idx];
            if !Self::in_set(state, req) {
                self.violate(kind, op, None);
            }
        }
    }

    /// Live runtime-allocated buffers in `state`.
    fn live_in(&self, state: &[u64]) -> usize {
        self.alloc_op
            .iter()
            .filter(|&(&b, &a)| Self::in_set(state, a) && !self.freed_in(state, b))
            .count()
    }

    /// Count linear extensions of the complement of `state`, checking
    /// step invariants along each (downset, next-op) edge exactly once.
    /// `None` means the state bound tripped.
    fn count(&mut self, state: &[u64], executed: usize) -> Option<u128> {
        let n = self.dag.len();
        if executed == n {
            return Some(1);
        }
        if let Some(&c) = self.memo.get(state) {
            return Some(c);
        }
        if self.memo.len() >= self.max_states {
            self.bound_hit = true;
            return None;
        }
        // Reserve the slot up front so the bound counts this state even
        // if the recursion below aborts.
        self.memo.insert(state.to_vec(), 0);
        self.max_live = self.max_live.max(self.live_in(state));
        let mut total: u128 = 0;
        let mut aborted = false;
        for op in 0..n {
            if !self.ready(state, op) {
                continue;
            }
            self.check_step(state, op);
            let mut child = state.to_vec();
            child[op / 64] |= 1u64 << (op % 64);
            self.path.push(op);
            match self.count(&child, executed + 1) {
                Some(c) => total = total.saturating_add(c),
                None => aborted = true,
            }
            self.path.pop();
        }
        if aborted {
            return None;
        }
        self.memo.insert(state.to_vec(), total);
        Some(total)
    }
}

/// Build the schedule-invariant prerequisite table from the lint config.
fn invariant_requirements(dag: &Dag, cfg: &LintConfig) -> Vec<Vec<(usize, &'static str)>> {
    let mut requires = vec![Vec::new(); dag.len()];
    if cfg.serial_queue {
        // Fully serialized comparator mode: program order covers
        // everything; the Fig. 9 invariants don't apply.
        return requires;
    }
    // Per-device map from chunk number to op index for one label family.
    let by_chunk = |prefix: &str| {
        let mut map: HashMap<(Option<usize>, usize), usize> = HashMap::new();
        for (i, op) in dag.ops.iter().enumerate() {
            if let Some(k) = chunk_index(&op.label, prefix) {
                map.insert((op.engine.device().map(|d| d.0), k), i);
            }
        }
        map
    };
    if cfg.two_buffers {
        let h2d = by_chunk("H2D");
        let drain = by_chunk(match cfg.direction {
            Direction::Compress => "S",
            Direction::Decompress => "D2Hout",
        });
        for (&(dev, k), &i) in &h2d {
            if k < 2 {
                continue;
            }
            if let Some(&d) = drain.get(&(dev, k - 2)) {
                requires[i].push((d, "two-buffer-liveness"));
            }
        }
    }
    if cfg.deser_first && cfg.direction == Direction::Decompress {
        let deser = by_chunk("Deser");
        let out = by_chunk("D2Hout");
        for (&(dev, k), &i) in &out {
            if let Some(&ds) = deser.get(&(dev, k + 1)) {
                requires[i].push((ds, "deser-first-order"));
            }
        }
    }
    requires
}

/// Explore every admissible interleaving of `dag` (up to the state
/// bound) and check the step invariants in each.
///
/// Fails with `Err` on structurally invalid DAGs (forward deps): the
/// happens-before relation is undefined there, and [`hpdr_sim::verify::analyze`]
/// already reports the structural hazard.
pub fn explore(
    dag: &Dag,
    cfg: &LintConfig,
    opts: &ExploreOptions,
) -> Result<ExploreReport, String> {
    let n = dag.len();
    if n == 0 {
        return Ok(ExploreReport {
            ops: 0,
            states: 0,
            schedules: Some(1),
            exhaustive: true,
            max_live: 0,
            violations: Vec::new(),
        });
    }
    let reach = Reachability::compute(dag)
        .ok_or_else(|| "structurally invalid DAG (forward dependency)".to_string())?;
    let words = n.div_ceil(64);
    let preds: Vec<Vec<u64>> = (0..n).map(|i| reach.preds(i).to_vec()).collect();

    let mut accesses: Vec<Vec<(BufId, Access)>> = Vec::with_capacity(n);
    let mut alloc_op: HashMap<BufId, usize> = HashMap::new();
    let mut free_ops: HashMap<BufId, Vec<usize>> = HashMap::new();
    for (i, op) in dag.ops.iter().enumerate() {
        let fx = &op.effects;
        let mut list = Vec::new();
        for &b in fx.reads.iter().chain(&fx.writes) {
            if !list.contains(&(b, Access::Use)) {
                list.push((b, Access::Use));
            }
        }
        for &b in &fx.allocs {
            list.push((b, Access::Alloc));
            alloc_op.insert(b, i);
        }
        for &b in &fx.frees {
            list.push((b, Access::Free));
            free_ops.entry(b).or_default().push(i);
        }
        // Runtime alloc/free ops model the allocator call itself even
        // when the effect set is carried on a neighboring op.
        if op.kind == OpKind::Alloc {
            for &b in &fx.allocs {
                alloc_op.insert(b, i);
            }
        }
        accesses.push(list);
    }

    let requires = invariant_requirements(dag, cfg);
    let mut search = Search {
        dag,
        words,
        preds,
        accesses,
        alloc_op,
        free_ops,
        requires,
        memo: HashMap::new(),
        max_states: opts.max_states.max(1),
        bound_hit: false,
        path: Vec::new(),
        seen: HashMap::new(),
        violations: Vec::new(),
        max_live: 0,
    };
    let empty = vec![0u64; search.words];
    let schedules = search.count(&empty, 0);
    let exhaustive = !search.bound_hit;
    Ok(ExploreReport {
        ops: n,
        states: search.memo.len(),
        schedules: if exhaustive { schedules } else { None },
        exhaustive,
        max_live: search.max_live,
        violations: search.violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::verify::DagOp;
    use hpdr_sim::{DeviceId, Effects, Engine};

    fn buf(i: usize) -> BufId {
        BufId::from_index(i)
    }

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    fn op(label: &str, engine: Engine, queue: usize, deps: Vec<usize>, effects: Effects) -> DagOp {
        DagOp {
            label: label.into(),
            engine,
            queue: Some(queue),
            deps,
            effects,
            kind: OpKind::Fixed,
        }
    }

    fn plain_cfg() -> LintConfig {
        LintConfig {
            direction: Direction::Compress,
            two_buffers: false,
            cmm: true,
            deser_first: false,
            serial_queue: false,
        }
    }

    #[test]
    fn counts_linear_extensions_exactly() {
        // Two independent 2-chains on distinct queues/engines:
        // C(4,2) = 6 interleavings.
        let dag = Dag {
            ops: vec![
                op("a0", Engine::Compute(dev()), 0, vec![], Effects::none()),
                op("a1", Engine::Compute(dev()), 0, vec![0], Effects::none()),
                op("b0", Engine::H2D(dev()), 1, vec![], Effects::none()),
                op("b1", Engine::H2D(dev()), 1, vec![2], Effects::none()),
            ],
        };
        let r = explore(&dag, &plain_cfg(), &ExploreOptions::default()).unwrap();
        assert!(r.exhaustive);
        assert_eq!(r.schedules, Some(6));
        assert!(r.is_clean());
    }

    #[test]
    fn finds_uaf_in_some_interleaving() {
        // free on queue 0, read on queue 1, unordered: some interleaving
        // frees first. (The static analyzer calls this a race/UAF too;
        // the explorer must find a concrete witness.)
        let dag = Dag {
            ops: vec![
                op("free", Engine::Host, 0, vec![], Effects::free(buf(0))),
                op(
                    "read",
                    Engine::Compute(dev()),
                    1,
                    vec![],
                    Effects::read(buf(0)),
                ),
            ],
        };
        let r = explore(&dag, &plain_cfg(), &ExploreOptions::default()).unwrap();
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.kind, "use-after-free");
        assert_eq!(v.op, 1);
        assert_eq!(v.witness, vec![0]); // free executed first
        assert!(v.describe().contains("use-after-free"));
    }

    #[test]
    fn ordered_free_is_clean_in_all_interleavings() {
        let dag = Dag {
            ops: vec![
                op(
                    "read",
                    Engine::Compute(dev()),
                    0,
                    vec![],
                    Effects::read(buf(0)),
                ),
                op("free", Engine::Host, 1, vec![0], Effects::free(buf(0))),
            ],
        };
        let r = explore(&dag, &plain_cfg(), &ExploreOptions::default()).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.schedules, Some(1));
    }

    #[test]
    fn double_free_and_use_before_alloc_found() {
        let dag = Dag {
            ops: vec![
                op(
                    "r",
                    Engine::Compute(dev()),
                    0,
                    vec![],
                    Effects::read(buf(1)),
                ),
                op("f1", Engine::Host, 1, vec![], Effects::free(buf(0))),
                op("f2", Engine::Host, 2, vec![], Effects::free(buf(0))),
                op(
                    "alloc",
                    Engine::Runtime(hpdr_sim::RuntimeId(0)),
                    3,
                    vec![],
                    Effects::alloc(buf(1)),
                ),
            ],
        };
        let r = explore(&dag, &plain_cfg(), &ExploreOptions::default()).unwrap();
        let kinds: Vec<_> = r.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"double-free"));
        assert!(kinds.contains(&"use-before-alloc"));
    }

    #[test]
    fn two_buffer_invariant_checked_dynamically() {
        // H2D[2] not ordered after S[0]: some interleaving reuses the
        // buffer set before it drained.
        let mk = |anti: bool| {
            let mut ops = Vec::new();
            let mut s_ops: Vec<usize> = Vec::new();
            for k in 0..3usize {
                let q = k % 3;
                let mut deps = Vec::new();
                if anti && k >= 2 {
                    deps.push(s_ops[k - 2]);
                }
                let h2d = ops.len();
                ops.push(op(
                    &format!("H2D[{k}]"),
                    Engine::H2D(dev()),
                    q,
                    deps,
                    Effects::none(),
                ));
                ops.push(op(
                    &format!("S[{k}]"),
                    Engine::D2H(dev()),
                    q,
                    vec![h2d],
                    Effects::none(),
                ));
                s_ops.push(ops.len() - 1);
            }
            Dag { ops }
        };
        let cfg = LintConfig {
            two_buffers: true,
            ..plain_cfg()
        };
        let good = explore(&mk(true), &cfg, &ExploreOptions::default()).unwrap();
        assert!(good.is_clean(), "{:?}", good.violations);
        let bad = explore(&mk(false), &cfg, &ExploreOptions::default()).unwrap();
        assert!(bad
            .violations
            .iter()
            .any(|v| v.kind == "two-buffer-liveness"));
    }

    #[test]
    fn deser_first_invariant_checked_dynamically() {
        // D2Hout[0] and Deser[1] unordered: without the red-arrow edge
        // there is an interleaving where the output copy goes first.
        let dag = Dag {
            ops: vec![
                op("Deser[1]", Engine::D2H(dev()), 1, vec![], Effects::none()),
                op("D2Hout[0]", Engine::D2H(dev()), 0, vec![], Effects::none()),
            ],
        };
        // Same engine, submission order reversed: engine serialization
        // forces D2Hout[0] to execute before Deser[1].
        let dag_unswapped = Dag {
            ops: vec![
                op("D2Hout[0]", Engine::D2H(dev()), 0, vec![], Effects::none()),
                op(
                    "Deser[1]",
                    Engine::D2H(DeviceId(0)),
                    1,
                    vec![],
                    Effects::none(),
                ),
            ],
        };
        let cfg = LintConfig {
            direction: Direction::Decompress,
            deser_first: true,
            ..plain_cfg()
        };
        let good = explore(&dag, &cfg, &ExploreOptions::default()).unwrap();
        assert!(good.is_clean(), "{:?}", good.violations);
        // Engine serialization runs D2Hout[0] first here: violation.
        let bad = explore(&dag_unswapped, &cfg, &ExploreOptions::default()).unwrap();
        assert!(bad.violations.iter().any(|v| v.kind == "deser-first-order"));
    }

    #[test]
    fn state_bound_reported_as_non_exhaustive() {
        // 8 fully independent ops: 2^8 = 256 downsets > bound of 16.
        let ops: Vec<DagOp> = (0..8)
            .map(|i| {
                op(
                    &format!("w{i}"),
                    Engine::Compute(DeviceId(i)),
                    i,
                    vec![],
                    Effects::none(),
                )
            })
            .collect();
        let dag = Dag { ops };
        let r = explore(&dag, &plain_cfg(), &ExploreOptions { max_states: 16 }).unwrap();
        assert!(!r.exhaustive);
        assert!(r.schedules.is_none());
        assert!(r.states <= 17);
    }

    #[test]
    fn max_live_tracks_alloc_window() {
        let rt = Engine::Runtime(hpdr_sim::RuntimeId(0));
        let dag = Dag {
            ops: vec![
                op("alloc0", rt, 0, vec![], Effects::alloc(buf(0))),
                op("alloc1", rt, 0, vec![], Effects::alloc(buf(1))),
                op("free0", rt, 0, vec![], Effects::free(buf(0))),
                op("free1", rt, 0, vec![], Effects::free(buf(1))),
            ],
        };
        let r = explore(&dag, &plain_cfg(), &ExploreOptions::default()).unwrap();
        assert_eq!(r.max_live, 2);
        assert_eq!(r.schedules, Some(1)); // single queue+engine: one order
    }

    #[test]
    fn structural_breakage_is_an_error() {
        let dag = Dag {
            ops: vec![op("a", Engine::Host, 0, vec![1], Effects::none())],
        };
        assert!(explore(&dag, &plain_cfg(), &ExploreOptions::default()).is_err());
    }
}
