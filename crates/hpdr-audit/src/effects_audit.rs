//! Observed-vs-declared effect diffing.
//!
//! [`hpdr_sim::Sim::set_audit`] runs every payload under the memory
//! pool's shadow-access recorder, producing one [`OpAudit`] per op with
//! the buffer accesses the payload *really* made. This module diffs
//! that observation against the op's declared [`Effects`]:
//!
//! * **Under-declaration is unsound** (severity `error`): the payload
//!   touched a buffer its declaration does not cover, so the static
//!   hazard analysis ordered the schedule around a lie — a data race or
//!   use-after-free can hide behind the missing declaration.
//! * **Over-declaration is imprecise** (severity `warning`): the
//!   declaration names a buffer the payload never touched. Nothing is
//!   hidden, but the analyzer manufactures false ordering constraints
//!   from it and the two-buffer lint may reject valid schedules.
//!
//! `allocs` declarations are exempt from diffing: buffer creation
//! happens at plan time, outside payload execution, so the recorder
//! can never observe it.

use hpdr_sim::verify::Dag;
use hpdr_sim::{BufId, Effects, OpAudit};

/// What kind of declaration drift a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectIssue {
    /// Payload read a buffer not covered by declared reads∪writes.
    UndeclaredRead,
    /// Payload wrote (or resized) a buffer not in declared writes.
    UndeclaredWrite,
    /// Payload freed a buffer not in declared frees.
    UndeclaredFree,
    /// Declared read never observed (neither read nor written).
    UnusedRead,
    /// Declared write never observed as a write.
    UnusedWrite,
    /// Declared free never observed.
    UnusedFree,
}

impl EffectIssue {
    /// Stable machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            EffectIssue::UndeclaredRead => "undeclared-read",
            EffectIssue::UndeclaredWrite => "undeclared-write",
            EffectIssue::UndeclaredFree => "undeclared-free",
            EffectIssue::UnusedRead => "unused-read",
            EffectIssue::UnusedWrite => "unused-write",
            EffectIssue::UnusedFree => "unused-free",
        }
    }

    /// Under-declarations are unsound; over-declarations are imprecise.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            EffectIssue::UndeclaredRead
                | EffectIssue::UndeclaredWrite
                | EffectIssue::UndeclaredFree
        )
    }

    /// `"error"` or `"warning"`, for reports.
    pub fn severity(&self) -> &'static str {
        if self.is_error() {
            "error"
        } else {
            "warning"
        }
    }
}

/// One declaration-drift finding on one (op, buffer) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectFinding {
    /// Submission index of the op.
    pub op: usize,
    /// The op's label.
    pub label: String,
    /// The buffer whose declaration drifted.
    pub buf: BufId,
    pub issue: EffectIssue,
}

impl EffectFinding {
    /// Human-readable diagnostic.
    pub fn describe(&self) -> String {
        let what = match self.issue {
            EffectIssue::UndeclaredRead => "read buffer it does not declare",
            EffectIssue::UndeclaredWrite => "wrote buffer it does not declare writing",
            EffectIssue::UndeclaredFree => "freed buffer it does not declare freeing",
            EffectIssue::UnusedRead => "declares reading a buffer it never touched",
            EffectIssue::UnusedWrite => "declares writing a buffer it never wrote",
            EffectIssue::UnusedFree => "declares freeing a buffer it never freed",
        };
        format!(
            "[{}] op #{} '{}' {} (buffer {})",
            self.issue.severity(),
            self.op,
            self.label,
            what,
            self.buf.index()
        )
    }
}

fn diff_one(op: usize, label: &str, declared: &Effects, observed: &Effects) -> Vec<EffectFinding> {
    let mut out = Vec::new();
    let mut push = |buf: BufId, issue: EffectIssue| {
        out.push(EffectFinding {
            op,
            label: label.to_string(),
            buf,
            issue,
        });
    };
    // Under-declaration: observed access the declaration does not cover.
    for &b in &observed.reads {
        if !declared.may_read(b) {
            push(b, EffectIssue::UndeclaredRead);
        }
    }
    for &b in &observed.writes {
        if !declared.may_write(b) {
            push(b, EffectIssue::UndeclaredWrite);
        }
    }
    for &b in &observed.frees {
        if !declared.may_free(b) {
            push(b, EffectIssue::UndeclaredFree);
        }
    }
    // Over-declaration: declared effect never exercised by the payload.
    for &b in &declared.reads {
        if !observed.reads.contains(&b) && !observed.writes.contains(&b) {
            push(b, EffectIssue::UnusedRead);
        }
    }
    for &b in &declared.writes {
        if !observed.writes.contains(&b) {
            push(b, EffectIssue::UnusedWrite);
        }
    }
    for &b in &declared.frees {
        if !observed.frees.contains(&b) {
            push(b, EffectIssue::UnusedFree);
        }
    }
    out
}

/// Diff every op's observed accesses against its declaration.
///
/// `dag` must be the DAG of the same submission the audits came from
/// ([`hpdr_sim::Sim::dag`] captured before `run`), so indices align;
/// ops without a payload are skipped — their declarations exist for
/// the analyzer's benefit (e.g. a DMA op declaring the metadata read
/// it models) and are not observable by the recorder.
pub fn diff_effects(dag: &Dag, audits: &[OpAudit]) -> Vec<EffectFinding> {
    assert_eq!(
        dag.len(),
        audits.len(),
        "audit log does not align with the DAG: {} ops vs {} audit records",
        dag.len(),
        audits.len()
    );
    let mut findings = Vec::new();
    for (i, (op, audit)) in dag.ops.iter().zip(audits).enumerate() {
        if !audit.had_payload {
            continue;
        }
        findings.extend(diff_one(i, &op.label, &op.effects, &audit.observed));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::verify::{DagOp, OpKind};
    use hpdr_sim::Engine;

    fn buf(i: usize) -> BufId {
        BufId::from_index(i)
    }

    fn dag_op(label: &str, effects: Effects) -> DagOp {
        DagOp {
            label: label.into(),
            engine: Engine::Host,
            queue: Some(0),
            deps: vec![],
            effects,
            kind: OpKind::Fixed,
        }
    }

    fn audit(observed: Effects) -> OpAudit {
        OpAudit {
            label: String::new(),
            had_payload: true,
            observed,
        }
    }

    #[test]
    fn matching_declaration_is_clean() {
        let dag = Dag {
            ops: vec![dag_op("copy", Effects::read(buf(0)).and_write(buf(1)))],
        };
        let audits = vec![audit(Effects::read(buf(0)).and_write(buf(1)))];
        assert!(diff_effects(&dag, &audits).is_empty());
    }

    #[test]
    fn declared_write_covers_observed_read() {
        // may_read includes writes: reading a declared-write buffer is fine,
        // but it does trigger the unused-write warning if never written.
        let dag = Dag {
            ops: vec![dag_op("peek", Effects::write(buf(0)))],
        };
        let audits = vec![audit(Effects::read(buf(0)))];
        let f = diff_effects(&dag, &audits);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].issue, EffectIssue::UnusedWrite);
        assert!(!f[0].issue.is_error());
    }

    #[test]
    fn under_declarations_are_errors() {
        let dag = Dag {
            ops: vec![dag_op("stray", Effects::read(buf(0)))],
        };
        let observed = Effects {
            reads: vec![buf(0), buf(1)],
            writes: vec![buf(2)],
            allocs: vec![],
            frees: vec![buf(3)],
        };
        let audits = vec![audit(observed)];
        let f = diff_effects(&dag, &audits);
        let issues: Vec<_> = f.iter().map(|x| x.issue).collect();
        assert!(issues.contains(&EffectIssue::UndeclaredRead));
        assert!(issues.contains(&EffectIssue::UndeclaredWrite));
        assert!(issues.contains(&EffectIssue::UndeclaredFree));
        assert!(f.iter().all(|x| x.issue.is_error()));
        assert!(f[0].describe().contains("error"));
    }

    #[test]
    fn payloadless_ops_are_skipped() {
        // A DMA op declaring a modeled metadata read has no payload: its
        // declaration is intentionally unobservable, not over-declared.
        let dag = Dag {
            ops: vec![dag_op("h2d", Effects::read(buf(5)))],
        };
        let audits = vec![OpAudit {
            label: "h2d".into(),
            had_payload: false,
            observed: Effects::none(),
        }];
        assert!(diff_effects(&dag, &audits).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not align")]
    fn misaligned_audit_log_panics() {
        let dag = Dag {
            ops: vec![dag_op("a", Effects::none())],
        };
        diff_effects(&dag, &[]);
    }
}
