//! The `hpdr-audit/v1` report document.
//!
//! One [`ConfigAudit`] per audited (configuration, direction) pair,
//! bundling the effect-soundness diff and the schedule-space
//! exploration. [`AuditReport`] renders the whole sweep as text or as
//! the schema-validated JSON document `hpdr audit --json` emits, using
//! the same envelope ([`hpdr_verify::envelope`]) and exit discipline as
//! `hpdr verify`.

use crate::effects_audit::EffectFinding;
use crate::explore::ExploreReport;
use hpdr_metrics::{parse_json, JsonValue};
use hpdr_verify::envelope::{self, SCHEMA_AUDIT};

/// Audit results for one pipeline configuration in one direction.
#[derive(Debug)]
pub struct ConfigAudit {
    /// Configuration name (e.g. `huffman/fixed two_buffers=1 cmm=1`).
    pub name: String,
    /// `"compress"` or `"decompress"`.
    pub direction: &'static str,
    /// Observed-vs-declared effect findings.
    pub effects: Vec<EffectFinding>,
    /// Interleaving exploration result.
    pub explore: ExploreReport,
}

impl ConfigAudit {
    /// Unsound findings: under-declared effects + interleaving violations.
    pub fn errors(&self) -> usize {
        self.effects.iter().filter(|f| f.issue.is_error()).count() + self.explore.violations.len()
    }

    /// Imprecise-but-sound findings (over-declared effects).
    pub fn warnings(&self) -> usize {
        self.effects.iter().filter(|f| !f.issue.is_error()).count()
    }

    fn to_json(&self) -> String {
        let effects: Vec<String> = self
            .effects
            .iter()
            .map(|f| {
                format!(
                    "{{\"op\":{},\"label\":\"{}\",\"buf\":{},\"issue\":\"{}\",\
                     \"severity\":\"{}\"}}",
                    f.op,
                    envelope::esc(&f.label),
                    f.buf.index(),
                    f.issue.tag(),
                    f.issue.severity()
                )
            })
            .collect();
        let violations: Vec<String> = self
            .explore
            .violations
            .iter()
            .map(|v| {
                let buf = match v.buf {
                    Some(b) => b.index().to_string(),
                    None => "null".to_string(),
                };
                let witness: Vec<String> = v.witness.iter().map(|i| i.to_string()).collect();
                format!(
                    "{{\"kind\":\"{}\",\"op\":{},\"label\":\"{}\",\"buf\":{buf},\
                     \"witness\":[{}]}}",
                    v.kind,
                    v.op,
                    envelope::esc(&v.label),
                    witness.join(",")
                )
            })
            .collect();
        // u128 schedule counts overflow JSON numbers: emit as string.
        let schedules = match self.explore.schedules {
            Some(c) => format!("\"{c}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\":\"{}\",\"direction\":\"{}\",\"effects\":[{}],\
             \"explore\":{{\"ops\":{},\"states\":{},\"exhaustive\":{},\
             \"schedules\":{schedules},\"max_live\":{},\"violations\":[{}]}}}}",
            envelope::esc(&self.name),
            self.direction,
            effects.join(","),
            self.explore.ops,
            self.explore.states,
            self.explore.exhaustive,
            self.explore.max_live,
            violations.join(",")
        )
    }
}

/// The full audit sweep.
#[derive(Debug, Default)]
pub struct AuditReport {
    pub configs: Vec<ConfigAudit>,
}

impl AuditReport {
    pub fn errors(&self) -> usize {
        self.configs.iter().map(ConfigAudit::errors).sum()
    }

    pub fn warnings(&self) -> usize {
        self.configs.iter().map(ConfigAudit::warnings).sum()
    }

    pub fn violations(&self) -> usize {
        self.configs
            .iter()
            .map(|c| c.explore.violations.len())
            .sum()
    }

    /// Sound = no under-declared effect and no interleaving violation.
    /// Warnings do not affect soundness.
    pub fn is_sound(&self) -> bool {
        self.errors() == 0
    }

    /// Human-readable rendering, one block per configuration.
    pub fn describe(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for c in &self.configs {
            let status = if c.errors() > 0 {
                "UNSOUND"
            } else if c.warnings() > 0 {
                "warn   "
            } else {
                "ok     "
            };
            let coverage = if c.explore.exhaustive {
                match c.explore.schedules {
                    Some(s) => format!("{s} schedule(s), exhaustive"),
                    None => "exhaustive".to_string(),
                }
            } else {
                format!("bounded at {} states, NOT exhaustive", c.explore.states)
            };
            lines.push(format!(
                "{status} {:<10} {}  ({} ops, {coverage})",
                c.direction, c.name, c.explore.ops
            ));
            for f in &c.effects {
                lines.push(format!("         {}", f.describe()));
            }
            for v in &c.explore.violations {
                lines.push(format!("         [error] {}", v.describe()));
            }
        }
        lines.push(format!(
            "{} configuration(s) audited: {} error(s), {} warning(s), {} interleaving violation(s)",
            self.configs.len(),
            self.errors(),
            self.warnings(),
            self.violations()
        ));
        lines
    }

    /// The `hpdr-audit/v1` JSON document.
    pub fn to_json(&self) -> String {
        let configs: Vec<String> = self.configs.iter().map(ConfigAudit::to_json).collect();
        let payload = format!(
            "\"summary\":{{\"configs\":{},\"errors\":{},\"warnings\":{},\
             \"violations\":{}}},\"configs\":[{}]",
            self.configs.len(),
            self.errors(),
            self.warnings(),
            self.violations(),
            configs.join(",")
        );
        envelope::wrap(SCHEMA_AUDIT, self.is_sound(), &payload)
    }
}

fn need<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing '{key}'"))
}

fn need_u64(v: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    need(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a non-negative integer"))
}

fn need_str<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a str, String> {
    need(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a string"))
}

fn need_bool(v: &JsonValue, key: &str, ctx: &str) -> Result<bool, String> {
    match need(v, key, ctx)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{ctx}: '{key}' is not a boolean")),
    }
}

fn need_arr<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a [JsonValue], String> {
    need(v, key, ctx)?
        .as_arr()
        .ok_or_else(|| format!("{ctx}: '{key}' is not an array"))
}

/// Validate an `hpdr-audit/v1` document against its schema.
///
/// Checks document structure, enumerated field values, and the
/// envelope/summary cross-invariants (`ok` must equal `errors == 0`,
/// summary tallies must match the per-config findings).
pub fn validate_audit_json(doc: &str) -> Result<(), String> {
    const ISSUES: [&str; 6] = [
        "undeclared-read",
        "undeclared-write",
        "undeclared-free",
        "unused-read",
        "unused-write",
        "unused-free",
    ];
    const VIOLATIONS: [&str; 5] = [
        "use-after-free",
        "double-free",
        "use-before-alloc",
        "two-buffer-liveness",
        "deser-first-order",
    ];
    let v = parse_json(doc)?;
    if need_str(&v, "schema", "envelope")? != SCHEMA_AUDIT {
        return Err(format!("envelope: schema is not {SCHEMA_AUDIT}"));
    }
    let ok = need_bool(&v, "ok", "envelope")?;
    let summary = need(&v, "summary", "document")?;
    let sum_errors = need_u64(summary, "errors", "summary")?;
    let sum_warnings = need_u64(summary, "warnings", "summary")?;
    let sum_violations = need_u64(summary, "violations", "summary")?;
    let configs = need_arr(&v, "configs", "document")?;
    if need_u64(summary, "configs", "summary")? != configs.len() as u64 {
        return Err("summary: 'configs' count does not match the configs array".into());
    }

    let (mut errors, mut warnings, mut violations) = (0u64, 0u64, 0u64);
    for (i, c) in configs.iter().enumerate() {
        let ctx = format!("configs[{i}]");
        need_str(c, "name", &ctx)?;
        let dir = need_str(c, "direction", &ctx)?;
        if dir != "compress" && dir != "decompress" {
            return Err(format!("{ctx}: unknown direction '{dir}'"));
        }
        for (j, f) in need_arr(c, "effects", &ctx)?.iter().enumerate() {
            let fctx = format!("{ctx}.effects[{j}]");
            need_u64(f, "op", &fctx)?;
            need_str(f, "label", &fctx)?;
            need_u64(f, "buf", &fctx)?;
            let issue = need_str(f, "issue", &fctx)?;
            if !ISSUES.contains(&issue) {
                return Err(format!("{fctx}: unknown issue '{issue}'"));
            }
            match need_str(f, "severity", &fctx)? {
                "error" => errors += 1,
                "warning" => warnings += 1,
                other => return Err(format!("{fctx}: unknown severity '{other}'")),
            }
        }
        let explore = need(c, "explore", &ctx)?;
        let ectx = format!("{ctx}.explore");
        need_u64(explore, "ops", &ectx)?;
        need_u64(explore, "states", &ectx)?;
        need_u64(explore, "max_live", &ectx)?;
        let exhaustive = need_bool(explore, "exhaustive", &ectx)?;
        match need(explore, "schedules", &ectx)? {
            JsonValue::Str(s) => {
                if !exhaustive {
                    return Err(format!("{ectx}: bounded run must not report a count"));
                }
                s.parse::<u128>()
                    .map_err(|_| format!("{ectx}: 'schedules' is not a u128 string"))?;
            }
            JsonValue::Null => {
                if exhaustive {
                    return Err(format!("{ectx}: exhaustive run must report a count"));
                }
            }
            _ => return Err(format!("{ectx}: 'schedules' must be a string or null")),
        }
        for (j, viol) in need_arr(explore, "violations", &ectx)?.iter().enumerate() {
            let vctx = format!("{ectx}.violations[{j}]");
            let kind = need_str(viol, "kind", &vctx)?;
            if !VIOLATIONS.contains(&kind) {
                return Err(format!("{vctx}: unknown kind '{kind}'"));
            }
            need_u64(viol, "op", &vctx)?;
            need_str(viol, "label", &vctx)?;
            match need(viol, "buf", &vctx)? {
                JsonValue::Num(_) | JsonValue::Null => {}
                _ => return Err(format!("{vctx}: 'buf' must be a number or null")),
            }
            for w in need_arr(viol, "witness", &vctx)? {
                w.as_u64()
                    .ok_or_else(|| format!("{vctx}: witness entries must be op indices"))?;
            }
            errors += 1;
            violations += 1;
        }
    }
    if (sum_errors, sum_warnings, sum_violations) != (errors, warnings, violations) {
        return Err(format!(
            "summary tallies ({sum_errors}/{sum_warnings}/{sum_violations}) do not match \
             findings ({errors}/{warnings}/{violations})"
        ));
    }
    if ok != (errors == 0) {
        return Err("envelope: 'ok' contradicts the error count".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects_audit::EffectIssue;
    use crate::explore::Violation;
    use hpdr_sim::BufId;

    fn clean_explore() -> ExploreReport {
        ExploreReport {
            ops: 4,
            states: 9,
            schedules: Some(6),
            exhaustive: true,
            max_live: 0,
            violations: Vec::new(),
        }
    }

    fn sample_report() -> AuditReport {
        AuditReport {
            configs: vec![
                ConfigAudit {
                    name: "huffman/fixed".into(),
                    direction: "compress",
                    effects: vec![],
                    explore: clean_explore(),
                },
                ConfigAudit {
                    name: "huffman/\"quoted\"".into(),
                    direction: "decompress",
                    effects: vec![
                        EffectFinding {
                            op: 3,
                            label: "R[0]".into(),
                            buf: BufId::from_index(7),
                            issue: EffectIssue::UndeclaredWrite,
                        },
                        EffectFinding {
                            op: 4,
                            label: "S[0]".into(),
                            buf: BufId::from_index(2),
                            issue: EffectIssue::UnusedRead,
                        },
                    ],
                    explore: ExploreReport {
                        ops: 5,
                        states: 12,
                        schedules: Some(2),
                        exhaustive: true,
                        max_live: 2,
                        violations: vec![Violation {
                            kind: "use-after-free",
                            op: 4,
                            label: "S[0]".into(),
                            buf: Some(BufId::from_index(2)),
                            witness: vec![0, 1, 3],
                        }],
                    },
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips_through_validator() {
        let report = sample_report();
        assert!(!report.is_sound());
        assert_eq!(report.errors(), 2); // 1 undeclared write + 1 violation
        assert_eq!(report.warnings(), 1);
        let doc = report.to_json();
        validate_audit_json(&doc).unwrap();
        assert!(doc.starts_with("{\"schema\":\"hpdr-audit/v1\",\"ok\":false,"));
        assert!(doc.contains("\"witness\":[0,1,3]"));
        assert!(doc.contains("\\\"quoted\\\""));
    }

    #[test]
    fn clean_report_is_sound() {
        let report = AuditReport {
            configs: vec![ConfigAudit {
                name: "x".into(),
                direction: "compress",
                effects: vec![],
                explore: clean_explore(),
            }],
        };
        assert!(report.is_sound());
        let doc = report.to_json();
        validate_audit_json(&doc).unwrap();
        assert!(hpdr_verify::envelope::read_header(&doc, SCHEMA_AUDIT).unwrap());
    }

    #[test]
    fn bounded_run_renders_null_schedules() {
        let report = AuditReport {
            configs: vec![ConfigAudit {
                name: "big".into(),
                direction: "compress",
                effects: vec![],
                explore: ExploreReport {
                    ops: 64,
                    states: 1000,
                    schedules: None,
                    exhaustive: false,
                    max_live: 0,
                    violations: Vec::new(),
                },
            }],
        };
        let doc = report.to_json();
        assert!(doc.contains("\"schedules\":null"));
        validate_audit_json(&doc).unwrap();
        let text = report.describe().join("\n");
        assert!(text.contains("NOT exhaustive"));
    }

    #[test]
    fn validator_rejects_drift() {
        let doc = sample_report().to_json();
        // Flip the envelope verdict: cross-invariant must catch it.
        let lying = doc.replacen("\"ok\":false", "\"ok\":true", 1);
        assert!(validate_audit_json(&lying).is_err());
        // Corrupt the summary tally.
        let lying = doc.replacen("\"errors\":2", "\"errors\":0", 1);
        assert!(validate_audit_json(&lying).is_err());
        // Unknown issue tag.
        let lying = doc.replacen("undeclared-write", "undeclared-banana", 1);
        assert!(validate_audit_json(&lying).is_err());
        // Not even JSON.
        assert!(validate_audit_json("{").is_err());
        // Wrong schema family.
        assert!(validate_audit_json("{\"schema\":\"hpdr-verify/v1\",\"ok\":true}").is_err());
    }

    #[test]
    fn describe_summarizes_counts() {
        let text = sample_report().describe().join("\n");
        assert!(text.contains("UNSOUND"));
        assert!(text.contains("2 error(s), 1 warning(s), 1 interleaving violation(s)"));
        assert!(text.contains("use-after-free"));
    }
}
