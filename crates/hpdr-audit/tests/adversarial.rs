//! Adversarial fixtures separating `hpdr verify` from `hpdr audit`.
//!
//! Each fixture is a plan whose *declarations* are internally
//! consistent — the static hazard analyzer and schedule lints pass —
//! but whose *payload behaviour* drifts from them. Only the dynamic
//! auditor (shadow-access recorder + effect diff) can see the drift.
//! These tests pin the division of labour: `verify` trusts
//! declarations, `audit` checks them.
//!
//! The property test at the bottom closes the loop in the other
//! direction: shipped pipeline plans audit clean across randomized
//! chunkings, optimization toggles and adapters.

use hpdr_audit::{
    diff_effects, explore, validate_audit_json, AuditReport, ConfigAudit, EffectIssue,
    ExploreOptions,
};
use hpdr_core::{ArrayMeta, DType, Shape};
use hpdr_sim::{v100, Cost, Effects, Engine, KernelClass, MemPool, Ns, OpSpec, Sim};
use hpdr_verify::envelope::{read_header, SCHEMA_AUDIT};
use hpdr_verify::{check, Direction, LintConfig};

fn plain_cfg() -> LintConfig {
    LintConfig {
        direction: Direction::Compress,
        two_buffers: false,
        cmm: false,
        deser_first: false,
        serial_queue: false,
    }
}

/// One-device sim plus a kernel op whose declaration and payload the
/// caller controls independently.
fn fixture(
    declared: impl Fn(hpdr_sim::BufId, hpdr_sim::BufId, hpdr_sim::BufId) -> Effects,
    payload: impl Fn(&mut MemPool, hpdr_sim::BufId, hpdr_sim::BufId, hpdr_sim::BufId) + Send + 'static,
) -> Sim {
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(v100(), rt);
    let q = sim.add_queue();
    let src = sim.create_buffer(dev, 4);
    let dst = sim.create_buffer(dev, 4);
    let extra = sim.create_buffer(dev, 4);
    sim.pool_mut().get_mut(src).copy_from_slice(&[1, 2, 3, 4]);
    sim.push(
        OpSpec {
            engine: Engine::Compute(dev),
            queue: Some(q),
            deps: vec![],
            cost: Cost::Kernel {
                class: KernelClass::Memcpy,
                bytes: 4,
            },
            label: "copy[0]".into(),
            effects: declared(src, dst, extra),
        },
        Some(Box::new(move |pool: &mut MemPool| {
            payload(pool, src, dst, extra)
        })),
    );
    sim.push(
        OpSpec {
            engine: Engine::Compute(dev),
            queue: Some(q),
            deps: vec![],
            cost: Cost::Fixed(Ns(5)),
            label: "sink[0]".into(),
            effects: Effects::read(dst),
        },
        None,
    );
    sim
}

/// Audit the fixture: static verify must already be clean (that is the
/// adversarial premise), then diff observed effects and explore.
fn audit(mut sim: Sim, name: &str) -> AuditReport {
    let dag = sim.dag();
    let verify = check(&dag, &plain_cfg());
    assert!(
        verify.is_clean(),
        "adversarial fixture must pass static verify, got:\n{}",
        verify.describe(&dag)
    );
    sim.set_audit(true);
    sim.run();
    let effects = diff_effects(&dag, &sim.take_observed());
    let explore = explore(&dag, &plain_cfg(), &ExploreOptions::default()).expect("explorable");
    let mut report = AuditReport::default();
    report.configs.push(ConfigAudit {
        name: name.to_string(),
        direction: "compress",
        effects,
        explore,
    });
    report
}

#[test]
fn under_declared_write_passes_verify_but_fails_audit() {
    let sim = fixture(
        |src, dst, _extra| Effects::read(src).and_write(dst),
        |pool, src, dst, extra| {
            let (s, d) = pool.get_pair_mut(src, dst);
            d.copy_from_slice(s);
            // The lie: an effect the declaration does not cover, so the
            // static analyzer ordered nothing against it.
            pool.get_mut(extra).fill(9);
        },
    );
    let report = audit(sim, "under-declared-write");
    assert!(!report.is_sound());
    assert_eq!(report.errors(), 1);
    assert_eq!(report.warnings(), 0);
    let f = &report.configs[0].effects[0];
    assert_eq!(f.issue, EffectIssue::UndeclaredWrite);
    assert_eq!(f.op, 0);
    // The JSON report is schema-valid and its envelope says unsound.
    let json = report.to_json();
    validate_audit_json(&json).expect("schema-valid report");
    assert_eq!(read_header(&json, SCHEMA_AUDIT), Ok(false));
}

#[test]
fn under_declared_free_passes_verify_but_fails_audit() {
    let sim = fixture(
        |src, dst, _extra| Effects::read(src).and_write(dst),
        |pool, src, dst, extra| {
            let (s, d) = pool.get_pair_mut(src, dst);
            d.copy_from_slice(s);
            // Freeing a buffer nothing declares: invisible statically,
            // a use-after-free trap for any later reader.
            pool.mark_freed(extra);
        },
    );
    let report = audit(sim, "under-declared-free");
    assert!(!report.is_sound());
    assert_eq!(report.errors(), 1);
    assert_eq!(
        report.configs[0].effects[0].issue,
        EffectIssue::UndeclaredFree
    );
}

#[test]
fn over_declared_read_passes_verify_and_audit_warns() {
    let sim = fixture(
        |src, dst, extra| Effects::read(src).and_write(dst).and_read(extra),
        |pool, src, dst, _extra| {
            let (s, d) = pool.get_pair_mut(src, dst);
            d.copy_from_slice(s);
        },
    );
    let report = audit(sim, "over-declared-read");
    // Imprecision, not unsoundness: the audit stays green but flags it.
    assert!(report.is_sound());
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 1);
    let f = &report.configs[0].effects[0];
    assert_eq!(f.issue, EffectIssue::UnusedRead);
    let json = report.to_json();
    validate_audit_json(&json).expect("schema-valid report");
    assert_eq!(read_header(&json, SCHEMA_AUDIT), Ok(true));
}

// ---------------------------------------------------------------------------
// Shipped plans audit clean under randomized configuration
// ---------------------------------------------------------------------------

mod shipped {
    use super::*;
    use hpdr_core::DeviceAdapter;
    use hpdr_huffman::ByteHuffmanReducer;
    use hpdr_pipeline::{
        compress_pipelined, plan_compress, plan_decompress, PipelineMode, PipelineOptions,
    };
    use proptest::prelude::*;
    use std::sync::Arc;

    fn audit_clean(name: &str, direction: Direction, opts: &PipelineOptions, mut sim: Sim) {
        let dag = sim.dag();
        sim.set_audit(true);
        sim.run();
        let effects = diff_effects(&dag, &sim.take_observed());
        let cfg = LintConfig {
            direction,
            two_buffers: opts.two_buffers,
            cmm: opts.cmm,
            deser_first: opts.deser_first,
            serial_queue: opts.serial_queue,
        };
        let explore = explore(&dag, &cfg, &ExploreOptions::default()).expect("explorable");
        assert!(
            effects.iter().all(|f| !f.issue.is_error()),
            "{name}: shipped plan under-declares effects: {:?}",
            effects
        );
        assert!(
            effects.is_empty(),
            "{name}: shipped plan over-declares effects: {:?}",
            effects
        );
        assert!(
            explore.is_clean(),
            "{name}: interleaving violations: {:?}",
            explore.violations
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every randomized shipped configuration — chunk rows,
        /// optimization toggles, adapter — audits clean in both
        /// directions (the proptest analogue of `hpdr audit`'s sweep).
        #[test]
        fn shipped_plans_audit_clean(
            rows in 1usize..=8,
            two_buffers in any::<bool>(),
            cmm in any::<bool>(),
            deser_first in any::<bool>(),
            serial in any::<bool>(),
        ) {
            let spec = v100();
            let meta = ArrayMeta::new(
                DType::F32,
                Shape::try_new(&[16, 64]).expect("shape"),
            );
            let row_bytes = (meta.shape.row_elements() * meta.dtype.size()) as u64;
            let input: Arc<Vec<u8>> = Arc::new(
                (0..meta.num_bytes() / 4)
                    .flat_map(|i| ((i % 251) as f32).to_le_bytes())
                    .collect(),
            );
            let adapter: Arc<dyn DeviceAdapter> = if serial {
                Arc::new(hpdr_core::SerialAdapter::new())
            } else {
                Arc::new(hpdr_core::CpuParallelAdapter::with_defaults())
            };
            let reducer: Arc<dyn hpdr_core::Reducer> =
                Arc::new(ByteHuffmanReducer::default());
            let opts = PipelineOptions {
                mode: PipelineMode::Fixed { chunk_bytes: rows as u64 * row_bytes },
                two_buffers,
                cmm,
                deser_first,
                serial_queue: false,
                host_staging: false,
            };
            let name = format!(
                "huffman rows={rows} tb={two_buffers} cmm={cmm} df={deser_first} serial={serial}"
            );
            let sim = plan_compress(
                &spec, Arc::clone(&adapter), Arc::clone(&reducer),
                Arc::clone(&input), &meta, &opts,
            ).expect("plan compress");
            audit_clean(&name, Direction::Compress, &opts, sim);
            let (container, _) = compress_pipelined(
                &spec, Arc::clone(&adapter), Arc::clone(&reducer),
                Arc::clone(&input), &meta, &opts,
            ).expect("compress");
            let sim = plan_decompress(&spec, adapter, reducer, &container, &opts)
                .expect("plan decompress");
            audit_clean(&name, Direction::Decompress, &opts, sim);
        }
    }
}
