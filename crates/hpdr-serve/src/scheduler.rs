//! The serving scheduler: a deterministic discrete-event loop over
//! virtual time.
//!
//! Jobs arrive from a [`JobSource`], pass the admission controller
//! ([`crate::admission::Admission`]), wait in a priority/fair-share
//! queue, and are dispatched to the simulated device pool in **shared
//! pipeline launches** (continuous batching): compatible queued jobs
//! (same direction and codec family) are folded into one
//! [`hpdr_pipeline::run_batch`] launch so per-launch fixed costs
//! amortize and chunks of different jobs overlap on the device engines.
//! Kernels execute *for real* on the persistent
//! [`hpdr_core::WorkerPool`] via the configured device adapter; timing
//! is charged to each device's [`BusyHorizon`].
//!
//! Determinism: everything — arrivals, deadlines, service times,
//! completions — lives on the virtual clock, tenant state is kept in
//! ordered maps, and batch formation uses a total order over queued
//! jobs, so the same seed and job stream reproduce a byte-identical
//! [`ServeReport`](crate::report::ServeReport).
//!
//! Fairness: queued jobs order by (priority desc, tenant served-bytes
//! asc, arrival, id). The served-bytes deficit term implements
//! byte-weighted fair queuing — a tenant that has consumed less device
//! time sorts first, so a 10× heavier tenant cannot starve a light one.

use crate::admission::{Admission, AdmissionConfig};
use crate::error::ServeError;
use crate::job::{JobId, JobOutcome, JobRecord, JobRequest, TenantId};
use hpdr_core::{ContextCache, DeviceAdapter, PoolStats, WorkerPool};
use hpdr_flight::{
    FlightConfig, FlightLog, FlightRecorder, JobEvent as FlightEvent,
    JobEventKind as FlightEventKind, TraceContext,
};
use hpdr_metrics::{
    record_batch_trace, record_pool_stats, BatchTraceIds, InstrumentId, MetricsConfig, Registry,
};
use hpdr_pipeline::{run_batch, BatchItem, PipelineOptions};
use hpdr_progressive::RetrieveBatchItem;
use hpdr_sim::{BusyHorizon, DeviceId, DeviceSpec, Engine, Ns, OpKind, SpanRecord, Trace};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Span-op namespace for rejection spans: disjoint from job ids (which
/// count up from 0), so a rejection can never collide with a job span.
const REJECT_OP_BASE: usize = 1 << 40;
/// Span-op namespace for SLO burn-rate alert marks.
const ALERT_OP_BASE: usize = 1 << 41;

/// Failure string recorded on jobs drained by [`Scheduler::fail`]: the
/// shard died while they were queued or in flight. A cluster front-end
/// matches on this to re-route rather than count a real codec failure.
pub const NODE_FAILURE: &str = "node failure";

/// Dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// One job per launch, pinned to device 0 — the one-at-a-time
    /// comparator (and the policy whose reports are identical for any
    /// configured device count).
    Serial,
    /// Continuous batching across all configured devices.
    Batched,
}

impl Policy {
    pub fn name(self) -> &'static str {
        match self {
            Policy::Serial => "serial",
            Policy::Batched => "batched",
        }
    }
}

/// Scheduler configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Simulated devices in the pool.
    pub devices: usize,
    pub policy: Policy,
    /// Per-device cost model.
    pub spec: DeviceSpec,
    pub admission: AdmissionConfig,
    /// Batch caps (continuous batching folds queued jobs up to these).
    pub max_batch_jobs: usize,
    pub max_batch_bytes: u64,
    /// Fixed virtual cost per shared launch (runtime/stream setup).
    pub launch_overhead: Ns,
    /// Virtual cost of building one reduction context on a CMM miss.
    pub context_setup: Ns,
    /// CMM capacity per device. Keep generous: the cache evicts
    /// arbitrarily at capacity, which would break report determinism.
    pub cmm_capacity: usize,
    /// Chunking/overlap options for the shared launches.
    pub pipeline: PipelineOptions,
    /// Install a metrics registry (scrape cadence, SLO objective).
    /// `None` keeps the hot path metrics-free.
    pub metrics: Option<MetricsConfig>,
    /// Install a flight recorder: per-job lifecycle events into a
    /// fixed-capacity ring. `None` keeps the hot path recorder-free.
    pub flight: Option<FlightConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 1,
            policy: Policy::Batched,
            spec: hpdr_sim::v100(),
            admission: AdmissionConfig::default(),
            max_batch_jobs: 8,
            max_batch_bytes: 8 << 20,
            launch_overhead: Ns::from_micros(40),
            context_setup: Ns::from_micros(120),
            cmm_capacity: 128,
            pipeline: PipelineOptions::fixed(32 * 1024),
            metrics: None,
            flight: None,
        }
    }
}

/// Reusable per-(codec, shape, device) reduction context cached by the
/// CMM: staging memory a job family keeps across launches.
pub struct ServeContext {
    pub staging: Vec<u8>,
}

/// Where jobs come from. `peek` lets the event loop find the next
/// arrival instant; `on_complete` lets closed-loop generators key the
/// next request off a completion.
pub trait JobSource {
    /// Arrival instant of the earliest job not yet popped.
    fn peek(&self) -> Option<Ns>;
    /// Remove and return every job with `arrival <= now`, in order.
    fn pop_ready(&mut self, now: Ns) -> Vec<JobRequest>;
    /// A job of `tenant` reached a terminal state at `now`.
    fn on_complete(&mut self, _tenant: TenantId, _now: Ns) {}
}

/// A pre-scripted job stream (arrival-sorted).
pub struct VecSource {
    jobs: Vec<JobRequest>,
    next: usize,
}

impl VecSource {
    pub fn new(mut jobs: Vec<JobRequest>) -> VecSource {
        jobs.sort_by_key(|j| j.arrival);
        VecSource { jobs, next: 0 }
    }
}

impl JobSource for VecSource {
    fn peek(&self) -> Option<Ns> {
        self.jobs.get(self.next).map(|j| j.arrival)
    }

    fn pop_ready(&mut self, now: Ns) -> Vec<JobRequest> {
        let start = self.next;
        while self.next < self.jobs.len() && self.jobs[self.next].arrival <= now {
            self.next += 1;
        }
        self.jobs[start..self.next].to_vec()
    }
}

/// Per-tenant accounting (ordered map ⇒ deterministic reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantStats {
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    /// Uncompressed bytes of completed jobs.
    pub bytes: u64,
    /// Bytes dispatched so far — the fair-queuing deficit key.
    served_bytes: u64,
}

/// Per-device accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    pub batches: u64,
    pub jobs: u64,
    pub busy: Ns,
    pub utilization: f64,
}

/// Cached instrument handles so the hot path never formats a metric
/// name or walks the registry's name index: labels are rendered once
/// (first submission of a tenant, first launch on a device) and every
/// later update is an O(1) slab access. With names formatted per event
/// the metering showed up as measurable serve overhead; with handles it
/// sits well inside the 2% `hpdr bench --compare` budget.
#[derive(Default)]
struct MeterIds {
    tenants: BTreeMap<u32, TenantIds>,
    devices: Vec<Option<DeviceMeterIds>>,
    batch_trace: Vec<BatchTraceIds>,
    batch_jobs: Option<InstrumentId>,
    batch_bytes: Option<InstrumentId>,
    margin: Option<InstrumentId>,
    latency: Option<InstrumentId>,
}

/// Per-tenant counter handles, created together on the tenant's first
/// submission — so every tenant exposes the complete family (a tenant
/// with no rejections still shows a zero rejected counter).
#[derive(Clone, Copy)]
struct TenantIds {
    submitted: InstrumentId,
    admitted: InstrumentId,
    rejected: InstrumentId,
    goodput: InstrumentId,
}

impl TenantIds {
    fn new(reg: &mut Registry, tenant: u32) -> TenantIds {
        TenantIds {
            submitted: reg.counter_handle(&tenant_metric("serve_submitted_total", tenant)),
            admitted: reg.counter_handle(&tenant_metric("serve_admitted_total", tenant)),
            rejected: reg.counter_handle(&tenant_metric("serve_rejected_total", tenant)),
            goodput: reg.counter_handle(&tenant_metric("serve_tenant_goodput_bytes_total", tenant)),
        }
    }
}

/// Per-device batch instrument handles, created on the device's first
/// launch.
#[derive(Clone, Copy)]
struct DeviceMeterIds {
    batches: InstrumentId,
    chunks: InstrumentId,
    goodput: InstrumentId,
}

impl DeviceMeterIds {
    fn new(reg: &mut Registry, device: usize) -> DeviceMeterIds {
        DeviceMeterIds {
            batches: reg.counter_handle(&device_metric("serve_batches_total", device)),
            chunks: reg.counter_handle(&device_metric("pipeline_chunks_total", device)),
            goodput: reg.gauge_handle(&device_metric("pipeline_batch_goodput_gbps", device)),
        }
    }
}

struct QueuedJob {
    id: JobId,
    req: JobRequest,
    bytes: u64,
}

struct InFlight {
    id: JobId,
    req: JobRequest,
    bytes: u64,
    device: usize,
    started: Ns,
    result: Result<(), String>,
}

struct PendingBatch {
    end: Ns,
    device: usize,
    jobs: Vec<InFlight>,
}

/// Everything a serve run produces (the printable/serializable
/// [`ServeReport`](crate::report::ServeReport) is built from this).
pub struct ServeOutcome {
    pub records: Vec<JobRecord>,
    pub tenants: BTreeMap<u32, TenantStats>,
    pub devices: BTreeMap<usize, DeviceStats>,
    pub admission: Admission,
    pub makespan: Ns,
    /// One span per terminal job (trace-derived metrics source).
    pub trace: Trace,
    pub cmm_hits: u64,
    pub cmm_misses: u64,
    /// Contexts resident in the per-device CMM caches at the end.
    pub cmm_contexts: usize,
    /// Of those, contexts with no live attachment — equal to
    /// `cmm_contexts` iff every job (including cancelled and timed-out
    /// ones) released its context.
    pub cmm_idle: usize,
    /// Jobs still occupying a device slot at the end (must be 0).
    pub in_flight_end: u64,
    /// Worker-pool jobs dispatched during the run (PoolStats delta).
    pub pool_jobs: u64,
    /// The metrics registry, flushed at the makespan (present iff
    /// `ServeConfig::metrics` was set).
    pub metrics: Option<Registry>,
    /// The drained flight recorder (present iff `ServeConfig::flight`
    /// was set). Events carry shard id 0; a cluster front-end rewrites
    /// that to the shard's index before merging.
    pub flight: Option<FlightLog>,
}

/// The scheduler. Owns the virtual clock, queue, device horizons and
/// per-device CMM caches.
pub struct Scheduler {
    cfg: ServeConfig,
    work: Arc<dyn DeviceAdapter>,
    clock: Ns,
    next_id: u64,
    queue: Vec<QueuedJob>,
    pending: Vec<PendingBatch>,
    horizons: Vec<BusyHorizon>,
    device_jobs: Vec<(u64, u64)>, // (batches, jobs) per device
    in_flight_jobs: Vec<u64>,     // live gauge per device
    cmm: Vec<ContextCache<ServeContext>>,
    admission: Admission,
    tenants: BTreeMap<u32, TenantStats>,
    records: Vec<JobRecord>,
    spans: Vec<SpanRecord>,
    registry: Option<Registry>,
    ids: MeterIds,
    reject_seq: usize,
    alert_seq: usize,
    recorder: Option<FlightRecorder>,
    next_trace: u64,
}

impl Scheduler {
    pub fn new(cfg: ServeConfig, work: Arc<dyn DeviceAdapter>) -> Scheduler {
        let devices = cfg.devices.max(1);
        Scheduler {
            admission: Admission::new(cfg.admission),
            horizons: vec![BusyHorizon::new(); devices],
            device_jobs: vec![(0, 0); devices],
            in_flight_jobs: vec![0; devices],
            cmm: (0..devices)
                .map(|_| ContextCache::new(cfg.cmm_capacity))
                .collect(),
            registry: cfg.metrics.map(Registry::new),
            recorder: cfg.flight.map(FlightRecorder::new),
            ids: MeterIds {
                devices: vec![None; devices],
                batch_trace: vec![BatchTraceIds::default(); devices],
                ..MeterIds::default()
            },
            cfg,
            work,
            clock: Ns::ZERO,
            next_id: 0,
            queue: Vec::new(),
            pending: Vec::new(),
            tenants: BTreeMap::new(),
            records: Vec::new(),
            spans: Vec::new(),
            reject_seq: 0,
            alert_seq: 0,
            next_trace: 1,
        }
    }

    /// Jobs currently in flight on `device` (dispatch → completion).
    pub fn in_flight(&self, device: usize) -> u64 {
        self.in_flight_jobs[device]
    }

    /// Current virtual instant of this scheduler's clock.
    pub fn clock(&self) -> Ns {
        self.clock
    }

    /// The admission controller (live queue gauges for load-aware
    /// placement across shards).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Would a submission of `bytes` pass admission right now? A pure
    /// probe — no counters move. Cluster front-ends use this to spill
    /// jobs to a less-loaded shard instead of eating the rejection.
    pub fn would_admit(&self, bytes: u64) -> bool {
        self.admission.would_admit(bytes)
    }

    /// The metrics registry, if one was configured. Front-ends use this
    /// to install extra gauges (e.g. payload-cache stats) alongside the
    /// scheduler's own instrument families.
    pub fn registry_mut(&mut self) -> Option<&mut Registry> {
        self.registry.as_mut()
    }

    /// Per-device CMM cache (tests assert context release through it).
    pub fn cmm(&self, device: usize) -> &ContextCache<ServeContext> {
        &self.cmm[device]
    }

    /// Copy the flight recorder's ring as it stands — the black-box dump
    /// a cluster front-end takes right after [`fail`](Self::fail).
    pub fn flight_snapshot(&self) -> Option<FlightLog> {
        self.recorder.as_ref().map(FlightRecorder::snapshot)
    }

    /// Record one lifecycle event for `req` when a recorder is installed
    /// and the request carries an assigned trace context. Events are
    /// stamped with shard id 0; cluster front-ends rewrite it on merge.
    fn flight_event(&mut self, at: Ns, req: &JobRequest, kind: FlightEventKind) {
        if let Some(rec) = self.recorder.as_mut() {
            if req.trace.is_assigned() {
                rec.record(FlightEvent {
                    at,
                    trace: req.trace.trace,
                    hop: req.trace.hop,
                    shard: 0,
                    tenant: req.tenant.0,
                    kind,
                });
            }
        }
    }

    /// Submit one job at its arrival instant. Typed backpressure: a
    /// full queue rejects immediately with [`ServeError`].
    pub fn try_submit(&mut self, req: JobRequest) -> Result<JobId, ServeError> {
        let mut req = req;
        // Whoever assigns the trace context records the submission: a
        // cluster front-end assigns (and records) at its own queue, a
        // standalone scheduler claims unassigned requests here.
        if self.recorder.is_some() && !req.trace.is_assigned() {
            req.trace = TraceContext::root(self.next_trace);
            self.next_trace += 1;
            self.flight_event(self.clock.max(req.arrival), &req, FlightEventKind::Submit);
        }
        let now = self.clock.max(req.arrival);
        let tenant_id = req.tenant.0;
        let tenant = self.tenants.entry(tenant_id).or_default();
        tenant.submitted += 1;
        if let Some(reg) = self.registry.as_mut() {
            let t = *self
                .ids
                .tenants
                .entry(tenant_id)
                .or_insert_with(|| TenantIds::new(reg, tenant_id));
            reg.counter_add_id(t.submitted, 1);
        }
        let bytes = req.payload.raw_bytes();
        if bytes == 0 {
            // Invalid submissions get a rejection span like any other
            // reject: every submission must leave a span, or span-derived
            // reject counts drift from the admission counters.
            self.tenants.entry(tenant_id).or_default().rejected += 1;
            self.admission.reject_invalid();
            self.push_reject_span(&req, bytes);
            self.flight_event(now, &req, FlightEventKind::Reject);
            return Err(ServeError::InvalidJob("empty payload".into()));
        }
        match self.admission.try_admit(bytes) {
            Ok(()) => {
                let id = JobId(self.next_id);
                self.next_id += 1;
                let tenant = self.tenants.entry(tenant_id).or_default();
                tenant.admitted += 1;
                if let Some(reg) = self.registry.as_mut() {
                    let t = *self
                        .ids
                        .tenants
                        .entry(tenant_id)
                        .or_insert_with(|| TenantIds::new(reg, tenant_id));
                    reg.counter_add_id(t.admitted, 1);
                }
                self.spans.push(reject_or_job_span(
                    id.0 as usize,
                    &req,
                    bytes,
                    req.arrival,
                    req.arrival,
                    req.arrival,
                    0,
                    false,
                ));
                self.flight_event(now, &req, FlightEventKind::Admit);
                self.queue.push(QueuedJob { id, req, bytes });
                Ok(id)
            }
            Err(e) => {
                let tenant = self.tenants.entry(tenant_id).or_default();
                tenant.rejected += 1;
                self.push_reject_span(&req, bytes);
                self.flight_event(now, &req, FlightEventKind::Reject);
                Err(e)
            }
        }
    }

    /// Zero-length rejection span in the dedicated op namespace (never
    /// collides with job ids).
    fn push_reject_span(&mut self, req: &JobRequest, bytes: u64) {
        let op = REJECT_OP_BASE + self.reject_seq;
        self.reject_seq += 1;
        self.spans.push(reject_or_job_span(
            op,
            req,
            bytes,
            req.arrival,
            req.arrival,
            req.arrival,
            0,
            true,
        ));
        if let Some(reg) = self.registry.as_mut() {
            let tenant = req.tenant.0;
            let t = *self
                .ids
                .tenants
                .entry(tenant)
                .or_insert_with(|| TenantIds::new(reg, tenant));
            reg.counter_add_id(t.rejected, 1);
        }
    }

    /// Drive the full job stream to completion and produce the outcome.
    pub fn run(mut self, source: &mut dyn JobSource) -> ServeOutcome {
        let pool_before = WorkerPool::global().stats();
        loop {
            self.ingest(source);
            self.service();
            let mut next = self.next_event();
            if let Some(t) = source.peek() {
                let t = t.max(self.clock);
                next = Some(next.map_or(t, |n| n.min(t)));
            }
            let Some(next) = next else {
                debug_assert!(self.queue.is_empty(), "queue stuck with no events");
                break;
            };
            for (tenant, at) in self.advance_to(next) {
                source.on_complete(tenant, at);
            }
        }
        let pool_delta = WorkerPool::global().stats().since(pool_before);
        self.finish(pool_delta)
    }

    /// One service step at the current instant: expire queued jobs whose
    /// deadline or cancellation has passed, then dispatch free devices.
    /// Front-ends call this after submitting work; [`run`](Self::run)
    /// calls it every loop iteration.
    pub fn service(&mut self) {
        self.expire_queued();
        self.dispatch();
    }

    /// The next internal event instant: a pending batch completion or a
    /// queued job's deadline/cancellation. Source arrivals are the
    /// caller's to merge in (the shard front-end owns the global queue).
    pub fn next_event(&self) -> Option<Ns> {
        let mut next: Option<Ns> = None;
        let mut consider = |t: Ns| {
            next = Some(match next {
                Some(n) => n.min(t),
                None => t,
            });
        };
        for b in &self.pending {
            consider(b.end);
        }
        for q in &self.queue {
            if let Some(d) = q.req.deadline {
                consider(d.max(self.clock));
            }
            if let Some(c) = q.req.cancel_at {
                consider(c.max(self.clock));
            }
        }
        next
    }

    /// Advance the clock to `now` (never backwards), scrape any metric
    /// boundaries crossed, and finalize batches whose virtual completion
    /// has been reached. Returns one `(tenant, instant)` notification
    /// per terminal job so the caller can feed closed-loop sources.
    pub fn advance_to(&mut self, now: Ns) -> Vec<(TenantId, Ns)> {
        self.clock = self.clock.max(now);
        // Sample every scrape boundary crossed by this clock advance
        // *before* processing the events at the new instant.
        self.tick_metrics();
        self.complete_batches()
    }

    /// Kill this shard at `now`: every queued and in-flight job reaches
    /// a terminal state on this scheduler, and the non-cancelled,
    /// non-expired ones are returned (with the local id they died
    /// under) for the caller to re-route. Their records here read
    /// `Failed(NODE_FAILURE)`; a cluster front-end counts those as
    /// re-placements, not losses.
    pub fn fail(&mut self, now: Ns) -> Vec<(JobId, JobRequest)> {
        self.clock = self.clock.max(now);
        let now = self.clock;
        let mut survivors = Vec::new();
        for q in std::mem::take(&mut self.queue) {
            self.admission.release(q.bytes);
            if q.req.cancelled_at(now) {
                let at = q
                    .req
                    .cancel_at
                    .map_or(now, |c| c.max(q.req.arrival).min(now));
                self.terminal(q.id, &q.req, q.bytes, None, None, at, JobOutcome::Cancelled);
            } else if q.req.deadline.is_some_and(|d| d <= now) {
                let at = q.req.deadline.unwrap_or(now).max(q.req.arrival).min(now);
                self.terminal(q.id, &q.req, q.bytes, None, None, at, JobOutcome::TimedOut);
            } else {
                self.terminal(
                    q.id,
                    &q.req,
                    q.bytes,
                    None,
                    None,
                    now,
                    JobOutcome::Failed(NODE_FAILURE.to_string()),
                );
                survivors.push((q.id, q.req));
            }
        }
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(|b| (b.end, b.device));
        for b in pending {
            for j in b.jobs {
                self.in_flight_jobs[b.device] -= 1;
                if j.req.cancelled_at(now) {
                    self.terminal(
                        j.id,
                        &j.req,
                        j.bytes,
                        Some(j.device),
                        Some(j.started),
                        now,
                        JobOutcome::Cancelled,
                    );
                } else {
                    self.terminal(
                        j.id,
                        &j.req,
                        j.bytes,
                        Some(j.device),
                        Some(j.started),
                        now,
                        JobOutcome::Failed(NODE_FAILURE.to_string()),
                    );
                    survivors.push((j.id, j.req));
                }
            }
        }
        survivors
    }

    /// Finalize this scheduler into its outcome. The shard front-end
    /// calls this once per shard after the cluster loop drains; pass the
    /// worker-pool delta attributable to this shard (or
    /// `PoolStats::default()` when the pool is accounted cluster-wide).
    pub fn into_outcome(self, pool_delta: PoolStats) -> ServeOutcome {
        self.finish(pool_delta)
    }

    /// Refresh the live gauges and let the registry scrape any virtual
    /// interval boundaries crossed; burn-rate alerts become zero-length
    /// host spans in the trace.
    fn tick_metrics(&mut self) {
        let Some(reg) = self.registry.as_ref() else {
            return;
        };
        // Sampled gauges are only observed at scrape instants. When this
        // clock advance crosses no boundary, neither the refresh (a
        // handful of formats and map lookups per device) nor the tick
        // would be visible, so the whole thing reduces to one comparison
        // — keeping metering off the per-event hot path.
        if !reg.boundary_due(self.clock) {
            return;
        }
        self.refresh_gauges();
        let clock = self.clock;
        let alerts = self.registry.as_mut().expect("checked above").tick(clock);
        for a in alerts {
            self.push_alert_span(a);
        }
    }

    /// Refresh the sampled gauges from live scheduler state. Must run
    /// right before any scrape — boundary ticks and the final flush —
    /// so the sampled values reflect the state at the scrape instant.
    fn refresh_gauges(&mut self) {
        let Some(reg) = self.registry.as_mut() else {
            return;
        };
        reg.gauge_set("serve_queue_jobs", self.admission.queued_jobs() as f64);
        reg.gauge_set("serve_queue_bytes", self.admission.queued_bytes() as f64);
        let clock = self.clock;
        for (d, h) in self.horizons.iter().enumerate() {
            reg.gauge_set(
                &device_metric("serve_inflight_jobs", d),
                self.in_flight_jobs[d] as f64,
            );
            let busy_frac = if clock.is_zero() {
                0.0
            } else {
                h.busy_before(clock).0 as f64 / clock.0 as f64
            };
            reg.gauge_set(&device_metric("serve_device_busy_fraction", d), busy_frac);
        }
    }

    /// Mark an SLO burn-rate breach in the trace: a zero-length host
    /// span at the scrape instant that detected it. The label matches
    /// neither the `job[` nor the `reject[` pattern, so job-span
    /// statistics are unaffected.
    fn push_alert_span(&mut self, alert: hpdr_metrics::SloAlert) {
        let op = ALERT_OP_BASE + self.alert_seq;
        self.alert_seq += 1;
        self.spans.push(SpanRecord {
            op,
            label: format!("slo-breach[t{} burn={:.2}]", alert.tenant, alert.burn),
            engine: Engine::Host,
            queue: None,
            deps: vec![],
            kind: OpKind::Fixed,
            class: None,
            start: alert.at,
            end: alert.at,
            bytes: 0,
            footprint_bytes: 0,
            ready: alert.at,
            wall: Ns::ZERO,
        });
    }

    fn ingest(&mut self, source: &mut dyn JobSource) {
        for req in source.pop_ready(self.clock) {
            let _ = self.try_submit(req);
        }
    }

    /// Remove queued jobs whose deadline or cancellation instant has
    /// passed (their admission gauges release — backpressure reopens).
    fn expire_queued(&mut self) {
        let now = self.clock;
        let queue = std::mem::take(&mut self.queue);
        let mut kept = Vec::with_capacity(queue.len());
        for q in queue {
            let outcome = if q.req.cancelled_at(now) {
                Some(JobOutcome::Cancelled)
            } else if q.req.deadline.is_some_and(|d| d <= now) {
                Some(JobOutcome::TimedOut)
            } else {
                None
            };
            match outcome {
                None => kept.push(q),
                Some(outcome) => {
                    self.admission.release(q.bytes);
                    let terminal = match outcome {
                        JobOutcome::Cancelled => q
                            .req
                            .cancel_at
                            .map_or(now, |c| c.max(q.req.arrival).min(now)),
                        _ => q.req.deadline.unwrap_or(now).max(q.req.arrival).min(now),
                    };
                    self.terminal(q.id, &q.req, q.bytes, None, None, terminal, outcome);
                }
            }
        }
        self.queue = kept;
    }

    /// Dispatch free devices at the current instant.
    fn dispatch(&mut self) {
        let usable = match self.cfg.policy {
            Policy::Serial => 1,
            Policy::Batched => self.horizons.len(),
        };
        for d in 0..usable {
            while !self.queue.is_empty() && self.horizons[d].is_free_at(self.clock) {
                self.launch_on(d);
            }
        }
    }

    /// Total order for batch head selection: priority desc, tenant
    /// deficit (served bytes) asc, arrival asc, id asc.
    fn queue_rank(&self, q: &QueuedJob) -> (u8, u64, Ns, u64) {
        let served = self
            .tenants
            .get(&q.req.tenant.0)
            .map_or(0, |t| t.served_bytes);
        (u8::MAX - q.req.priority, served, q.req.arrival, q.id.0)
    }

    /// Form one batch and launch it on device `d`.
    fn launch_on(&mut self, d: usize) {
        // Head job: best-ranked queued job.
        let head_idx = (0..self.queue.len())
            .min_by_key(|&i| self.queue_rank(&self.queue[i]))
            .expect("launch_on with empty queue");
        // Compatibility is by kind *name*: retrieve jobs at different
        // tolerances fold into one shared launch.
        let head_kind = self.queue[head_idx].req.payload.kind().name();
        let head_codec = self.queue[head_idx].req.codec.name();

        // Fold compatible jobs (same direction + codec family) into the
        // batch, best-ranked first, up to the caps.
        let (max_jobs, max_bytes) = match self.cfg.policy {
            Policy::Serial => (1, u64::MAX),
            Policy::Batched => (self.cfg.max_batch_jobs.max(1), self.cfg.max_batch_bytes),
        };
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| self.queue_rank(&self.queue[i]));
        let mut picked: Vec<usize> = Vec::with_capacity(max_jobs);
        let mut batch_bytes = 0u64;
        for i in order {
            if picked.len() >= max_jobs {
                break;
            }
            let q = &self.queue[i];
            if q.req.payload.kind().name() != head_kind || q.req.codec.name() != head_codec {
                continue;
            }
            // Always take at least the head, even if it alone exceeds
            // the byte cap (it must run eventually).
            if !picked.is_empty() && batch_bytes + q.bytes > max_bytes {
                continue;
            }
            batch_bytes += q.bytes;
            picked.push(i);
        }
        debug_assert!(picked.contains(&head_idx));

        // Extract picked jobs from the queue (descending index keeps
        // the remaining indices valid).
        picked.sort_unstable();
        let mut batch: Vec<QueuedJob> = Vec::with_capacity(picked.len());
        for i in picked.into_iter().rev() {
            batch.push(self.queue.swap_remove(i));
        }
        batch.sort_by_key(|q| q.id.0);

        // Leaving the queue: admission gauges release now (the byte
        // budget bounds *queued* work; in-flight work is bounded by the
        // batch caps and device count).
        for q in &batch {
            self.admission.release(q.bytes);
        }

        // Cooperative cancellation checkpoint between admission and
        // launch: drop jobs cancelled while queued. Their CMM contexts
        // are never attached and no kernel runs for them.
        let now = self.clock;
        let (cancelled, live): (Vec<QueuedJob>, Vec<QueuedJob>) =
            batch.into_iter().partition(|q| q.req.cancelled_at(now));
        for q in cancelled {
            self.terminal(
                q.id,
                &q.req,
                q.bytes,
                None,
                None,
                now,
                JobOutcome::Cancelled,
            );
        }
        if live.is_empty() {
            return;
        }

        // Attach CMM contexts (setup cost on miss), run the shared
        // launch for real, then release the contexts.
        let mut setup = Ns::ZERO;
        let mut attached = Vec::with_capacity(live.len());
        for q in &live {
            let key = q.req.context_key(d);
            let before = self.cmm[d].stats().misses;
            let staging = q.bytes as usize;
            let ctx = self.cmm[d].get_or_create(&key, || ServeContext {
                staging: vec![0u8; staging],
            });
            if self.cmm[d].stats().misses > before {
                setup += self.cfg.context_setup;
            }
            // Touch the staging arena so reuse is real, not notional.
            {
                let mut c = ctx.lock();
                if c.staging.len() < staging {
                    c.staging.resize(staging, 0);
                }
                c.staging[0] = c.staging[0].wrapping_add(1);
            }
            attached.push(ctx);
        }

        let items: Vec<BatchItem> = live
            .iter()
            .map(|q| match &q.req.payload {
                crate::job::JobPayload::Compress { input, meta } => BatchItem::Compress {
                    reducer: q.req.codec.reducer(),
                    input: Arc::clone(input),
                    meta: meta.clone(),
                },
                crate::job::JobPayload::Decompress { container } => BatchItem::Decompress {
                    reducer: q.req.codec.reducer(),
                    container: (**container).clone(),
                },
                crate::job::JobPayload::Retrieve { set, tolerance, .. } => RetrieveBatchItem {
                    set: Arc::clone(set),
                    tolerance: *tolerance,
                }
                .into_item(),
            })
            .collect();
        let launch = run_batch(
            &self.cfg.spec,
            Arc::clone(&self.work),
            items,
            &self.cfg.pipeline,
        );
        let (per_job, makespan): (Vec<Result<(), String>>, Ns) = match launch {
            Ok((results, report)) => {
                if let Some(reg) = self.registry.as_mut() {
                    let ids = &mut self.ids;
                    let dev = *ids.devices[d].get_or_insert_with(|| DeviceMeterIds::new(reg, d));
                    reg.counter_add_id(dev.batches, 1);
                    reg.counter_add_id(dev.chunks, report.num_chunks as u64);
                    reg.gauge_set_id(dev.goodput, report.goodput_gbps());
                    let bj = *ids
                        .batch_jobs
                        .get_or_insert_with(|| reg.hist_handle("serve_batch_jobs"));
                    reg.hist_record_id(bj, live.len() as u64);
                    let bb = *ids
                        .batch_bytes
                        .get_or_insert_with(|| reg.hist_handle("serve_batch_bytes"));
                    reg.hist_record_id(bb, live.iter().map(|q| q.bytes).sum::<u64>());
                    record_batch_trace(reg, &report.trace, DeviceId(d), &mut ids.batch_trace[d]);
                }
                (
                    results
                        .into_iter()
                        .map(|r| r.map(|_| ()).map_err(|e| e.to_string()))
                        .collect(),
                    report.makespan,
                )
            }
            Err(e) => (vec![Err(e.to_string()); live.len()], Ns::ZERO),
        };
        drop(attached); // contexts release (idle in the CMM again)

        let service = self.cfg.launch_overhead + setup + makespan;
        let (start, end) = self.horizons[d].schedule(now, service);
        debug_assert_eq!(start, now, "device was checked free");
        let dispatch_overhead = (self.cfg.launch_overhead + setup).0;
        for q in &live {
            self.flight_event(
                start,
                &q.req,
                FlightEventKind::Dispatch {
                    device: d as u32,
                    overhead_ns: dispatch_overhead,
                },
            );
        }
        self.device_jobs[d].0 += 1;
        self.device_jobs[d].1 += live.len() as u64;
        self.in_flight_jobs[d] += live.len() as u64;
        let jobs = live
            .into_iter()
            .zip(per_job)
            .map(|(q, result)| {
                // Dispatch charges the tenant's fair-share deficit.
                self.tenants.entry(q.req.tenant.0).or_default().served_bytes += q.bytes;
                InFlight {
                    id: q.id,
                    req: q.req,
                    bytes: q.bytes,
                    device: d,
                    started: start,
                    result,
                }
            })
            .collect();
        self.pending.push(PendingBatch {
            end,
            device: d,
            jobs,
        });
    }

    /// Finalize batches whose virtual completion has been reached and
    /// return the `(tenant, instant)` completion notifications in the
    /// order they fired.
    fn complete_batches(&mut self) -> Vec<(TenantId, Ns)> {
        let now = self.clock;
        let mut done = Vec::new();
        let mut still = Vec::new();
        for b in self.pending.drain(..) {
            if b.end <= now {
                done.push(b);
            } else {
                still.push(b);
            }
        }
        self.pending = still;
        // Deterministic completion order: by end time, then device.
        done.sort_by_key(|b| (b.end, b.device));
        let mut notices = Vec::new();
        for b in done {
            for j in b.jobs {
                self.in_flight_jobs[b.device] -= 1;
                let outcome = match &j.result {
                    Err(e) => JobOutcome::Failed(e.clone()),
                    Ok(()) if j.req.cancel_at.is_some_and(|c| c < b.end) => JobOutcome::Cancelled,
                    Ok(()) if j.req.deadline.is_some_and(|dl| b.end > dl) => JobOutcome::TimedOut,
                    Ok(()) => JobOutcome::Completed,
                };
                let tenant = j.req.tenant;
                self.terminal(
                    j.id,
                    &j.req,
                    j.bytes,
                    Some(j.device),
                    Some(j.started),
                    b.end,
                    outcome,
                );
                notices.push((tenant, b.end));
            }
        }
        notices
    }

    /// Record a terminal state for an admitted job.
    #[allow(clippy::too_many_arguments)]
    fn terminal(
        &mut self,
        id: JobId,
        req: &JobRequest,
        bytes: u64,
        device: Option<usize>,
        started: Option<Ns>,
        finished: Ns,
        outcome: JobOutcome,
    ) {
        if outcome == JobOutcome::Completed {
            let t = self.tenants.entry(req.tenant.0).or_default();
            t.completed += 1;
            t.bytes += bytes;
        }
        self.flight_event(
            finished,
            req,
            match &outcome {
                JobOutcome::Completed => FlightEventKind::Complete,
                JobOutcome::TimedOut => FlightEventKind::TimedOut,
                JobOutcome::Cancelled => FlightEventKind::Cancelled,
                JobOutcome::Failed(_) => FlightEventKind::Failed,
            },
        );
        // Exemplar attachment: with both metering and flight recording
        // on, terminal latencies feed a histogram whose worst sample
        // carries its trace id — a metric spike links to a trace.
        if self.recorder.is_some() && req.trace.is_assigned() {
            if let Some(reg) = self.registry.as_mut() {
                let l = *self
                    .ids
                    .latency
                    .get_or_insert_with(|| reg.hist_handle("serve_latency_ns"));
                reg.hist_record_exemplar_id(
                    l,
                    finished.saturating_sub(req.arrival).0,
                    req.trace.trace,
                );
            }
        }
        if let Some(reg) = self.registry.as_mut() {
            let ids = &mut self.ids;
            let completed = outcome == JobOutcome::Completed;
            if completed {
                let tenant = req.tenant.0;
                let t = *ids
                    .tenants
                    .entry(tenant)
                    .or_insert_with(|| TenantIds::new(reg, tenant));
                reg.counter_add_id(t.goodput, bytes);
                if let Some(dl) = req.deadline {
                    let m = *ids
                        .margin
                        .get_or_insert_with(|| reg.hist_handle("serve_deadline_margin_ns"));
                    reg.hist_record_id(m, dl.saturating_sub(finished).0);
                }
            }
            // Good = completed within the SLO latency target.
            if let Some(slo) = reg.config().slo {
                let latency = finished.saturating_sub(req.arrival);
                let good = completed && latency <= slo.latency_target;
                reg.slo_record(req.tenant.0, finished, good);
            }
        }
        // Update the job's span in place: start = dispatch (or terminal
        // instant if never launched), end = terminal instant.
        if let Some(span) = self
            .spans
            .iter_mut()
            .find(|s| s.op == id.0 as usize && !s.label.starts_with("reject"))
        {
            span.start = started.unwrap_or(finished);
            span.end = finished;
            if let Some(d) = device {
                span.engine = Engine::Compute(DeviceId(d));
                span.queue = Some(d);
            }
            span.label = format!(
                "job[{}] t{} {} {} {}",
                id.0,
                req.tenant.0,
                req.payload.kind().name(),
                req.codec.label(),
                outcome.name()
            );
        }
        self.records.push(JobRecord {
            id,
            tenant: req.tenant,
            kind: req.payload.kind(),
            codec: req.codec.label(),
            bytes,
            device,
            arrival: req.arrival,
            started,
            finished,
            outcome,
        });
    }

    fn finish(mut self, pool_delta: PoolStats) -> ServeOutcome {
        debug_assert!(self.pending.is_empty());
        debug_assert_eq!(self.admission.queued_jobs(), 0);
        self.records.sort_by_key(|r| r.id.0);
        let makespan = self
            .records
            .iter()
            .map(|r| r.finished)
            .max()
            .unwrap_or(Ns::ZERO);
        // Final scrape at the makespan so the series cover the full run,
        // then fold in the (volatile) worker-pool counters. `flush`
        // ticks any remaining boundaries itself; the gauges just need
        // one last refresh so the off-boundary sample sees live state.
        self.clock = self.clock.max(makespan);
        self.refresh_gauges();
        let alerts = match self.registry.as_mut() {
            Some(reg) => {
                let alerts = reg.flush(makespan);
                record_pool_stats(reg, pool_delta, WorkerPool::global().workers());
                alerts
            }
            None => Vec::new(),
        };
        for a in alerts {
            self.push_alert_span(a);
        }
        let mut devices = BTreeMap::new();
        for (d, h) in self.horizons.iter().enumerate() {
            let (batches, jobs) = self.device_jobs[d];
            if batches == 0 {
                continue; // only devices that did work appear in reports
            }
            devices.insert(
                d,
                DeviceStats {
                    batches,
                    jobs,
                    busy: h.busy(),
                    utilization: h.utilization(makespan),
                },
            );
        }
        let (mut hits, mut misses) = (0, 0);
        let (mut contexts, mut idle) = (0, 0);
        for c in &self.cmm {
            let s = c.stats();
            hits += s.hits;
            misses += s.misses;
            contexts += c.len();
            idle += c.idle_count();
        }
        self.spans.sort_by_key(|s| (s.ready, s.op));
        ServeOutcome {
            records: self.records,
            tenants: self.tenants,
            devices,
            admission: self.admission,
            makespan,
            trace: Trace::from_spans(self.spans),
            cmm_hits: hits,
            cmm_misses: misses,
            cmm_contexts: contexts,
            cmm_idle: idle,
            in_flight_end: self.in_flight_jobs.iter().sum(),
            pool_jobs: pool_delta.jobs,
            metrics: self.registry,
            flight: self.recorder.map(FlightRecorder::into_log),
        }
    }
}

/// `family{tenant="N"}` instrument name.
fn tenant_metric(family: &str, tenant: u32) -> String {
    format!("{family}{{tenant=\"{tenant}\"}}")
}

/// `family{device="N"}` instrument name.
fn device_metric(family: &str, device: usize) -> String {
    format!("{family}{{device=\"{device}\"}}")
}

/// Build the span for a job at submission time (updated in place when
/// the job reaches a terminal state) or a zero-length rejection span.
#[allow(clippy::too_many_arguments)]
fn reject_or_job_span(
    op: usize,
    req: &JobRequest,
    bytes: u64,
    ready: Ns,
    start: Ns,
    end: Ns,
    device: usize,
    rejected: bool,
) -> SpanRecord {
    let label = if rejected {
        format!(
            "reject[t{} {} {}]",
            req.tenant.0,
            req.payload.kind().name(),
            req.codec.label()
        )
    } else {
        format!(
            "job[?] t{} {} {}",
            req.tenant.0,
            req.payload.kind().name(),
            req.codec.label()
        )
    };
    SpanRecord {
        op,
        label,
        engine: Engine::Compute(DeviceId(device)),
        queue: Some(device),
        deps: vec![],
        kind: OpKind::Kernel,
        class: Some(req.codec.reducer().kernel_class()),
        start,
        end,
        bytes,
        footprint_bytes: 0,
        ready,
        wall: Ns::ZERO,
    }
}

/// Convenience: run a job stream through a fresh scheduler.
pub fn serve(
    cfg: ServeConfig,
    work: Arc<dyn DeviceAdapter>,
    source: &mut dyn JobSource,
) -> ServeOutcome {
    Scheduler::new(cfg, work).run(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutcome;
    use crate::script::parse_script;
    use hpdr_core::CpuParallelAdapter;

    /// Mixed-fidelity retrievals from three tenants: all three fold
    /// into one shared launch (same kind name despite different
    /// tolerances), share one coarse component set at parse time, and
    /// share one CMM context family at serve time (1 miss + 2 hits).
    #[test]
    fn mixed_fidelity_retrievals_batch_and_share_contexts() {
        let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::new(2));
        let script = "\
0 0 retrieve mgard:1e-5 8 tol=1e-1
0 1 retrieve mgard:1e-5 8 tol=1e-3
0 2 retrieve mgard:1e-5 8 tol=1e-1
";
        let jobs = parse_script(script, work.as_ref()).unwrap();
        let mut source = VecSource::new(jobs);
        let outcome = serve(ServeConfig::default(), Arc::clone(&work), &mut source);
        assert_eq!(outcome.records.len(), 3);
        for r in &outcome.records {
            assert_eq!(r.outcome, JobOutcome::Completed, "job {:?}", r.id);
            assert_eq!(r.kind.name(), "retrieve");
        }
        // One shared launch carried all three fidelities.
        let dev = outcome.devices.get(&0).expect("device 0 did the work");
        assert_eq!(dev.batches, 1);
        assert_eq!(dev.jobs, 3);
        // One context family across tenants and tolerances.
        assert_eq!(outcome.cmm_misses, 1);
        assert_eq!(outcome.cmm_hits, 2);
        assert_eq!(outcome.in_flight_end, 0);
    }

    /// Retrieve jobs never fold with compress/decompress work, and a
    /// looser tolerance moves strictly fewer bytes through the device
    /// (the progressive win, visible in the span trace's byte counts).
    #[test]
    fn retrieve_batches_stay_separate_from_compress() {
        let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::new(2));
        let script = "\
0 0 retrieve mgard:1e-5 8 tol=1e-1
0 1 compress mgard:1e-5 8
";
        let jobs = parse_script(script, work.as_ref()).unwrap();
        let mut source = VecSource::new(jobs);
        let outcome = serve(ServeConfig::default(), Arc::clone(&work), &mut source);
        assert_eq!(outcome.records.len(), 2);
        for r in &outcome.records {
            assert_eq!(r.outcome, JobOutcome::Completed);
        }
        let dev = outcome.devices.get(&0).expect("device 0 did the work");
        assert_eq!(dev.batches, 2, "retrieve must not fold with compress");
    }
}
