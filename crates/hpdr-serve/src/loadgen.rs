//! Deterministic load generation for the serving layer.
//!
//! Seeded synthetic workloads over the scripted payload cache: Poisson
//! (open-loop) arrivals or a closed loop with one outstanding request
//! per tenant, a fixed job mix (sides 8/12/16, 80% compress, uniform
//! codecs, a sprinkle of priorities, deadlines and cancellations), and
//! a schema-validated JSON report with trace-derived p50/p95/p99
//! latency, goodput and rejection rate. The report also embeds a
//! batching microbench: the same job prefix replayed one-at-a-time
//! (`Policy::Serial`) versus continuously batched, whose goodput ratio
//! is the `batching_speedup` headline.

use crate::error::ServeError;
use crate::job::{JobRequest, ServeCodec, TenantId};
use crate::report::{validate_serve_json, ServeReport};
use crate::scheduler::{serve, JobSource, Policy, Scheduler, ServeConfig, VecSource};
use crate::script::PayloadCache;
use hpdr_core::{CpuParallelAdapter, DeviceAdapter};
use hpdr_sim::Ns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Schema identifier for loadgen reports.
pub const LOADGEN_SCHEMA: &str = "hpdr-loadgen/v1";

/// Load-generator options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenOptions {
    /// Mean arrival rate (jobs per virtual second).
    pub rps: f64,
    /// Virtual duration of the arrival window, seconds.
    pub duration_s: f64,
    pub tenants: u32,
    pub devices: usize,
    pub seed: u64,
    /// Closed loop: one outstanding request per tenant.
    pub closed: bool,
    /// Install a metrics registry (default cadence + SLO) on the main
    /// serve run. The microbench replays always run metrics-free.
    pub metrics: bool,
    /// Install a flight recorder (default config) on the main serve
    /// run. The microbench replays always run recorder-free.
    pub flight: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            rps: 100.0,
            duration_s: 1.0,
            tenants: 4,
            devices: 2,
            seed: 7,
            closed: false,
            metrics: false,
            flight: false,
        }
    }
}

impl LoadgenOptions {
    /// The `--quick` smoke preset: small and seconds-fast, same mix.
    pub fn quick() -> LoadgenOptions {
        LoadgenOptions {
            rps: 64.0,
            duration_s: 0.5,
            tenants: 4,
            devices: 2,
            seed: 7,
            closed: false,
            metrics: false,
            flight: false,
        }
    }
}

const SIDES: [usize; 3] = [8, 12, 16];
const CODECS: [ServeCodec; 5] = [
    ServeCodec::Zfp { rate: 16 },
    ServeCodec::Mgard { rel_eb: 1e-3 },
    ServeCodec::Sz { rel_eb: 1e-3 },
    ServeCodec::Huffman,
    ServeCodec::Lz4,
];
/// Codec for progressive retrieve jobs (the `rel_eb` sets the
/// refactoring's full-precision floor, below every drawn tolerance).
const RETRIEVE_CODEC: ServeCodec = ServeCodec::Mgard { rel_eb: 1e-4 };
/// Relative tolerances retrieve jobs draw from — mixed fidelities of
/// the *same* stored field, so fair queuing and batching see retrieve
/// jobs of very different fetch sizes side by side.
const RETRIEVE_TOLS: [f64; 3] = [1e-1, 1e-2, 1e-3];

/// Draw one job from the mix (70% compress, 15% decompress, 15%
/// progressive retrieve at a mixed tolerance). `arrival` is absolute
/// for open-loop jobs and a relative think offset for closed-loop
/// ones.
fn draw_job(
    rng: &mut StdRng,
    cache: &mut PayloadCache,
    work: &dyn DeviceAdapter,
    tenants: u32,
    arrival: Ns,
    with_hazards: bool,
) -> Result<JobRequest, ServeError> {
    let tenant = TenantId(rng.gen_range(0..tenants.max(1)));
    let side = SIDES[rng.gen_range(0..SIDES.len())];
    let codec = CODECS[rng.gen_range(0..CODECS.len())];
    let roll = rng.gen_range(0.0..1.0);
    let (codec, payload) = if roll < 0.70 {
        (codec, cache.payload(true, codec, side, work)?)
    } else if roll < 0.85 {
        (codec, cache.payload(false, codec, side, work)?)
    } else {
        let tol = RETRIEVE_TOLS[rng.gen_range(0..RETRIEVE_TOLS.len())];
        (
            RETRIEVE_CODEC,
            cache.retrieval_for(tenant.0, RETRIEVE_CODEC, side, tol, work)?,
        )
    };
    let mut req = JobRequest::new(tenant, arrival, codec, payload);
    if rng.gen_range(0.0..1.0) < 0.10 {
        req.priority = rng.gen_range(1u8..=3);
    }
    if with_hazards {
        if rng.gen_range(0.0..1.0) < 0.05 {
            req.deadline = Some(arrival + Ns::from_micros(rng.gen_range(2_000u64..=10_000)));
        }
        if rng.gen_range(0.0..1.0) < 0.02 {
            req.cancel_at = Some(arrival + Ns::from_micros(rng.gen_range(0u64..=500)));
        }
    }
    Ok(req)
}

/// Generate the open-loop (Poisson) job stream.
pub fn generate_open(
    opts: &LoadgenOptions,
    work: &dyn DeviceAdapter,
) -> Result<Vec<JobRequest>, ServeError> {
    generate_open_with(opts, work, &mut PayloadCache::new())
}

/// [`generate_open`] with a caller-owned payload cache (stats and
/// cross-run sharing).
pub fn generate_open_with(
    opts: &LoadgenOptions,
    work: &dyn DeviceAdapter,
    cache: &mut PayloadCache,
) -> Result<Vec<JobRequest>, ServeError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let horizon_ns = opts.duration_s * 1e9;
    let mut t_ns = 0.0f64;
    let mut jobs = Vec::new();
    loop {
        let u: f64 = rng.gen_range(1e-12..1.0);
        t_ns += -u.ln() / opts.rps * 1e9;
        if t_ns > horizon_ns {
            break;
        }
        jobs.push(draw_job(
            &mut rng,
            cache,
            work,
            opts.tenants,
            Ns(t_ns as u64),
            true,
        )?);
    }
    Ok(jobs)
}

/// Closed-loop source: each tenant keeps exactly one request
/// outstanding; the next one is released at completion plus a seeded
/// think time (carried in the pre-generated job's `arrival` field as a
/// relative offset).
pub struct ClosedSource {
    pending: BTreeMap<u32, VecDeque<JobRequest>>,
    released: Vec<JobRequest>,
}

impl ClosedSource {
    /// Build from per-tenant job queues; each tenant's first job is
    /// released at its own think offset from time zero.
    pub fn new(mut pending: BTreeMap<u32, VecDeque<JobRequest>>) -> ClosedSource {
        let mut released = Vec::new();
        for queue in pending.values_mut() {
            if let Some(first) = queue.pop_front() {
                released.push(first);
            }
        }
        ClosedSource { pending, released }
    }
}

impl JobSource for ClosedSource {
    fn peek(&self) -> Option<Ns> {
        self.released.iter().map(|j| j.arrival).min()
    }

    fn pop_ready(&mut self, now: Ns) -> Vec<JobRequest> {
        let mut ready: Vec<JobRequest> = Vec::new();
        let mut keep = Vec::with_capacity(self.released.len());
        for j in self.released.drain(..) {
            if j.arrival <= now {
                ready.push(j);
            } else {
                keep.push(j);
            }
        }
        self.released = keep;
        ready.sort_by_key(|j| (j.arrival, j.tenant.0));
        ready
    }

    fn on_complete(&mut self, tenant: TenantId, now: Ns) {
        if let Some(mut next) = self.pending.get_mut(&tenant.0).and_then(|q| q.pop_front()) {
            next.arrival = now + next.arrival; // arrival held the think offset
            self.released.push(next);
        }
    }
}

/// Generate the closed-loop per-tenant queues.
pub fn generate_closed(
    opts: &LoadgenOptions,
    work: &dyn DeviceAdapter,
) -> Result<ClosedSource, ServeError> {
    generate_closed_with(opts, work, &mut PayloadCache::new())
}

/// [`generate_closed`] with a caller-owned payload cache.
pub fn generate_closed_with(
    opts: &LoadgenOptions,
    work: &dyn DeviceAdapter,
    cache: &mut PayloadCache,
) -> Result<ClosedSource, ServeError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let total = (opts.rps * opts.duration_s).ceil() as u64;
    let tenants = opts.tenants.max(1);
    let per_tenant_rps = opts.rps / tenants as f64;
    let mut pending: BTreeMap<u32, VecDeque<JobRequest>> = BTreeMap::new();
    for i in 0..total {
        let u: f64 = rng.gen_range(1e-12..1.0);
        let think = Ns((-u.ln() / per_tenant_rps * 1e9) as u64);
        // Closed-loop jobs carry no deadlines/cancellations: their
        // arrival is completion-relative, so absolute hazards would be
        // meaningless at generation time.
        let mut job = draw_job(&mut rng, cache, work, tenants, think, false)?;
        job.tenant = TenantId((i % tenants as u64) as u32);
        pending.entry(job.tenant.0).or_default().push_back(job);
    }
    Ok(ClosedSource::new(pending))
}

/// Result of a loadgen run: the serve report plus the batching
/// microbench.
pub struct LoadgenReport {
    pub opts: LoadgenOptions,
    pub serve: ServeReport,
    /// Goodput of the batched prefix replay.
    pub batched_goodput_gbps: f64,
    /// Goodput of the same prefix one-job-at-a-time.
    pub serial_goodput_gbps: f64,
    /// `batched / serial` — continuous batching's win.
    pub batching_speedup: f64,
    /// Causal flight analysis of the main run (present iff
    /// `LoadgenOptions::flight`). Not embedded in [`to_json`](Self::to_json):
    /// the CLI writes it as a standalone `hpdr-flight/v1` document.
    pub flight: Option<hpdr_flight::FlightReport>,
}

impl LoadgenReport {
    /// Human-readable summary: workload headline, serve summary, and
    /// the batching microbench verdict.
    pub fn render(&self) -> Vec<String> {
        let mut out = vec![format!(
            "loadgen: seed {} — {:.0} rps x {:.2}s, {} tenants, {} loop",
            self.opts.seed,
            self.opts.rps,
            self.opts.duration_s,
            self.opts.tenants,
            if self.opts.closed { "closed" } else { "open" },
        )];
        out.extend(self.serve.render());
        let rate = if self.serve.submitted > 0 {
            self.serve.rejected as f64 / self.serve.submitted as f64
        } else {
            0.0
        };
        out.push(format!("rejection rate: {:.2}%", rate * 100.0));
        out.push(format!(
            "continuous batching: {:.4} GB/s vs {:.4} GB/s serial — {:.2}x",
            self.batched_goodput_gbps, self.serial_goodput_gbps, self.batching_speedup
        ));
        out
    }

    pub fn to_json(&self) -> String {
        let serve = self.serve.to_json();
        let serve = serve.trim_end();
        format!(
            "{{\n  \"schema\": \"{LOADGEN_SCHEMA}\",\n  \"seed\": {},\n  \"rps\": {:.3},\n  \
             \"duration_s\": {:.3},\n  \"tenants\": {},\n  \"loop\": \"{}\",\n  \
             \"batched_goodput_gbps\": {:.6},\n  \"serial_goodput_gbps\": {:.6},\n  \
             \"batching_speedup\": {:.4},\n  \"serve\": {}\n}}\n",
            self.opts.seed,
            self.opts.rps,
            self.opts.duration_s,
            self.opts.tenants,
            if self.opts.closed { "closed" } else { "open" },
            self.batched_goodput_gbps,
            self.serial_goodput_gbps,
            self.batching_speedup,
            serve.replace('\n', "\n  "),
        )
    }
}

/// Validate a loadgen JSON document (schema + embedded serve report).
pub fn validate_loadgen_json(json: &str) -> Result<(), String> {
    if !json.contains(&format!("\"schema\": \"{LOADGEN_SCHEMA}\"")) {
        return Err(format!("missing schema id {LOADGEN_SCHEMA}"));
    }
    for k in ["batching_speedup", "serial_goodput_gbps", "serve"] {
        if !json.contains(&format!("\"{k}\"")) {
            return Err(format!("missing field '{k}'"));
        }
    }
    validate_serve_json(json)
}

/// The scheduler microbench: replay `prefix` (arrivals zeroed, hazards
/// stripped) under each policy on one device and compare goodput.
fn replay_goodput(
    prefix: &[JobRequest],
    policy: Policy,
    base: &ServeConfig,
    work: &Arc<dyn DeviceAdapter>,
) -> f64 {
    let jobs: Vec<JobRequest> = prefix
        .iter()
        .map(|j| {
            let mut j = JobRequest::new(j.tenant, Ns::ZERO, j.codec, j.payload.clone());
            j.priority = 0;
            j
        })
        .collect();
    let cfg = ServeConfig {
        devices: 1,
        policy,
        admission: crate::admission::AdmissionConfig {
            max_queued_jobs: jobs.len().max(1),
            max_queued_bytes: u64::MAX,
        },
        // The microbench compares raw goodput; never meter or trace it.
        metrics: None,
        flight: None,
        ..base.clone()
    };
    let mut source = VecSource::new(jobs);
    let outcome = serve(cfg, Arc::clone(work), &mut source);
    ServeReport::build(policy, outcome).goodput_gbps
}

/// Surface the payload cache's occupancy and per-tenant plan hit/miss
/// counters as registry gauges: generation fully populates the cache
/// before serving, so the values are exact for the whole run and show
/// up in `hpdr top`, the exposition dump and the metrics JSON — not
/// only the final report. No-op when the run is unmetered.
fn set_cache_gauges(sched: &mut Scheduler, cache: &PayloadCache) {
    let stats = cache.stats();
    let tenants = cache.tenant_plan_stats().clone();
    let Some(reg) = sched.registry_mut() else {
        return;
    };
    reg.gauge_set(
        "payload_cache_retrieval_bytes",
        stats.retrieval_bytes as f64,
    );
    reg.gauge_set(
        "payload_cache_retrieval_evictions",
        stats.retrieval_evictions as f64,
    );
    reg.gauge_set("payload_cache_plan_bytes", stats.plan_bytes as f64);
    reg.gauge_set("payload_cache_plan_evictions", stats.plan_evictions as f64);
    for (tenant, (hits, misses)) in tenants {
        reg.gauge_set(
            &format!("payload_cache_plan_hits{{tenant=\"{tenant}\"}}"),
            hits as f64,
        );
        reg.gauge_set(
            &format!("payload_cache_plan_misses{{tenant=\"{tenant}\"}}"),
            misses as f64,
        );
    }
}

/// Run a full load-generation session: generate, serve, microbench.
pub fn run_loadgen(opts: LoadgenOptions) -> Result<LoadgenReport, ServeError> {
    let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::with_defaults());
    let cfg = ServeConfig {
        devices: opts.devices.max(1),
        policy: Policy::Batched,
        metrics: opts.metrics.then(|| hpdr_metrics::MetricsConfig {
            slo: Some(hpdr_metrics::SloConfig::default()),
            ..hpdr_metrics::MetricsConfig::default()
        }),
        flight: opts.flight.then(hpdr_flight::FlightConfig::default),
        ..ServeConfig::default()
    };

    let mut cache = PayloadCache::new();
    let (outcome, prefix) = if opts.closed {
        let mut source = generate_closed_with(&opts, work.as_ref(), &mut cache)?;
        let prefix_opts = LoadgenOptions {
            closed: false,
            ..opts
        };
        let prefix = generate_open_with(&prefix_opts, work.as_ref(), &mut cache)?;
        let mut sched = Scheduler::new(cfg.clone(), Arc::clone(&work));
        set_cache_gauges(&mut sched, &cache);
        (sched.run(&mut source), prefix)
    } else {
        let jobs = generate_open_with(&opts, work.as_ref(), &mut cache)?;
        let prefix = jobs.clone();
        let mut source = VecSource::new(jobs);
        let mut sched = Scheduler::new(cfg.clone(), Arc::clone(&work));
        set_cache_gauges(&mut sched, &cache);
        (sched.run(&mut source), prefix)
    };
    let mut outcome = outcome;
    // ServeReport::build consumes the outcome; the flight log leaves it
    // first and is analyzed under the same (default) recorder config.
    let flight = outcome
        .flight
        .take()
        .map(|log| hpdr_flight::analyze(&log, &hpdr_flight::FlightConfig::default(), None));
    let mut serve_report = ServeReport::build(cfg.policy, outcome);
    serve_report.payload_cache = Some(cache.stats());

    let prefix: Vec<JobRequest> = prefix.into_iter().take(64).collect();
    let batched = replay_goodput(&prefix, Policy::Batched, &cfg, &work);
    let serial = replay_goodput(&prefix, Policy::Serial, &cfg, &work);
    let speedup = if serial > 0.0 { batched / serial } else { 0.0 };
    Ok(LoadgenReport {
        opts,
        serve: serve_report,
        batched_goodput_gbps: batched,
        serial_goodput_gbps: serial,
        batching_speedup: speedup,
        flight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::SerialAdapter;

    #[test]
    fn open_loop_generation_is_seed_deterministic() {
        let opts = LoadgenOptions {
            rps: 500.0,
            duration_s: 0.05,
            ..LoadgenOptions::default()
        };
        let work = SerialAdapter::new();
        let a = generate_open(&opts, &work).unwrap();
        let b = generate_open(&opts, &work).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.codec, y.codec);
            assert_eq!(x.priority, y.priority);
        }
        let c = generate_open(&LoadgenOptions { seed: 8, ..opts }, &work).unwrap();
        assert!(
            a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.arrival != y.arrival),
            "different seeds should differ"
        );
    }

    #[test]
    fn closed_source_keeps_one_outstanding_per_tenant() {
        let opts = LoadgenOptions {
            rps: 100.0,
            duration_s: 0.1,
            tenants: 2,
            ..LoadgenOptions::default()
        };
        let work = SerialAdapter::new();
        let mut src = generate_closed(&opts, &work).unwrap();
        // At most one released job per tenant before any completion.
        let first = src.pop_ready(Ns(u64::MAX / 2));
        assert!(first.len() <= 2);
        let before = src.peek();
        src.on_complete(TenantId(0), Ns(1_000_000));
        // Completion released tenant 0's next job.
        assert!(src.peek().is_some() || before.is_none());
    }

    #[test]
    fn quick_preset_is_small() {
        let q = LoadgenOptions::quick();
        assert!(q.rps * q.duration_s <= 64.0);
    }
}
