//! Streaming latency histogram — moved to `hpdr-metrics` so the
//! registry can aggregate per-device sketches without depending on the
//! serving layer. Re-exported here so existing
//! `hpdr_serve::histogram::*` paths keep working.

pub use hpdr_metrics::histogram::{bucket_width, exact_quantile, StreamingHistogram};
