//! Serve reports: schema-validated JSON over trace-derived metrics.
//!
//! Latency percentiles and rejection counts are computed from the
//! per-job trace spans (not from side counters): a completed job's
//! latency is `end − ready` of its span, its queue wait is
//! `start − ready`, and every rejected submission leaves a zero-length
//! `reject[…]` span. The report carries only virtual-time quantities,
//! so the same seed and job stream serialize byte-identically.
//!
//! The validator enforces the **zero-lost-jobs invariant**:
//! `admitted == completed + timed_out + cancelled + failed` and
//! `submitted == admitted + rejected` — every submission is accounted
//! for exactly once.

use crate::histogram::StreamingHistogram;
use crate::job::{JobOutcome, JobRecord};
use crate::scheduler::{Policy, ServeOutcome};
use hpdr_sim::{Ns, Trace};

/// Schema identifier embedded in every serve report.
pub const SERVE_SCHEMA: &str = "hpdr-serve/v1";

/// Latency-style summary (all values virtual nanoseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
    pub mean: u64,
}

impl LatencySummary {
    /// Summarize a quantile sketch (also used by the cluster report to
    /// summarize shard-merged histograms).
    pub fn from_histogram(h: &StreamingHistogram) -> LatencySummary {
        LatencySummary {
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max(),
            mean: h.mean(),
        }
    }

    /// Compact JSON object (shared with the cluster report).
    pub fn to_json(self) -> String {
        format!(
            "{{\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
            self.p50, self.p95, self.p99, self.max, self.mean
        )
    }
}

/// Per-tenant report row.
#[derive(Debug, Clone)]
pub struct TenantRow {
    pub tenant: u32,
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub bytes: u64,
    pub mean_latency_ns: u64,
}

/// Per-device report row (devices that dispatched at least one batch).
#[derive(Debug, Clone)]
pub struct DeviceRow {
    pub device: usize,
    pub batches: u64,
    pub jobs: u64,
    pub busy_ns: u64,
    pub utilization: f64,
}

/// The full result of a serve run.
pub struct ServeReport {
    pub policy: &'static str,
    /// Devices that dispatched at least one batch. Deliberately NOT the
    /// configured pool size: under `Policy::Serial` the report must be
    /// byte-identical for any `--devices`, so only observed work — never
    /// configuration that cannot affect it — may be serialized.
    pub devices: usize,
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub rejected_depth: u64,
    pub rejected_bytes: u64,
    pub rejected_invalid: u64,
    pub completed: u64,
    pub timed_out: u64,
    pub cancelled: u64,
    pub failed: u64,
    /// Uncompressed bytes of completed jobs.
    pub completed_bytes: u64,
    pub makespan: Ns,
    /// Completed uncompressed bytes per virtual second (1 byte/ns ⇒ GB/s).
    pub goodput_gbps: f64,
    pub peak_queue_jobs: usize,
    pub peak_queue_bytes: u64,
    pub batches: u64,
    pub cmm_hits: u64,
    pub cmm_misses: u64,
    /// Worker-pool jobs dispatched while serving (host-side execution).
    /// Not serialized: the pool counter is process-global, so parallel
    /// runs in one process would perturb each other's deltas.
    pub pool_jobs: u64,
    /// End-to-end latency of completed jobs (trace-derived).
    pub latency: LatencySummary,
    /// Queue wait (dispatch − arrival) of completed jobs (trace-derived).
    pub queue_wait: LatencySummary,
    pub per_tenant: Vec<TenantRow>,
    pub per_device: Vec<DeviceRow>,
    /// Per-job terminal records (not serialized).
    pub records: Vec<JobRecord>,
    /// One span per admitted job plus one per rejection (not serialized).
    pub trace: Trace,
    /// The metrics registry of the run (when `ServeConfig::metrics` was
    /// set): scrape series, exposition, SLO attainment.
    pub metrics: Option<hpdr_metrics::Registry>,
    /// Payload-cache occupancy/eviction counters of the run's
    /// materialization phase (attached by callers that own the cache —
    /// `ServeReport::build` has no access to it).
    pub payload_cache: Option<crate::script::CacheStats>,
}

impl ServeReport {
    /// Build the report from a scheduler outcome. Latency percentiles
    /// and the rejection count come from the trace spans.
    pub fn build(policy: Policy, outcome: ServeOutcome) -> ServeReport {
        let job_stats = hpdr_trace::job_span_stats(&outcome.trace);
        let mut latency = StreamingHistogram::new();
        let mut wait = StreamingHistogram::new();
        for &l in &job_stats.latencies {
            latency.record(l);
        }
        for &w in &job_stats.waits {
            wait.record(w);
        }
        let rejected = job_stats.rejected;
        debug_assert_eq!(rejected, outcome.admission.rejected());
        debug_assert_eq!(
            job_stats.open, 0,
            "every admitted job's Begin span must have its End recorded"
        );

        let (mut completed, mut timed_out, mut cancelled, mut failed) = (0u64, 0, 0, 0);
        let mut completed_bytes = 0u64;
        for r in &outcome.records {
            match r.outcome {
                JobOutcome::Completed => {
                    completed += 1;
                    completed_bytes += r.bytes;
                }
                JobOutcome::TimedOut => timed_out += 1,
                JobOutcome::Cancelled => cancelled += 1,
                JobOutcome::Failed(_) => failed += 1,
            }
        }

        // Per-tenant mean latency over completed jobs.
        let mut tenant_lat: std::collections::BTreeMap<u32, (u128, u64)> = Default::default();
        for r in &outcome.records {
            if r.outcome == JobOutcome::Completed {
                let e = tenant_lat.entry(r.tenant.0).or_default();
                e.0 += r.latency().0 as u128;
                e.1 += 1;
            }
        }
        let per_tenant = outcome
            .tenants
            .iter()
            .map(|(&t, s)| TenantRow {
                tenant: t,
                submitted: s.submitted,
                admitted: s.admitted,
                rejected: s.rejected,
                completed: s.completed,
                bytes: s.bytes,
                mean_latency_ns: tenant_lat
                    .get(&t)
                    .map_or(0, |&(sum, n)| (sum / n.max(1) as u128) as u64),
            })
            .collect();
        let per_device: Vec<DeviceRow> = outcome
            .devices
            .iter()
            .map(|(&d, s)| DeviceRow {
                device: d,
                batches: s.batches,
                jobs: s.jobs,
                busy_ns: s.busy.0,
                utilization: s.utilization,
            })
            .collect();

        let goodput_gbps = if outcome.makespan.is_zero() {
            0.0
        } else {
            completed_bytes as f64 / outcome.makespan.0 as f64
        };
        ServeReport {
            policy: policy.name(),
            devices: per_device.len(),
            submitted: outcome.admission.admitted + rejected,
            admitted: outcome.admission.admitted,
            rejected,
            rejected_depth: outcome.admission.rejected_depth,
            rejected_bytes: outcome.admission.rejected_bytes,
            rejected_invalid: outcome.admission.rejected_invalid,
            completed,
            timed_out,
            cancelled,
            failed,
            completed_bytes,
            makespan: outcome.makespan,
            goodput_gbps,
            peak_queue_jobs: outcome.admission.peak_jobs,
            peak_queue_bytes: outcome.admission.peak_bytes,
            batches: per_device.iter().map(|d| d.batches).sum(),
            cmm_hits: outcome.cmm_hits,
            cmm_misses: outcome.cmm_misses,
            pool_jobs: outcome.pool_jobs,
            latency: LatencySummary::from_histogram(&latency),
            queue_wait: LatencySummary::from_histogram(&wait),
            per_tenant,
            per_device,
            records: outcome.records,
            trace: outcome.trace,
            metrics: outcome.metrics,
            payload_cache: None,
        }
    }

    /// Human-readable summary lines.
    pub fn render(&self) -> Vec<String> {
        let mut out = vec![format!(
            "serve: policy={} active devices={} — {} submitted, {} admitted, {} rejected \
             ({} depth / {} bytes / {} invalid)",
            self.policy,
            self.devices,
            self.submitted,
            self.admitted,
            self.rejected,
            self.rejected_depth,
            self.rejected_bytes,
            self.rejected_invalid
        )];
        out.push(format!(
            "jobs: {} completed, {} timed out, {} cancelled, {} failed \
             ({} batches, CMM {}/{} hit/miss, {} pool jobs)",
            self.completed,
            self.timed_out,
            self.cancelled,
            self.failed,
            self.batches,
            self.cmm_hits,
            self.cmm_misses,
            self.pool_jobs
        ));
        out.push(format!(
            "latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms \
             (queue wait p99 {:.3} ms)",
            self.latency.p50 as f64 / 1e6,
            self.latency.p95 as f64 / 1e6,
            self.latency.p99 as f64 / 1e6,
            self.latency.max as f64 / 1e6,
            self.queue_wait.p99 as f64 / 1e6
        ));
        out.push(format!(
            "goodput: {:.4} GB/s over {:.3} ms virtual makespan ({} completed bytes)",
            self.goodput_gbps,
            self.makespan.0 as f64 / 1e6,
            self.completed_bytes
        ));
        for t in &self.per_tenant {
            out.push(format!(
                "tenant {:>3}: {:>4} submitted, {:>4} completed, {:>4} rejected, \
                 {:>10} bytes, mean latency {:.3} ms",
                t.tenant,
                t.submitted,
                t.completed,
                t.rejected,
                t.bytes,
                t.mean_latency_ns as f64 / 1e6
            ));
        }
        for d in &self.per_device {
            out.push(format!(
                "device {:>2}: {:>4} batches, {:>4} jobs, busy {:.3} ms \
                 (utilization {:.1}%)",
                d.device,
                d.batches,
                d.jobs,
                d.busy_ns as f64 / 1e6,
                d.utilization * 100.0
            ));
        }
        if let Some(c) = &self.payload_cache {
            out.push(format!(
                "payload cache: refactorings {}/{} bytes ({} evicted), \
                 plans {}/{} bytes ({} evicted), plan hits/misses {}/{}",
                c.retrieval_bytes,
                c.retrieval_budget_bytes,
                c.retrieval_evictions,
                c.plan_bytes,
                c.plan_budget_bytes,
                c.plan_evictions,
                c.plan_hits,
                c.plan_misses
            ));
        }
        out
    }

    /// The envelope `ok` flag: the zero-lost-jobs invariants hold —
    /// every submission and every admitted job is accounted for once.
    pub fn ok(&self) -> bool {
        self.submitted == self.admitted + self.rejected
            && self.admitted == self.completed + self.timed_out + self.cancelled + self.failed
    }

    /// Serialize to JSON. Deterministic: virtual-time quantities only,
    /// fixed float precision, ordered maps behind every array. The
    /// header is the shared `hpdr-verify` envelope
    /// (`{"schema":"hpdr-serve/v1","ok":<bool>, ...}`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('\n');
        s.push_str(&format!("  \"policy\": \"{}\",\n", self.policy));
        s.push_str(&format!("  \"devices\": {},\n", self.devices));
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str(&format!("  \"admitted\": {},\n", self.admitted));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"rejected_depth\": {},\n", self.rejected_depth));
        s.push_str(&format!("  \"rejected_bytes\": {},\n", self.rejected_bytes));
        s.push_str(&format!(
            "  \"rejected_invalid\": {},\n",
            self.rejected_invalid
        ));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"timed_out\": {},\n", self.timed_out));
        s.push_str(&format!("  \"cancelled\": {},\n", self.cancelled));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!(
            "  \"completed_bytes\": {},\n",
            self.completed_bytes
        ));
        s.push_str(&format!("  \"makespan_ns\": {},\n", self.makespan.0));
        s.push_str(&format!("  \"goodput_gbps\": {:.6},\n", self.goodput_gbps));
        s.push_str(&format!(
            "  \"peak_queue_jobs\": {},\n",
            self.peak_queue_jobs
        ));
        s.push_str(&format!(
            "  \"peak_queue_bytes\": {},\n",
            self.peak_queue_bytes
        ));
        s.push_str(&format!("  \"batches\": {},\n", self.batches));
        s.push_str(&format!("  \"cmm_hits\": {},\n", self.cmm_hits));
        s.push_str(&format!("  \"cmm_misses\": {},\n", self.cmm_misses));
        s.push_str(&format!("  \"latency\": {},\n", self.latency.to_json()));
        s.push_str(&format!(
            "  \"queue_wait\": {},\n",
            self.queue_wait.to_json()
        ));
        s.push_str("  \"per_tenant\": [");
        for (i, t) in self.per_tenant.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"tenant\":{},\"submitted\":{},\"admitted\":{},\"rejected\":{},\
                 \"completed\":{},\"bytes\":{},\"mean_latency_ns\":{}}}",
                t.tenant,
                t.submitted,
                t.admitted,
                t.rejected,
                t.completed,
                t.bytes,
                t.mean_latency_ns
            ));
        }
        s.push_str("\n  ],\n");
        s.push_str("  \"per_device\": [");
        for (i, d) in self.per_device.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"device\":{},\"batches\":{},\"jobs\":{},\"busy_ns\":{},\
                 \"utilization\":{:.6}}}",
                d.device, d.batches, d.jobs, d.busy_ns, d.utilization
            ));
        }
        s.push_str("\n  ]");
        if let Some(c) = &self.payload_cache {
            s.push_str(&format!(
                ",\n  \"payload_cache\": {{\"retrieval_bytes\":{},\
                 \"retrieval_budget_bytes\":{},\"retrieval_evictions\":{},\
                 \"plan_bytes\":{},\"plan_budget_bytes\":{},\"plan_evictions\":{},\
                 \"plan_hits\":{},\"plan_misses\":{}}}",
                c.retrieval_bytes,
                c.retrieval_budget_bytes,
                c.retrieval_evictions,
                c.plan_bytes,
                c.plan_budget_bytes,
                c.plan_evictions,
                c.plan_hits,
                c.plan_misses
            ));
        }
        if let Some(reg) = &self.metrics {
            // Embed the registry's own schema-validated document,
            // re-indented two spaces (same trick as the loadgen report).
            let metrics = reg.to_json();
            s.push_str(",\n  \"metrics\": ");
            s.push_str(&metrics.trim_end().replace('\n', "\n  "));
        }
        s.push('\n');
        let mut doc = hpdr_verify::envelope::wrap(SERVE_SCHEMA, self.ok(), &s);
        doc.push('\n');
        doc
    }
}

/// Extract the first `"key": <integer>` in `json` (top-level counters
/// precede the nested arrays in reports we emit).
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validate a serve-report JSON document: schema id, required fields,
/// and the zero-lost-jobs invariant. Accepts both the envelope header
/// (`{"schema":"hpdr-serve/v1","ok":...`) and the legacy pretty header
/// (`"schema": "hpdr-serve/v1"`), so reports written before the
/// envelope migration keep validating.
pub fn validate_serve_json(json: &str) -> Result<(), String> {
    let envelope = format!("\"schema\":\"{SERVE_SCHEMA}\",\"ok\":");
    let legacy = format!("\"schema\": \"{SERVE_SCHEMA}\"");
    if !json.contains(&envelope) && !json.contains(&legacy) {
        return Err(format!("missing schema id {SERVE_SCHEMA}"));
    }
    let field = |k: &str| json_u64(json, k).ok_or_else(|| format!("missing field '{k}'"));
    let submitted = field("submitted")?;
    let admitted = field("admitted")?;
    let rejected = field("rejected")?;
    let completed = field("completed")?;
    let timed_out = field("timed_out")?;
    let cancelled = field("cancelled")?;
    let failed = field("failed")?;
    for k in ["makespan_ns", "goodput_gbps", "peak_queue_jobs"] {
        if !json.contains(&format!("\"{k}\"")) {
            return Err(format!("missing field '{k}'"));
        }
    }
    if submitted != admitted + rejected {
        return Err(format!(
            "lost submissions: submitted {submitted} != admitted {admitted} + rejected {rejected}"
        ));
    }
    let terminal = completed + timed_out + cancelled + failed;
    if admitted != terminal {
        return Err(format!(
            "lost jobs: admitted {admitted} != completed {completed} + timed_out {timed_out} \
             + cancelled {cancelled} + failed {failed}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json(submitted: u64, admitted: u64, completed: u64) -> String {
        format!(
            "{{\n  \"schema\": \"{SERVE_SCHEMA}\",\n  \"submitted\": {submitted},\n  \
             \"admitted\": {admitted},\n  \"rejected\": {},\n  \"completed\": {completed},\n  \
             \"timed_out\": 0,\n  \"cancelled\": 0,\n  \"failed\": 0,\n  \
             \"makespan_ns\": 10,\n  \"goodput_gbps\": 1.0,\n  \"peak_queue_jobs\": 1\n}}\n",
            submitted - admitted
        )
    }

    #[test]
    fn validator_accepts_balanced_report() {
        validate_serve_json(&sample_json(10, 8, 8)).unwrap();
    }

    #[test]
    fn validator_rejects_lost_jobs() {
        let err = validate_serve_json(&sample_json(10, 8, 7)).unwrap_err();
        assert!(err.contains("lost jobs"), "{err}");
    }

    #[test]
    fn validator_rejects_wrong_schema() {
        let json = sample_json(1, 1, 1).replace("hpdr-serve/v1", "hpdr-serve/v0");
        assert!(validate_serve_json(&json).is_err());
    }

    #[test]
    fn json_u64_parses_first_occurrence() {
        let json = "{\"a\": 42, \"b\":7, \"a\": 9}";
        assert_eq!(json_u64(json, "a"), Some(42));
        assert_eq!(json_u64(json, "b"), Some(7));
        assert_eq!(json_u64(json, "c"), None);
    }
}
