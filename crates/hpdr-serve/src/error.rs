//! Typed serving errors — most importantly the backpressure variants.
//!
//! Submissions against a full queue are *rejected immediately* with a
//! structured reason; the scheduler never blocks a client and never
//! drops a job silently. Every rejected job is visible in the
//! [`crate::report::ServeReport`] counters.

use hpdr_core::HpdrError;
use std::fmt;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The pending-job queue is at its depth limit (backpressure).
    QueueFull { depth: usize, limit: usize },
    /// Admitting the job would exceed the queued-byte budget
    /// (backpressure on payload size, not job count).
    BudgetExceeded {
        queued_bytes: u64,
        job_bytes: u64,
        budget_bytes: u64,
    },
    /// The request itself is malformed (empty payload, bad codec…).
    InvalidJob(String),
    /// A job script line could not be parsed.
    Script(String),
}

impl ServeError {
    /// Whether this is a backpressure rejection (retriable later) as
    /// opposed to a permanently invalid request.
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            ServeError::QueueFull { .. } | ServeError::BudgetExceeded { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth, limit } => {
                write!(f, "queue full: {depth} jobs pending (limit {limit})")
            }
            ServeError::BudgetExceeded {
                queued_bytes,
                job_bytes,
                budget_bytes,
            } => write!(
                f,
                "byte budget exceeded: {queued_bytes} queued + {job_bytes} requested \
                 > {budget_bytes} budget"
            ),
            ServeError::InvalidJob(m) => write!(f, "invalid job: {m}"),
            ServeError::Script(m) => write!(f, "bad job script: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for HpdrError {
    fn from(e: ServeError) -> HpdrError {
        HpdrError::InvalidArgument(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_classification() {
        assert!(ServeError::QueueFull { depth: 8, limit: 8 }.is_backpressure());
        assert!(ServeError::BudgetExceeded {
            queued_bytes: 10,
            job_bytes: 5,
            budget_bytes: 12
        }
        .is_backpressure());
        assert!(!ServeError::InvalidJob("x".into()).is_backpressure());
    }

    #[test]
    fn display_names_the_limits() {
        let e = ServeError::QueueFull {
            depth: 32,
            limit: 32,
        };
        assert!(e.to_string().contains("32"));
        let e: HpdrError = e.into();
        assert!(matches!(e, HpdrError::InvalidArgument(_)));
    }
}
