//! Byte-budget admission control with bounded-queue backpressure.
//!
//! Two gauges guard the pending queue: job depth and queued
//! (uncompressed-side) bytes. A submission that would push either gauge
//! past its limit is rejected *immediately* with a typed
//! [`ServeError`] — the scheduler never blocks a client and never
//! drops silently. Gauges release when a job leaves the queue for any
//! reason (dispatch, deadline expiry, cancellation).

use crate::error::ServeError;

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum jobs pending in the queue.
    pub max_queued_jobs: usize,
    /// Maximum uncompressed-side bytes pending in the queue.
    pub max_queued_bytes: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queued_jobs: 256,
            max_queued_bytes: 64 << 20,
        }
    }
}

/// The admission controller: current gauges, peaks, and counters.
#[derive(Debug, Clone, Default)]
pub struct Admission {
    cfg: AdmissionConfig,
    queued_jobs: usize,
    queued_bytes: u64,
    pub peak_jobs: usize,
    pub peak_bytes: u64,
    pub admitted: u64,
    pub rejected_depth: u64,
    pub rejected_bytes: u64,
    /// Malformed submissions (e.g. empty payload) bounced before the
    /// gauges are consulted.
    pub rejected_invalid: u64,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            ..Admission::default()
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    pub fn queued_jobs(&self) -> usize {
        self.queued_jobs
    }

    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Total rejections (backpressure kinds + invalid submissions).
    pub fn rejected(&self) -> u64 {
        self.rejected_depth + self.rejected_bytes + self.rejected_invalid
    }

    /// Count a submission bounced for being malformed (it never touched
    /// the queue gauges, so there is nothing to release).
    pub fn reject_invalid(&mut self) {
        self.rejected_invalid += 1;
    }

    /// Would a job of `bytes` pass admission right now? Pure probe: no
    /// gauges or counters move. `bytes == 0` is invalid and never
    /// admits. Used by cluster placement to spill work to a shard that
    /// will actually accept it.
    pub fn would_admit(&self, bytes: u64) -> bool {
        bytes > 0
            && self.queued_jobs < self.cfg.max_queued_jobs
            && self.queued_bytes + bytes <= self.cfg.max_queued_bytes
    }

    /// Try to admit a job of `bytes`; on success the gauges include it
    /// until [`release`](Admission::release) is called.
    pub fn try_admit(&mut self, bytes: u64) -> Result<(), ServeError> {
        if self.queued_jobs >= self.cfg.max_queued_jobs {
            self.rejected_depth += 1;
            return Err(ServeError::QueueFull {
                depth: self.queued_jobs,
                limit: self.cfg.max_queued_jobs,
            });
        }
        if self.queued_bytes + bytes > self.cfg.max_queued_bytes {
            self.rejected_bytes += 1;
            return Err(ServeError::BudgetExceeded {
                queued_bytes: self.queued_bytes,
                job_bytes: bytes,
                budget_bytes: self.cfg.max_queued_bytes,
            });
        }
        self.queued_jobs += 1;
        self.queued_bytes += bytes;
        self.admitted += 1;
        self.peak_jobs = self.peak_jobs.max(self.queued_jobs);
        self.peak_bytes = self.peak_bytes.max(self.queued_bytes);
        Ok(())
    }

    /// A job left the queue (dispatched, expired, or cancelled).
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(self.queued_jobs > 0, "release without admit");
        self.queued_jobs = self.queued_jobs.saturating_sub(1);
        self.queued_bytes = self.queued_bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Admission {
        Admission::new(AdmissionConfig {
            max_queued_jobs: 2,
            max_queued_bytes: 100,
        })
    }

    #[test]
    fn depth_limit_rejects_with_queue_full() {
        let mut a = tiny();
        a.try_admit(10).unwrap();
        a.try_admit(10).unwrap();
        match a.try_admit(10) {
            Err(ServeError::QueueFull { depth: 2, limit: 2 }) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(a.rejected(), 1);
        assert_eq!(a.admitted, 2);
    }

    #[test]
    fn byte_budget_rejects_oversized() {
        let mut a = tiny();
        a.try_admit(80).unwrap();
        match a.try_admit(30) {
            Err(ServeError::BudgetExceeded {
                queued_bytes: 80,
                job_bytes: 30,
                budget_bytes: 100,
            }) => {}
            other => panic!("{other:?}"),
        }
        // A smaller job still fits.
        a.try_admit(20).unwrap();
        assert_eq!(a.queued_bytes(), 100);
    }

    #[test]
    fn release_reopens_the_queue() {
        let mut a = tiny();
        a.try_admit(60).unwrap();
        a.try_admit(40).unwrap();
        assert!(a.try_admit(1).is_err());
        a.release(60);
        a.try_admit(50).unwrap();
        assert_eq!(a.queued_jobs(), 2);
        assert_eq!(a.queued_bytes(), 90);
    }

    #[test]
    fn peaks_track_high_water_marks() {
        let mut a = tiny();
        a.try_admit(70).unwrap();
        a.release(70);
        a.try_admit(30).unwrap();
        assert_eq!(a.peak_bytes, 70);
        assert_eq!(a.peak_jobs, 1);
    }
}
