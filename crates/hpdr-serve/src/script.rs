//! Job scripts: a line-oriented format for scripted serve runs.
//!
//! One job per line:
//!
//! ```text
//! <arrival_us> <tenant> <compress|decompress|retrieve> <codec[:param]> <side> \
//!     [tol=F] [prio=N] [deadline_us=N] [cancel_us=N]
//! ```
//!
//! `#` starts a comment; blank lines are skipped. `side` is the cube
//! edge of a synthetic Nyx-like density field (`side³` f32 values), so
//! the same script always produces the same payload bytes. Decompress
//! jobs are materialized at parse time: the field is compressed once
//! per (codec, side) and the resulting container shared across all
//! jobs that decompress it. Retrieve jobs refactor the field once per
//! (codec, side) into a progressive component set shared across every
//! tolerance; `tol=F` is the **relative** L∞ tolerance (× data range,
//! default 1e-2), and fetch plans are cached per (codec, side,
//! tolerance) so repeated fidelities across tenants are plan-cache
//! hits.

use crate::error::ServeError;
use crate::job::{JobPayload, JobRequest, ServeCodec, TenantId};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter};
use hpdr_pipeline::Container;
use hpdr_progressive::{
    plan_fetch, refactor_progressive, FetchPlan, ProgressiveConfig, Refactoring,
};
use hpdr_sim::Ns;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Deterministic dataset seed used by scripted payloads.
const DATA_SEED: u64 = 7;

/// Default relative tolerance for `retrieve` jobs without `tol=`.
pub const DEFAULT_RETRIEVE_TOL: f64 = 1e-2;

/// Payload factory with per-(side) input and per-(codec, side)
/// container caches so scripts and generators share materialization.
/// Retrieve jobs add a per-(codec, side) refactoring cache (the shared
/// coarse components) and a per-(codec, side, tolerance) plan cache
/// with hit counters.
pub struct PayloadCache {
    inputs: BTreeMap<usize, (Arc<Vec<u8>>, ArrayMeta)>,
    containers: BTreeMap<(String, usize), Arc<Container>>,
    retrievals: BTreeMap<(String, usize), Arc<Refactoring>>,
    plans: BTreeMap<(String, usize, u64), Arc<FetchPlan>>,
    /// Fetch plans served from cache (same codec, side and tolerance).
    pub plan_hits: u64,
    /// Fetch plans computed fresh.
    pub plan_misses: u64,
}

impl PayloadCache {
    pub fn new() -> PayloadCache {
        PayloadCache {
            inputs: BTreeMap::new(),
            containers: BTreeMap::new(),
            retrievals: BTreeMap::new(),
            plans: BTreeMap::new(),
            plan_hits: 0,
            plan_misses: 0,
        }
    }

    /// The synthetic input field for `side` (cached).
    pub fn input(&mut self, side: usize) -> (Arc<Vec<u8>>, ArrayMeta) {
        self.inputs
            .entry(side)
            .or_insert_with(|| {
                let data = hpdr_data::nyx_density(side, DATA_SEED);
                let meta = ArrayMeta::new(DType::F32, data.shape.clone());
                (Arc::new(data.bytes), meta)
            })
            .clone()
    }

    /// A compressed container of the `side` field under `codec`
    /// (compressed once, shared by every decompress job).
    pub fn container(
        &mut self,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<Arc<Container>, ServeError> {
        let key = (codec.label(), side);
        if let Some(c) = self.containers.get(&key) {
            return Ok(Arc::clone(c));
        }
        let (input, meta) = self.input(side);
        let stream = codec
            .reducer()
            .compress(work, &input, &meta)
            .map_err(|e| ServeError::InvalidJob(format!("pre-compress failed: {e}")))?;
        let rows = meta.shape.dims()[0];
        let container = Arc::new(Container {
            reducer: codec.name().to_string(),
            meta,
            chunks: vec![(rows, stream)],
        });
        self.containers.insert(key, Arc::clone(&container));
        Ok(container)
    }

    /// The progressive refactoring of the `side` field (refactored
    /// once per (codec, side); every tolerance shares the same
    /// `Arc`'d component set). An `mgard:<rel_eb>` codec sets the
    /// refactoring's full-precision floor; other codecs use the
    /// default.
    pub fn refactoring(
        &mut self,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<Arc<Refactoring>, ServeError> {
        let key = (codec.label(), side);
        if let Some(r) = self.retrievals.get(&key) {
            return Ok(Arc::clone(r));
        }
        let (input, meta) = self.input(side);
        let data: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
            .collect();
        let cfg = ProgressiveConfig {
            rel_bound: match codec {
                ServeCodec::Mgard { rel_eb } => rel_eb,
                _ => ProgressiveConfig::default().rel_bound,
            },
            ..ProgressiveConfig::default()
        };
        let set = refactor_progressive(work, &data, &meta.shape, &cfg)
            .map_err(|e| ServeError::InvalidJob(format!("refactoring failed: {e}")))?;
        let set = Arc::new(set);
        self.retrievals.insert(key, Arc::clone(&set));
        Ok(set)
    }

    /// A retrieval payload at relative tolerance `rel_tol` (× the
    /// field's range). Plans are cached per (codec, side, tolerance).
    pub fn retrieval(
        &mut self,
        codec: ServeCodec,
        side: usize,
        rel_tol: f64,
        work: &dyn DeviceAdapter,
    ) -> Result<JobPayload, ServeError> {
        if rel_tol <= 0.0 || !rel_tol.is_finite() {
            return Err(ServeError::InvalidJob(format!(
                "retrieve tolerance {rel_tol} must be positive"
            )));
        }
        let set = self.refactoring(codec, side, work)?;
        let tolerance = rel_tol * set.manifest.range;
        let key = (codec.label(), side, rel_tol.to_bits());
        let plan = match self.plans.get(&key) {
            Some(p) => {
                self.plan_hits += 1;
                Arc::clone(p)
            }
            None => {
                self.plan_misses += 1;
                let p = Arc::new(plan_fetch(
                    &set.manifest,
                    &vec![0; set.manifest.levels as usize],
                    tolerance,
                ));
                self.plans.insert(key, Arc::clone(&p));
                p
            }
        };
        let meta = set
            .manifest
            .meta()
            .map_err(|e| ServeError::InvalidJob(e.to_string()))?;
        Ok(JobPayload::Retrieve {
            set,
            plan,
            tolerance,
            meta,
        })
    }

    /// Build a payload for one job.
    pub fn payload(
        &mut self,
        compress: bool,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<JobPayload, ServeError> {
        if compress {
            let (input, meta) = self.input(side);
            Ok(JobPayload::Compress { input, meta })
        } else {
            Ok(JobPayload::Decompress {
                container: self.container(codec, side, work)?,
            })
        }
    }
}

impl Default for PayloadCache {
    fn default() -> Self {
        PayloadCache::new()
    }
}

/// Parse a full job script into arrival-ordered requests.
pub fn parse_script(text: &str, work: &dyn DeviceAdapter) -> Result<Vec<JobRequest>, ServeError> {
    let mut cache = PayloadCache::new();
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        jobs.push(
            parse_line(line, &mut cache, work)
                .map_err(|e| ServeError::Script(format!("line {}: {e}", lineno + 1)))?,
        );
    }
    jobs.sort_by_key(|j| j.arrival);
    Ok(jobs)
}

fn parse_line(
    line: &str,
    cache: &mut PayloadCache,
    work: &dyn DeviceAdapter,
) -> Result<JobRequest, ServeError> {
    let bad = |m: String| ServeError::Script(m);
    let mut parts = line.split_whitespace();
    let mut next = |what: &str| {
        parts
            .next()
            .ok_or_else(|| bad(format!("missing field <{what}>")))
    };
    let arrival_us: u64 = next("arrival_us")?
        .parse()
        .map_err(|_| bad("bad <arrival_us>".into()))?;
    let tenant: u32 = next("tenant")?
        .parse()
        .map_err(|_| bad("bad <tenant>".into()))?;
    let kind = next("kind")?;
    if !matches!(kind, "compress" | "decompress" | "retrieve") {
        return Err(bad(format!("unknown kind '{kind}'")));
    }
    let codec = ServeCodec::parse(next("codec")?)?;
    let side: usize = next("side")?
        .parse()
        .map_err(|_| bad("bad <side>".into()))?;
    if side == 0 || side > 64 {
        return Err(bad(format!("side {side} out of range 1..=64")));
    }

    // Options first: `tol=` feeds payload construction.
    let arrival = Ns::from_micros(arrival_us);
    let mut tol = DEFAULT_RETRIEVE_TOL;
    let mut priority = 0u8;
    let mut deadline = None;
    let mut cancel_at = None;
    for opt in parts {
        let (key, value) = opt
            .split_once('=')
            .ok_or_else(|| bad(format!("bad option '{opt}' (want key=value)")))?;
        if key == "tol" {
            if kind != "retrieve" {
                return Err(bad("tol= is only valid on retrieve jobs".into()));
            }
            tol = value
                .parse::<f64>()
                .map_err(|_| bad(format!("bad value in '{opt}'")))?;
            if tol <= 0.0 || !tol.is_finite() {
                return Err(bad(format!("tolerance {tol} must be positive")));
            }
            continue;
        }
        let num: u64 = value
            .parse()
            .map_err(|_| bad(format!("bad value in '{opt}'")))?;
        match key {
            "prio" => {
                priority = u8::try_from(num).map_err(|_| bad(format!("priority {num} > 255")))?
            }
            "deadline_us" => deadline = Some(arrival + Ns::from_micros(num)),
            "cancel_us" => cancel_at = Some(arrival + Ns::from_micros(num)),
            other => return Err(bad(format!("unknown option '{other}'"))),
        }
    }

    let payload = match kind {
        "retrieve" => cache.retrieval(codec, side, tol, work)?,
        "compress" => cache.payload(true, codec, side, work)?,
        _ => cache.payload(false, codec, side, work)?,
    };
    let mut req = JobRequest::new(TenantId(tenant), arrival, codec, payload);
    req.priority = priority;
    req.deadline = deadline;
    req.cancel_at = cancel_at;
    Ok(req)
}

/// Built-in demo script (used by `hpdr serve` when no job file is
/// given): three tenants, mixed codecs and directions, one priority
/// job, one deadline, one cancellation, and mixed-fidelity progressive
/// retrievals (tenants 0/1/2 pull the same stored field at different
/// tolerances — same component set, different fetch plans).
pub const DEMO_SCRIPT: &str = "\
# arrival_us tenant kind codec side [tol=F] [prio=N] [deadline_us=N] [cancel_us=N]
0    0 compress   zfp:16    16
10   1 compress   mgard:1e-3 16
20   2 compress   lz4       12
30   0 decompress zfp:16    16
40   1 compress   zfp:16    16 prio=2
50   2 compress   sz:1e-3   12
55   0 retrieve   mgard:1e-5 16 tol=1e-1
60   0 compress   huffman   12
65   1 retrieve   mgard:1e-5 16 tol=1e-3
70   1 compress   zfp:16    16 deadline_us=100000
75   2 retrieve   mgard:1e-5 16 tol=1e-1
80   2 compress   lz4       12 cancel_us=1
90   0 decompress zfp:16    16
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use hpdr_core::SerialAdapter;

    fn adapter() -> SerialAdapter {
        SerialAdapter::new()
    }

    #[test]
    fn demo_script_parses() {
        let jobs = parse_script(DEMO_SCRIPT, &adapter()).unwrap();
        assert_eq!(jobs.len(), 13);
        assert_eq!(jobs[0].arrival, Ns::ZERO);
        assert_eq!(jobs[4].priority, 2);
        assert!(jobs[9].deadline.is_some());
        assert!(jobs[11].cancel_at.is_some());
        assert_eq!(jobs[3].payload.kind(), JobKind::Decompress);
        let retrieves: Vec<_> = jobs
            .iter()
            .filter(|j| j.payload.kind().name() == "retrieve")
            .collect();
        assert_eq!(retrieves.len(), 3);
    }

    #[test]
    fn retrieve_jobs_share_one_refactoring_across_tolerances() {
        // Three tenants, two fidelities, one stored field: the payload
        // cache hands every job the same Arc'd component set, and the
        // repeated tolerance is a plan-cache hit.
        let script = "\
0  0 retrieve mgard:1e-5 8 tol=1e-1
5  1 retrieve mgard:1e-5 8 tol=1e-3
10 2 retrieve mgard:1e-5 8 tol=1e-1
";
        let jobs = parse_script(script, &adapter()).unwrap();
        assert_eq!(jobs.len(), 3);
        let sets: Vec<_> = jobs
            .iter()
            .map(|j| match &j.payload {
                JobPayload::Retrieve { set, .. } => Arc::clone(set),
                other => panic!("expected retrieve payload, got {}", other.kind().name()),
            })
            .collect();
        assert!(Arc::ptr_eq(&sets[0], &sets[1]));
        assert!(Arc::ptr_eq(&sets[0], &sets[2]));
        // Loose fidelity plans strictly fewer bytes than tight.
        let plan = |j: &JobRequest| match &j.payload {
            JobPayload::Retrieve { plan, .. } => Arc::clone(plan),
            _ => unreachable!(),
        };
        assert!(plan(&jobs[0]).bytes < plan(&jobs[1]).bytes);
        // Tenants 0 and 2 asked for the same fidelity: same plan object.
        assert!(Arc::ptr_eq(&plan(&jobs[0]), &plan(&jobs[2])));
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        let work = adapter();
        let mut cache = PayloadCache::new();
        let codec = ServeCodec::parse("mgard:1e-5").unwrap();
        cache.retrieval(codec, 8, 1e-1, &work).unwrap();
        cache.retrieval(codec, 8, 1e-3, &work).unwrap();
        cache.retrieval(codec, 8, 1e-1, &work).unwrap();
        assert_eq!(cache.plan_misses, 2);
        assert_eq!(cache.plan_hits, 1);
    }

    #[test]
    fn retrieve_option_validation() {
        let work = adapter();
        // tol on a non-retrieve job is rejected.
        assert!(parse_script("0 0 compress lz4 8 tol=1e-2\n", &work).is_err());
        assert!(parse_script("0 0 retrieve mgard:1e-5 8 tol=0\n", &work).is_err());
        assert!(parse_script("0 0 retrieve mgard:1e-5 8 tol=x\n", &work).is_err());
        // Default tolerance applies when tol= is absent.
        let jobs = parse_script("0 0 retrieve mgard:1e-5 8\n", &work).unwrap();
        match &jobs[0].payload {
            JobPayload::Retrieve { set, tolerance, .. } => {
                assert!((tolerance / set.manifest.range - DEFAULT_RETRIEVE_TOL).abs() < 1e-12);
            }
            _ => panic!("expected retrieve payload"),
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let jobs = parse_script("# nothing\n\n0 0 compress lz4 8 # tail\n", &adapter()).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].payload.raw_bytes(), 8 * 8 * 8 * 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_script("0 0 compress lz4 8\n1 0 squash lz4 8\n", &adapter()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_script("0 0 compress gzip 8\n", &adapter()).is_err());
        assert!(parse_script("0 0 compress lz4 0\n", &adapter()).is_err());
        assert!(parse_script("0 0 compress lz4 8 prio=z\n", &adapter()).is_err());
    }

    #[test]
    fn decompress_payloads_share_one_container() {
        let script = "0 0 decompress lz4 8\n5 1 decompress lz4 8\n";
        let jobs = parse_script(script, &adapter()).unwrap();
        let (a, b) = (&jobs[0].payload, &jobs[1].payload);
        match (a, b) {
            (
                JobPayload::Decompress { container: ca },
                JobPayload::Decompress { container: cb },
            ) => {
                assert!(Arc::ptr_eq(ca, cb));
            }
            _ => panic!("expected decompress payloads"),
        }
    }
}
