//! Job scripts: a line-oriented format for scripted serve runs.
//!
//! One job per line:
//!
//! ```text
//! <arrival_us> <tenant> <compress|decompress> <codec[:param]> <side> \
//!     [prio=N] [deadline_us=N] [cancel_us=N]
//! ```
//!
//! `#` starts a comment; blank lines are skipped. `side` is the cube
//! edge of a synthetic Nyx-like density field (`side³` f32 values), so
//! the same script always produces the same payload bytes. Decompress
//! jobs are materialized at parse time: the field is compressed once
//! per (codec, side) and the resulting container shared across all
//! jobs that decompress it.

use crate::error::ServeError;
use crate::job::{JobPayload, JobRequest, ServeCodec, TenantId};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter};
use hpdr_pipeline::Container;
use hpdr_sim::Ns;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Deterministic dataset seed used by scripted payloads.
const DATA_SEED: u64 = 7;

/// Payload factory with per-(side) input and per-(codec, side)
/// container caches so scripts and generators share materialization.
pub struct PayloadCache {
    inputs: BTreeMap<usize, (Arc<Vec<u8>>, ArrayMeta)>,
    containers: BTreeMap<(String, usize), Arc<Container>>,
}

impl PayloadCache {
    pub fn new() -> PayloadCache {
        PayloadCache {
            inputs: BTreeMap::new(),
            containers: BTreeMap::new(),
        }
    }

    /// The synthetic input field for `side` (cached).
    pub fn input(&mut self, side: usize) -> (Arc<Vec<u8>>, ArrayMeta) {
        self.inputs
            .entry(side)
            .or_insert_with(|| {
                let data = hpdr_data::nyx_density(side, DATA_SEED);
                let meta = ArrayMeta::new(DType::F32, data.shape.clone());
                (Arc::new(data.bytes), meta)
            })
            .clone()
    }

    /// A compressed container of the `side` field under `codec`
    /// (compressed once, shared by every decompress job).
    pub fn container(
        &mut self,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<Arc<Container>, ServeError> {
        let key = (codec.label(), side);
        if let Some(c) = self.containers.get(&key) {
            return Ok(Arc::clone(c));
        }
        let (input, meta) = self.input(side);
        let stream = codec
            .reducer()
            .compress(work, &input, &meta)
            .map_err(|e| ServeError::InvalidJob(format!("pre-compress failed: {e}")))?;
        let rows = meta.shape.dims()[0];
        let container = Arc::new(Container {
            reducer: codec.name().to_string(),
            meta,
            chunks: vec![(rows, stream)],
        });
        self.containers.insert(key, Arc::clone(&container));
        Ok(container)
    }

    /// Build a payload for one job.
    pub fn payload(
        &mut self,
        compress: bool,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<JobPayload, ServeError> {
        if compress {
            let (input, meta) = self.input(side);
            Ok(JobPayload::Compress { input, meta })
        } else {
            Ok(JobPayload::Decompress {
                container: self.container(codec, side, work)?,
            })
        }
    }
}

impl Default for PayloadCache {
    fn default() -> Self {
        PayloadCache::new()
    }
}

/// Parse a full job script into arrival-ordered requests.
pub fn parse_script(text: &str, work: &dyn DeviceAdapter) -> Result<Vec<JobRequest>, ServeError> {
    let mut cache = PayloadCache::new();
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        jobs.push(
            parse_line(line, &mut cache, work)
                .map_err(|e| ServeError::Script(format!("line {}: {e}", lineno + 1)))?,
        );
    }
    jobs.sort_by_key(|j| j.arrival);
    Ok(jobs)
}

fn parse_line(
    line: &str,
    cache: &mut PayloadCache,
    work: &dyn DeviceAdapter,
) -> Result<JobRequest, ServeError> {
    let bad = |m: String| ServeError::Script(m);
    let mut parts = line.split_whitespace();
    let mut next = |what: &str| {
        parts
            .next()
            .ok_or_else(|| bad(format!("missing field <{what}>")))
    };
    let arrival_us: u64 = next("arrival_us")?
        .parse()
        .map_err(|_| bad("bad <arrival_us>".into()))?;
    let tenant: u32 = next("tenant")?
        .parse()
        .map_err(|_| bad("bad <tenant>".into()))?;
    let kind = next("kind")?;
    let compress = match kind {
        "compress" => true,
        "decompress" => false,
        other => return Err(bad(format!("unknown kind '{other}'"))),
    };
    let codec = ServeCodec::parse(next("codec")?)?;
    let side: usize = next("side")?
        .parse()
        .map_err(|_| bad("bad <side>".into()))?;
    if side == 0 || side > 64 {
        return Err(bad(format!("side {side} out of range 1..=64")));
    }

    let arrival = Ns::from_micros(arrival_us);
    let mut req = JobRequest::new(
        TenantId(tenant),
        arrival,
        codec,
        cache.payload(compress, codec, side, work)?,
    );
    for opt in parts {
        let (key, value) = opt
            .split_once('=')
            .ok_or_else(|| bad(format!("bad option '{opt}' (want key=value)")))?;
        let num: u64 = value
            .parse()
            .map_err(|_| bad(format!("bad value in '{opt}'")))?;
        match key {
            "prio" => {
                req.priority =
                    u8::try_from(num).map_err(|_| bad(format!("priority {num} > 255")))?
            }
            "deadline_us" => req.deadline = Some(arrival + Ns::from_micros(num)),
            "cancel_us" => req.cancel_at = Some(arrival + Ns::from_micros(num)),
            other => return Err(bad(format!("unknown option '{other}'"))),
        }
    }
    Ok(req)
}

/// Built-in demo script (used by `hpdr serve` when no job file is
/// given): three tenants, mixed codecs and directions, one priority
/// job, one deadline, one cancellation.
pub const DEMO_SCRIPT: &str = "\
# arrival_us tenant kind codec side [prio=N] [deadline_us=N] [cancel_us=N]
0    0 compress   zfp:16    16
10   1 compress   mgard:1e-3 16
20   2 compress   lz4       12
30   0 decompress zfp:16    16
40   1 compress   zfp:16    16 prio=2
50   2 compress   sz:1e-3   12
60   0 compress   huffman   12
70   1 compress   zfp:16    16 deadline_us=100000
80   2 compress   lz4       12 cancel_us=1
90   0 decompress zfp:16    16
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use hpdr_core::SerialAdapter;

    fn adapter() -> SerialAdapter {
        SerialAdapter::new()
    }

    #[test]
    fn demo_script_parses() {
        let jobs = parse_script(DEMO_SCRIPT, &adapter()).unwrap();
        assert_eq!(jobs.len(), 10);
        assert_eq!(jobs[0].arrival, Ns::ZERO);
        assert_eq!(jobs[4].priority, 2);
        assert!(jobs[7].deadline.is_some());
        assert!(jobs[8].cancel_at.is_some());
        assert_eq!(jobs[3].payload.kind(), JobKind::Decompress);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let jobs = parse_script("# nothing\n\n0 0 compress lz4 8 # tail\n", &adapter()).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].payload.raw_bytes(), 8 * 8 * 8 * 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_script("0 0 compress lz4 8\n1 0 squash lz4 8\n", &adapter()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_script("0 0 compress gzip 8\n", &adapter()).is_err());
        assert!(parse_script("0 0 compress lz4 0\n", &adapter()).is_err());
        assert!(parse_script("0 0 compress lz4 8 prio=z\n", &adapter()).is_err());
    }

    #[test]
    fn decompress_payloads_share_one_container() {
        let script = "0 0 decompress lz4 8\n5 1 decompress lz4 8\n";
        let jobs = parse_script(script, &adapter()).unwrap();
        let (a, b) = (&jobs[0].payload, &jobs[1].payload);
        match (a, b) {
            (
                JobPayload::Decompress { container: ca },
                JobPayload::Decompress { container: cb },
            ) => {
                assert!(Arc::ptr_eq(ca, cb));
            }
            _ => panic!("expected decompress payloads"),
        }
    }
}
