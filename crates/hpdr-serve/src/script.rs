//! Job scripts: a line-oriented format for scripted serve runs.
//!
//! One job per line:
//!
//! ```text
//! <arrival_us> <tenant> <compress|decompress|retrieve> <codec[:param]> <side> \
//!     [tol=F] [prio=N] [deadline_us=N] [cancel_us=N]
//! ```
//!
//! `#` starts a comment; blank lines are skipped. `side` is the cube
//! edge of a synthetic Nyx-like density field (`side³` f32 values), so
//! the same script always produces the same payload bytes. Decompress
//! jobs are materialized at parse time: the field is compressed once
//! per (codec, side) and the resulting container shared across all
//! jobs that decompress it. Retrieve jobs refactor the field once per
//! (codec, side) into a progressive component set shared across every
//! tolerance; `tol=F` is the **relative** L∞ tolerance (× data range,
//! default 1e-2), and fetch plans are cached per (codec, side,
//! tolerance) so repeated fidelities across tenants are plan-cache
//! hits.

use crate::error::ServeError;
use crate::job::{JobPayload, JobRequest, ServeCodec, TenantId};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter};
use hpdr_pipeline::Container;
use hpdr_progressive::{
    plan_fetch, refactor_progressive, FetchPlan, ProgressiveConfig, Refactoring,
};
use hpdr_sim::Ns;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Deterministic dataset seed used by scripted payloads.
const DATA_SEED: u64 = 7;

/// Default relative tolerance for `retrieve` jobs without `tol=`.
pub const DEFAULT_RETRIEVE_TOL: f64 = 1e-2;

/// Default byte budget for the refactoring (component-set) cache.
pub const DEFAULT_RETRIEVAL_BUDGET_BYTES: u64 = 256 << 20;

/// Default byte budget for the fetch-plan cache (costed by each plan's
/// planned fetch bytes — the memory a consumer holding the plan's
/// components would pin).
pub const DEFAULT_PLAN_BUDGET_BYTES: u64 = 64 << 20;

/// One entry of a budget-bounded cache: the shared value, its byte
/// cost, and the recency stamp LRU eviction orders by.
struct LruEntry<V> {
    value: Arc<V>,
    bytes: u64,
    stamp: u64,
}

/// Budget-bounded LRU over an ordered map. Inserting past the budget
/// evicts least-recently-stamped entries until the total cost fits
/// again; the entry being inserted always survives, so one oversized
/// item still caches (and simply owns the whole budget).
struct LruMap<K: Ord + Clone, V> {
    map: BTreeMap<K, LruEntry<V>>,
    bytes: u64,
    budget: u64,
    evictions: u64,
}

impl<K: Ord + Clone, V> LruMap<K, V> {
    fn new(budget: u64) -> LruMap<K, V> {
        LruMap {
            map: BTreeMap::new(),
            bytes: 0,
            budget,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &K, stamp: u64) -> Option<Arc<V>> {
        let e = self.map.get_mut(key)?;
        e.stamp = stamp;
        Some(Arc::clone(&e.value))
    }

    /// Residency probe: no recency stamp moves, so placement decisions
    /// don't perturb eviction order.
    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn insert(&mut self, key: K, value: Arc<V>, bytes: u64, stamp: u64) {
        if let Some(old) = self.map.insert(
            key.clone(),
            LruEntry {
                value,
                bytes,
                stamp,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        while self.bytes > self.budget && self.map.len() > 1 {
            let lru = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(k) = lru else { break };
            if let Some(e) = self.map.remove(&k) {
                self.bytes -= e.bytes;
                self.evictions += 1;
            }
        }
    }
}

/// Occupancy and eviction counters of a [`PayloadCache`], surfaced in
/// the serve report so long runs show whether the byte budgets held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Bytes currently held by the refactoring cache.
    pub retrieval_bytes: u64,
    pub retrieval_budget_bytes: u64,
    pub retrieval_evictions: u64,
    /// Bytes currently costed to the fetch-plan cache.
    pub plan_bytes: u64,
    pub plan_budget_bytes: u64,
    pub plan_evictions: u64,
    pub plan_hits: u64,
    pub plan_misses: u64,
}

/// Payload factory with per-(side) input and per-(codec, side)
/// container caches so scripts and generators share materialization.
/// Retrieve jobs add a per-(codec, side) refactoring cache (the shared
/// coarse components) and a per-(codec, side, tolerance) plan cache
/// with hit counters. Both retrieve-side caches are byte-budget LRUs:
/// long multi-field runs stay bounded instead of pinning every
/// component set ever refactored.
pub struct PayloadCache {
    inputs: BTreeMap<usize, (Arc<Vec<u8>>, ArrayMeta)>,
    containers: BTreeMap<(String, usize), Arc<Container>>,
    retrievals: LruMap<(String, usize), Refactoring>,
    plans: LruMap<(String, usize, u64), FetchPlan>,
    /// Monotone access counter stamping LRU recency.
    tick: u64,
    /// Fetch plans served from cache (same codec, side and tolerance).
    pub plan_hits: u64,
    /// Fetch plans computed fresh.
    pub plan_misses: u64,
    /// Per-tenant (plan_hits, plan_misses) split, filled by
    /// [`retrieval_for`](PayloadCache::retrieval_for).
    tenant_plan_stats: BTreeMap<u32, (u64, u64)>,
}

impl PayloadCache {
    pub fn new() -> PayloadCache {
        PayloadCache::with_budgets(DEFAULT_RETRIEVAL_BUDGET_BYTES, DEFAULT_PLAN_BUDGET_BYTES)
    }

    /// A cache with explicit byte budgets for the refactoring and plan
    /// LRUs (tests and memory-constrained embedders).
    pub fn with_budgets(retrieval_budget: u64, plan_budget: u64) -> PayloadCache {
        PayloadCache {
            inputs: BTreeMap::new(),
            containers: BTreeMap::new(),
            retrievals: LruMap::new(retrieval_budget),
            plans: LruMap::new(plan_budget),
            tick: 0,
            plan_hits: 0,
            plan_misses: 0,
            tenant_plan_stats: BTreeMap::new(),
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Current occupancy/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            retrieval_bytes: self.retrievals.bytes,
            retrieval_budget_bytes: self.retrievals.budget,
            retrieval_evictions: self.retrievals.evictions,
            plan_bytes: self.plans.bytes,
            plan_budget_bytes: self.plans.budget,
            plan_evictions: self.plans.evictions,
            plan_hits: self.plan_hits,
            plan_misses: self.plan_misses,
        }
    }

    /// The synthetic input field for `side` (cached).
    pub fn input(&mut self, side: usize) -> (Arc<Vec<u8>>, ArrayMeta) {
        self.inputs
            .entry(side)
            .or_insert_with(|| {
                let data = hpdr_data::nyx_density(side, DATA_SEED);
                let meta = ArrayMeta::new(DType::F32, data.shape.clone());
                (Arc::new(data.bytes), meta)
            })
            .clone()
    }

    /// A compressed container of the `side` field under `codec`
    /// (compressed once, shared by every decompress job).
    pub fn container(
        &mut self,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<Arc<Container>, ServeError> {
        let key = (codec.label(), side);
        if let Some(c) = self.containers.get(&key) {
            return Ok(Arc::clone(c));
        }
        let (input, meta) = self.input(side);
        let stream = codec
            .reducer()
            .compress(work, &input, &meta)
            .map_err(|e| ServeError::InvalidJob(format!("pre-compress failed: {e}")))?;
        let rows = meta.shape.dims()[0];
        let container = Arc::new(Container {
            reducer: codec.name().to_string(),
            meta,
            chunks: vec![(rows, stream)],
        });
        self.containers.insert(key, Arc::clone(&container));
        Ok(container)
    }

    /// The progressive refactoring of the `side` field (refactored
    /// once per (codec, side); every tolerance shares the same
    /// `Arc`'d component set). An `mgard:<rel_eb>` codec sets the
    /// refactoring's full-precision floor; other codecs use the
    /// default.
    pub fn refactoring(
        &mut self,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<Arc<Refactoring>, ServeError> {
        let key = (codec.label(), side);
        let stamp = self.next_stamp();
        if let Some(r) = self.retrievals.get(&key, stamp) {
            return Ok(r);
        }
        let (input, meta) = self.input(side);
        let data: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
            .collect();
        let cfg = ProgressiveConfig {
            rel_bound: match codec {
                ServeCodec::Mgard { rel_eb } => rel_eb,
                _ => ProgressiveConfig::default().rel_bound,
            },
            ..ProgressiveConfig::default()
        };
        let set = refactor_progressive(work, &data, &meta.shape, &cfg)
            .map_err(|e| ServeError::InvalidJob(format!("refactoring failed: {e}")))?;
        let set = Arc::new(set);
        let bytes = set.components.iter().map(|c| c.len() as u64).sum();
        self.retrievals.insert(key, Arc::clone(&set), bytes, stamp);
        Ok(set)
    }

    /// A retrieval payload at relative tolerance `rel_tol` (× the
    /// field's range). Plans are cached per (codec, side, tolerance).
    pub fn retrieval(
        &mut self,
        codec: ServeCodec,
        side: usize,
        rel_tol: f64,
        work: &dyn DeviceAdapter,
    ) -> Result<JobPayload, ServeError> {
        if rel_tol <= 0.0 || !rel_tol.is_finite() {
            return Err(ServeError::InvalidJob(format!(
                "retrieve tolerance {rel_tol} must be positive"
            )));
        }
        let set = self.refactoring(codec, side, work)?;
        let tolerance = rel_tol * set.manifest.range;
        let key = (codec.label(), side, rel_tol.to_bits());
        let stamp = self.next_stamp();
        let plan = match self.plans.get(&key, stamp) {
            Some(p) => {
                self.plan_hits += 1;
                p
            }
            None => {
                self.plan_misses += 1;
                let p = Arc::new(plan_fetch(
                    &set.manifest,
                    &vec![0; set.manifest.levels as usize],
                    tolerance,
                ));
                self.plans.insert(key, Arc::clone(&p), p.bytes, stamp);
                p
            }
        };
        let meta = set
            .manifest
            .meta()
            .map_err(|e| ServeError::InvalidJob(e.to_string()))?;
        Ok(JobPayload::Retrieve {
            set,
            plan,
            tolerance,
            meta,
        })
    }

    /// [`retrieval`](PayloadCache::retrieval) with per-tenant plan
    /// hit/miss attribution (the loadgen exposes these as gauges so
    /// `hpdr top` shows each tenant's plan-cache hit-rate live).
    pub fn retrieval_for(
        &mut self,
        tenant: u32,
        codec: ServeCodec,
        side: usize,
        rel_tol: f64,
        work: &dyn DeviceAdapter,
    ) -> Result<JobPayload, ServeError> {
        let (hits, misses) = (self.plan_hits, self.plan_misses);
        let payload = self.retrieval(codec, side, rel_tol, work)?;
        let t = self.tenant_plan_stats.entry(tenant).or_default();
        t.0 += self.plan_hits - hits;
        t.1 += self.plan_misses - misses;
        Ok(payload)
    }

    /// Per-tenant `(plan_hits, plan_misses)` recorded via
    /// [`retrieval_for`](PayloadCache::retrieval_for).
    pub fn tenant_plan_stats(&self) -> &BTreeMap<u32, (u64, u64)> {
        &self.tenant_plan_stats
    }

    /// Is the compressed container for (codec, side) resident here?
    /// Pure residency probe for locality-aware placement.
    pub fn container_resident(&self, codec: ServeCodec, side: usize) -> bool {
        self.containers.contains_key(&(codec.label(), side))
    }

    /// Is the progressive component set for (codec, side) resident?
    /// Does not touch LRU recency.
    pub fn refactoring_resident(&self, codec: ServeCodec, side: usize) -> bool {
        self.retrievals.contains(&(codec.label(), side))
    }

    /// Admit an already-materialized container (a remote fetch landing
    /// on this node): subsequent jobs for (codec, side) are local hits.
    pub fn admit_container(&mut self, codec: ServeCodec, side: usize, container: Arc<Container>) {
        self.containers
            .entry((codec.label(), side))
            .or_insert(container);
    }

    /// Admit an already-materialized component set fetched from a
    /// remote node, costed into the refactoring LRU like a local one.
    pub fn admit_refactoring(&mut self, codec: ServeCodec, side: usize, set: Arc<Refactoring>) {
        let key = (codec.label(), side);
        if self.retrievals.contains(&key) {
            return;
        }
        let stamp = self.next_stamp();
        let bytes = set.components.iter().map(|c| c.len() as u64).sum();
        self.retrievals.insert(key, set, bytes, stamp);
    }

    /// Build a payload for one job.
    pub fn payload(
        &mut self,
        compress: bool,
        codec: ServeCodec,
        side: usize,
        work: &dyn DeviceAdapter,
    ) -> Result<JobPayload, ServeError> {
        if compress {
            let (input, meta) = self.input(side);
            Ok(JobPayload::Compress { input, meta })
        } else {
            Ok(JobPayload::Decompress {
                container: self.container(codec, side, work)?,
            })
        }
    }
}

impl Default for PayloadCache {
    fn default() -> Self {
        PayloadCache::new()
    }
}

/// Parse a full job script into arrival-ordered requests.
pub fn parse_script(text: &str, work: &dyn DeviceAdapter) -> Result<Vec<JobRequest>, ServeError> {
    let mut cache = PayloadCache::new();
    parse_script_with(text, work, &mut cache)
}

/// [`parse_script`] with a caller-owned [`PayloadCache`], so the caller
/// can read the cache's occupancy/eviction stats afterwards (the serve
/// CLI surfaces them in the report) or share materialization across
/// scripts.
pub fn parse_script_with(
    text: &str,
    work: &dyn DeviceAdapter,
    cache: &mut PayloadCache,
) -> Result<Vec<JobRequest>, ServeError> {
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        jobs.push(
            parse_line(line, cache, work)
                .map_err(|e| ServeError::Script(format!("line {}: {e}", lineno + 1)))?,
        );
    }
    jobs.sort_by_key(|j| j.arrival);
    Ok(jobs)
}

fn parse_line(
    line: &str,
    cache: &mut PayloadCache,
    work: &dyn DeviceAdapter,
) -> Result<JobRequest, ServeError> {
    let bad = |m: String| ServeError::Script(m);
    let mut parts = line.split_whitespace();
    let mut next = |what: &str| {
        parts
            .next()
            .ok_or_else(|| bad(format!("missing field <{what}>")))
    };
    let arrival_us: u64 = next("arrival_us")?
        .parse()
        .map_err(|_| bad("bad <arrival_us>".into()))?;
    let tenant: u32 = next("tenant")?
        .parse()
        .map_err(|_| bad("bad <tenant>".into()))?;
    let kind = next("kind")?;
    if !matches!(kind, "compress" | "decompress" | "retrieve") {
        return Err(bad(format!("unknown kind '{kind}'")));
    }
    let codec = ServeCodec::parse(next("codec")?)?;
    let side: usize = next("side")?
        .parse()
        .map_err(|_| bad("bad <side>".into()))?;
    if side == 0 || side > 64 {
        return Err(bad(format!("side {side} out of range 1..=64")));
    }

    // Options first: `tol=` feeds payload construction.
    let arrival = Ns::from_micros(arrival_us);
    let mut tol = DEFAULT_RETRIEVE_TOL;
    let mut priority = 0u8;
    let mut deadline = None;
    let mut cancel_at = None;
    for opt in parts {
        let (key, value) = opt
            .split_once('=')
            .ok_or_else(|| bad(format!("bad option '{opt}' (want key=value)")))?;
        if key == "tol" {
            if kind != "retrieve" {
                return Err(bad("tol= is only valid on retrieve jobs".into()));
            }
            tol = value
                .parse::<f64>()
                .map_err(|_| bad(format!("bad value in '{opt}'")))?;
            if tol <= 0.0 || !tol.is_finite() {
                return Err(bad(format!("tolerance {tol} must be positive")));
            }
            continue;
        }
        let num: u64 = value
            .parse()
            .map_err(|_| bad(format!("bad value in '{opt}'")))?;
        match key {
            "prio" => {
                priority = u8::try_from(num).map_err(|_| bad(format!("priority {num} > 255")))?
            }
            "deadline_us" => deadline = Some(arrival + Ns::from_micros(num)),
            "cancel_us" => cancel_at = Some(arrival + Ns::from_micros(num)),
            other => return Err(bad(format!("unknown option '{other}'"))),
        }
    }

    let payload = match kind {
        "retrieve" => cache.retrieval(codec, side, tol, work)?,
        "compress" => cache.payload(true, codec, side, work)?,
        _ => cache.payload(false, codec, side, work)?,
    };
    let mut req = JobRequest::new(TenantId(tenant), arrival, codec, payload);
    req.priority = priority;
    req.deadline = deadline;
    req.cancel_at = cancel_at;
    Ok(req)
}

/// Built-in demo script (used by `hpdr serve` when no job file is
/// given): three tenants, mixed codecs and directions, one priority
/// job, one deadline, one cancellation, and mixed-fidelity progressive
/// retrievals (tenants 0/1/2 pull the same stored field at different
/// tolerances — same component set, different fetch plans).
pub const DEMO_SCRIPT: &str = "\
# arrival_us tenant kind codec side [tol=F] [prio=N] [deadline_us=N] [cancel_us=N]
0    0 compress   zfp:16    16
10   1 compress   mgard:1e-3 16
20   2 compress   lz4       12
30   0 decompress zfp:16    16
40   1 compress   zfp:16    16 prio=2
50   2 compress   sz:1e-3   12
55   0 retrieve   mgard:1e-5 16 tol=1e-1
60   0 compress   huffman   12
65   1 retrieve   mgard:1e-5 16 tol=1e-3
70   1 compress   zfp:16    16 deadline_us=100000
75   2 retrieve   mgard:1e-5 16 tol=1e-1
80   2 compress   lz4       12 cancel_us=1
90   0 decompress zfp:16    16
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use hpdr_core::SerialAdapter;

    fn adapter() -> SerialAdapter {
        SerialAdapter::new()
    }

    #[test]
    fn demo_script_parses() {
        let jobs = parse_script(DEMO_SCRIPT, &adapter()).unwrap();
        assert_eq!(jobs.len(), 13);
        assert_eq!(jobs[0].arrival, Ns::ZERO);
        assert_eq!(jobs[4].priority, 2);
        assert!(jobs[9].deadline.is_some());
        assert!(jobs[11].cancel_at.is_some());
        assert_eq!(jobs[3].payload.kind(), JobKind::Decompress);
        let retrieves: Vec<_> = jobs
            .iter()
            .filter(|j| j.payload.kind().name() == "retrieve")
            .collect();
        assert_eq!(retrieves.len(), 3);
    }

    #[test]
    fn retrieve_jobs_share_one_refactoring_across_tolerances() {
        // Three tenants, two fidelities, one stored field: the payload
        // cache hands every job the same Arc'd component set, and the
        // repeated tolerance is a plan-cache hit.
        let script = "\
0  0 retrieve mgard:1e-5 8 tol=1e-1
5  1 retrieve mgard:1e-5 8 tol=1e-3
10 2 retrieve mgard:1e-5 8 tol=1e-1
";
        let jobs = parse_script(script, &adapter()).unwrap();
        assert_eq!(jobs.len(), 3);
        let sets: Vec<_> = jobs
            .iter()
            .map(|j| match &j.payload {
                JobPayload::Retrieve { set, .. } => Arc::clone(set),
                other => panic!("expected retrieve payload, got {}", other.kind().name()),
            })
            .collect();
        assert!(Arc::ptr_eq(&sets[0], &sets[1]));
        assert!(Arc::ptr_eq(&sets[0], &sets[2]));
        // Loose fidelity plans strictly fewer bytes than tight.
        let plan = |j: &JobRequest| match &j.payload {
            JobPayload::Retrieve { plan, .. } => Arc::clone(plan),
            _ => unreachable!(),
        };
        assert!(plan(&jobs[0]).bytes < plan(&jobs[1]).bytes);
        // Tenants 0 and 2 asked for the same fidelity: same plan object.
        assert!(Arc::ptr_eq(&plan(&jobs[0]), &plan(&jobs[2])));
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        let work = adapter();
        let mut cache = PayloadCache::new();
        let codec = ServeCodec::parse("mgard:1e-5").unwrap();
        cache.retrieval(codec, 8, 1e-1, &work).unwrap();
        cache.retrieval(codec, 8, 1e-3, &work).unwrap();
        cache.retrieval(codec, 8, 1e-1, &work).unwrap();
        assert_eq!(cache.plan_misses, 2);
        assert_eq!(cache.plan_hits, 1);
    }

    #[test]
    fn lru_map_evicts_least_recent_and_counts() {
        let mut m: LruMap<u32, u32> = LruMap::new(10);
        m.insert(1, Arc::new(10), 4, 1);
        m.insert(2, Arc::new(20), 4, 2);
        assert_eq!(m.bytes, 8);
        // Touch 1 so 2 becomes the least-recently-used entry.
        assert!(m.get(&1, 3).is_some());
        m.insert(3, Arc::new(30), 4, 4);
        assert_eq!(m.evictions, 1);
        assert!(m.get(&2, 5).is_none(), "LRU entry 2 must be evicted");
        assert!(m.get(&1, 6).is_some());
        assert!(m.get(&3, 7).is_some());
        assert_eq!(m.bytes, 8);
        // An oversized entry still caches: everything else evicts, the
        // newcomer survives.
        m.insert(4, Arc::new(40), 100, 8);
        assert!(m.get(&4, 9).is_some());
        assert_eq!(m.map.len(), 1);
        assert_eq!(m.bytes, 100);
        assert_eq!(m.evictions, 3);
        // Re-inserting an existing key replaces its cost, not adds.
        m.insert(4, Arc::new(41), 7, 10);
        assert_eq!(m.bytes, 7);
    }

    #[test]
    fn payload_cache_budget_bounds_refactorings() {
        let work = adapter();
        // 1-byte retrieval budget: every new component set evicts the
        // previous one; plans keep their own (ample) budget.
        let mut cache = PayloadCache::with_budgets(1, DEFAULT_PLAN_BUDGET_BYTES);
        let codec = ServeCodec::parse("mgard:1e-5").unwrap();
        let a1 = cache.refactoring(codec, 8, &work).unwrap();
        cache.refactoring(codec, 10, &work).unwrap();
        let s = cache.stats();
        assert_eq!(s.retrieval_evictions, 1, "{s:?}");
        assert!(s.retrieval_bytes > 0);
        // The evicted side recomputes: a fresh allocation, not the old Arc.
        let a2 = cache.refactoring(codec, 8, &work).unwrap();
        assert!(!Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.stats().retrieval_evictions, 2);
        // Within budget nothing evicts and the Arc is shared.
        let mut roomy = PayloadCache::new();
        let b1 = roomy.refactoring(codec, 8, &work).unwrap();
        let b2 = roomy.refactoring(codec, 8, &work).unwrap();
        assert!(Arc::ptr_eq(&b1, &b2));
        assert_eq!(roomy.stats().retrieval_evictions, 0);
    }

    #[test]
    fn parse_script_with_surfaces_cache_stats() {
        let mut cache = PayloadCache::new();
        let jobs = parse_script_with(DEMO_SCRIPT, &adapter(), &mut cache).unwrap();
        assert_eq!(jobs.len(), 13);
        let s = cache.stats();
        assert_eq!(s.plan_misses, 2, "{s:?}"); // tol=1e-1 and tol=1e-3
        assert_eq!(s.plan_hits, 1, "{s:?}"); // repeated tol=1e-1
        assert!(s.retrieval_bytes > 0);
        assert!(s.plan_bytes > 0);
        assert_eq!(s.retrieval_evictions + s.plan_evictions, 0);
    }

    #[test]
    fn retrieve_option_validation() {
        let work = adapter();
        // tol on a non-retrieve job is rejected.
        assert!(parse_script("0 0 compress lz4 8 tol=1e-2\n", &work).is_err());
        assert!(parse_script("0 0 retrieve mgard:1e-5 8 tol=0\n", &work).is_err());
        assert!(parse_script("0 0 retrieve mgard:1e-5 8 tol=x\n", &work).is_err());
        // Default tolerance applies when tol= is absent.
        let jobs = parse_script("0 0 retrieve mgard:1e-5 8\n", &work).unwrap();
        match &jobs[0].payload {
            JobPayload::Retrieve { set, tolerance, .. } => {
                assert!((tolerance / set.manifest.range - DEFAULT_RETRIEVE_TOL).abs() < 1e-12);
            }
            _ => panic!("expected retrieve payload"),
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let jobs = parse_script("# nothing\n\n0 0 compress lz4 8 # tail\n", &adapter()).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].payload.raw_bytes(), 8 * 8 * 8 * 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_script("0 0 compress lz4 8\n1 0 squash lz4 8\n", &adapter()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_script("0 0 compress gzip 8\n", &adapter()).is_err());
        assert!(parse_script("0 0 compress lz4 0\n", &adapter()).is_err());
        assert!(parse_script("0 0 compress lz4 8 prio=z\n", &adapter()).is_err());
    }

    #[test]
    fn decompress_payloads_share_one_container() {
        let script = "0 0 decompress lz4 8\n5 1 decompress lz4 8\n";
        let jobs = parse_script(script, &adapter()).unwrap();
        let (a, b) = (&jobs[0].payload, &jobs[1].payload);
        match (a, b) {
            (
                JobPayload::Decompress { container: ca },
                JobPayload::Decompress { container: cb },
            ) => {
                assert!(Arc::ptr_eq(ca, cb));
            }
            _ => panic!("expected decompress payloads"),
        }
    }
}
