//! hpdr-serve: a multi-tenant reduction job scheduler.
//!
//! This crate turns the HPDR pipeline into a *service*: many concurrent
//! compress/decompress jobs (codec × error bound × shape), admitted
//! under a byte-budget admission controller with bounded-queue
//! backpressure, batched into shared pipeline launches (continuous
//! batching over [`hpdr_pipeline::run_batch`], reusing CMM context
//! memory per device), and dispatched across the simulated multi-GPU
//! device pool with per-tenant fair scheduling, priorities, deadlines
//! and cooperative cancellation.
//!
//! Everything is driven by virtual time ([`hpdr_sim::Ns`]): per-job
//! latency and queue wait are derived from trace spans, and a full run
//! serializes to a schema-validated, byte-reproducible
//! [`ServeReport`]. The [`loadgen`] module generates deterministic
//! seeded workloads and reports p50/p95/p99 latency, goodput, and
//! rejection rate, plus a batched-vs-serial scheduler microbench.
//!
//! Module map:
//! - [`job`] — job model: tenants, codecs, payloads, outcomes.
//! - [`admission`] — byte-budget + depth admission control.
//! - [`scheduler`] — the deterministic event-loop scheduler.
//! - [`report`] — `hpdr-serve/v1` JSON reports and their validator.
//! - [`histogram`] — bounded-memory latency quantile sketch.
//! - [`script`] — line-oriented job scripts (`hpdr serve --jobs`).
//! - [`loadgen`] — seeded open/closed-loop workload generation.

pub mod admission;
pub mod error;
pub mod histogram;
pub mod job;
pub mod loadgen;
pub mod report;
pub mod scheduler;
pub mod script;

pub use admission::{Admission, AdmissionConfig};
pub use error::ServeError;
pub use histogram::{exact_quantile, StreamingHistogram};
pub use job::{
    CancelToken, JobId, JobKind, JobOutcome, JobPayload, JobRecord, JobRequest, ServeCodec,
    TenantId,
};
pub use loadgen::{
    run_loadgen, validate_loadgen_json, LoadgenOptions, LoadgenReport, LOADGEN_SCHEMA,
};
pub use report::{validate_serve_json, LatencySummary, ServeReport, SERVE_SCHEMA};
pub use scheduler::{
    serve, JobSource, Policy, Scheduler, ServeConfig, ServeOutcome, VecSource, NODE_FAILURE,
};
pub use script::{parse_script, parse_script_with, CacheStats, PayloadCache, DEMO_SCRIPT};

// Metrics types callers need to configure `ServeConfig::metrics` and
// consume `ServeReport::metrics` without a direct hpdr-metrics dep.
pub use hpdr_metrics::{
    validate_metrics_json, MetricsConfig, Registry, SloAlert, SloConfig, METRICS_SCHEMA,
};

// Flight-recorder types callers need to configure `ServeConfig::flight`
// and consume `ServeOutcome::flight` without a direct hpdr-flight dep.
pub use hpdr_flight::{FlightConfig, FlightLog, TraceContext};
