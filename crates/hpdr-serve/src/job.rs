//! Job model: what a tenant submits and what the scheduler tracks.
//!
//! All timing is **virtual** ([`Ns`]): arrivals, deadlines and
//! cancellations are instants on the same clock the device simulator
//! charges, which is what makes a whole serve run — and its report —
//! deterministic for a given seed and job stream.

use crate::error::ServeError;
use hpdr_baselines::{Lz4Reducer, SzConfig, SzReducer};
use hpdr_core::{fnv1a, ArrayMeta, ContextKey, Reducer};
use hpdr_huffman::ByteHuffmanReducer;
use hpdr_mgard::{MgardConfig, MgardReducer};
use hpdr_pipeline::Container;
use hpdr_progressive::{FetchPlan, Refactoring};
use hpdr_sim::Ns;
use hpdr_zfp::{ZfpConfig, ZfpReducer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Tenant identity (fair-share accounting key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// Scheduler-assigned job identity (submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Direction of a reduction job. `Retrieve` carries its tolerance (so
/// records show the requested fidelity); batching compatibility is by
/// [`JobKind::name`], so mixed-tolerance retrievals fold into one
/// shared launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    Compress,
    Decompress,
    /// Progressive retrieval at an absolute L∞ tolerance.
    Retrieve {
        tolerance: f64,
    },
}

impl JobKind {
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Compress => "compress",
            JobKind::Decompress => "decompress",
            JobKind::Retrieve { .. } => "retrieve",
        }
    }
}

/// A configured codec for a serve job. Mirrors the facade crate's codec
/// registry (`hpdr::Codec`) without depending on it — the facade depends
/// on this crate for the CLI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeCodec {
    Mgard { rel_eb: f64 },
    Zfp { rate: u32 },
    Huffman,
    Sz { rel_eb: f64 },
    Lz4,
}

impl ServeCodec {
    /// Stream-registry name (matches `hpdr::Codec::name`).
    pub fn name(self) -> &'static str {
        match self {
            ServeCodec::Mgard { .. } => "mgard-x",
            ServeCodec::Zfp { .. } => "zfp-x",
            ServeCodec::Huffman => "huffman-x",
            ServeCodec::Sz { .. } => "cusz-like",
            ServeCodec::Lz4 => "nvcomp-lz4-like",
        }
    }

    /// Short label including parameters, e.g. `zfp:16`.
    pub fn label(self) -> String {
        match self {
            ServeCodec::Mgard { rel_eb } => format!("mgard:{rel_eb:e}"),
            ServeCodec::Zfp { rate } => format!("zfp:{rate}"),
            ServeCodec::Huffman => "huffman".to_string(),
            ServeCodec::Sz { rel_eb } => format!("sz:{rel_eb:e}"),
            ServeCodec::Lz4 => "lz4".to_string(),
        }
    }

    /// Parse `name[:param]` as used in job scripts (`zfp:16`,
    /// `mgard:1e-3`, `huffman`).
    pub fn parse(s: &str) -> Result<ServeCodec, ServeError> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let float = |p: Option<&str>, default: f64| -> Result<f64, ServeError> {
            match p {
                None => Ok(default),
                Some(v) => v
                    .parse::<f64>()
                    .map_err(|_| ServeError::Script(format!("bad codec parameter '{v}'"))),
            }
        };
        match name {
            "mgard" => Ok(ServeCodec::Mgard {
                rel_eb: float(param, 1e-3)?,
            }),
            "sz" => Ok(ServeCodec::Sz {
                rel_eb: float(param, 1e-3)?,
            }),
            "zfp" => {
                let rate = match param {
                    None => 16,
                    Some(v) => v
                        .parse::<u32>()
                        .map_err(|_| ServeError::Script(format!("bad zfp rate '{v}'")))?,
                };
                Ok(ServeCodec::Zfp { rate })
            }
            "huffman" => Ok(ServeCodec::Huffman),
            "lz4" => Ok(ServeCodec::Lz4),
            other => Err(ServeError::Script(format!("unknown codec '{other}'"))),
        }
    }

    /// Instantiate the reducer.
    pub fn reducer(self) -> Arc<dyn Reducer> {
        match self {
            ServeCodec::Mgard { rel_eb } => Arc::new(MgardReducer(MgardConfig::relative(rel_eb))),
            ServeCodec::Zfp { rate } => Arc::new(ZfpReducer(ZfpConfig::fixed_rate(rate))),
            ServeCodec::Huffman => Arc::new(ByteHuffmanReducer::default()),
            ServeCodec::Sz { rel_eb } => Arc::new(SzReducer(SzConfig::relative(rel_eb))),
            ServeCodec::Lz4 => Arc::new(Lz4Reducer),
        }
    }

    /// Configuration hash for [`ContextKey`] (CMM lookups).
    pub fn config_hash(self) -> u64 {
        fnv1a(self.label().as_bytes())
    }
}

/// Cooperative cancellation handle shared between a client and the
/// scheduler. Setting it tells the scheduler to skip the job at the
/// next check point (ingest or dispatch); in-flight work is never
/// interrupted mid-kernel, matching CUDA-style stream semantics.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The data a job operates on.
#[derive(Debug, Clone)]
pub enum JobPayload {
    Compress {
        input: Arc<Vec<u8>>,
        meta: ArrayMeta,
    },
    Decompress {
        container: Arc<Container>,
    },
    /// Progressive retrieval against a shared refactoring: tenants at
    /// different tolerances hold the *same* `Arc<Refactoring>` (the
    /// payload cache's coarse-component sharing) plus the fetch plan
    /// computed for their fidelity.
    Retrieve {
        set: Arc<Refactoring>,
        plan: Arc<FetchPlan>,
        /// Absolute L∞ tolerance.
        tolerance: f64,
        meta: ArrayMeta,
    },
}

impl JobPayload {
    pub fn kind(&self) -> JobKind {
        match self {
            JobPayload::Compress { .. } => JobKind::Compress,
            JobPayload::Decompress { .. } => JobKind::Decompress,
            JobPayload::Retrieve { tolerance, .. } => JobKind::Retrieve {
                tolerance: *tolerance,
            },
        }
    }

    /// Bytes on the uncompressed side (admission accounting + goodput).
    pub fn raw_bytes(&self) -> u64 {
        match self {
            JobPayload::Compress { input, .. } => input.len() as u64,
            JobPayload::Decompress { container } => container.meta.num_bytes() as u64,
            JobPayload::Retrieve { meta, .. } => meta.num_bytes() as u64,
        }
    }

    /// Array metadata of the uncompressed side.
    pub fn meta(&self) -> &ArrayMeta {
        match self {
            JobPayload::Compress { meta, .. } => meta,
            JobPayload::Decompress { container } => &container.meta,
            JobPayload::Retrieve { meta, .. } => meta,
        }
    }
}

/// One submitted reduction request.
#[derive(Debug, Clone)]
pub struct JobRequest {
    pub tenant: TenantId,
    /// Virtual arrival instant.
    pub arrival: Ns,
    pub codec: ServeCodec,
    /// Higher runs earlier (0 = normal).
    pub priority: u8,
    /// Absolute virtual deadline; missing it makes the job `TimedOut`.
    pub deadline: Option<Ns>,
    /// Virtual instant at which the client gives up (→ `Cancelled`).
    pub cancel_at: Option<Ns>,
    pub payload: JobPayload,
    pub cancel: CancelToken,
    /// Causal flight-recorder context. Unassigned until a recorder
    /// claims the job; survives cluster re-routes and retries.
    pub trace: hpdr_flight::TraceContext,
}

impl JobRequest {
    pub fn new(
        tenant: TenantId,
        arrival: Ns,
        codec: ServeCodec,
        payload: JobPayload,
    ) -> JobRequest {
        JobRequest {
            tenant,
            arrival,
            codec,
            priority: 0,
            deadline: None,
            cancel_at: None,
            payload,
            cancel: CancelToken::new(),
            trace: hpdr_flight::TraceContext::UNASSIGNED,
        }
    }

    /// Whether the request is cancelled at virtual instant `now`
    /// (externally via the token, or by its own `cancel_at`).
    pub fn cancelled_at(&self, now: Ns) -> bool {
        self.cancel.is_cancelled() || self.cancel_at.is_some_and(|t| t <= now)
    }

    /// CMM key for this job on `device`. Retrieve jobs key by the
    /// progressive algorithm and *not* by tolerance, so tenants at
    /// mixed fidelities share one context family per (shape, codec).
    pub fn context_key(&self, device: usize) -> ContextKey {
        let meta = self.payload.meta();
        let algorithm = match self.payload {
            JobPayload::Retrieve { .. } => "hpdr-progressive",
            _ => self.codec.name(),
        };
        ContextKey {
            algorithm,
            dtype: meta.dtype,
            shape: meta.shape.dims().to_vec(),
            config_hash: self.codec.config_hash(),
            device,
        }
    }
}

/// Terminal state of an admitted job. Every admitted job reaches exactly
/// one of these — the "zero lost jobs" invariant the report validator
/// enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    Completed,
    /// Deadline missed (expired in queue, or finished past deadline).
    TimedOut,
    /// Cancelled while queued or between admission and launch.
    Cancelled,
    /// The codec rejected the payload.
    Failed(String),
}

impl JobOutcome {
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::TimedOut => "timed_out",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::Failed(_) => "failed",
        }
    }
}

/// Full accounting record of one admitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: JobId,
    pub tenant: TenantId,
    pub kind: JobKind,
    pub codec: String,
    pub bytes: u64,
    pub device: Option<usize>,
    pub arrival: Ns,
    /// Dispatch instant (None if never launched).
    pub started: Option<Ns>,
    /// Terminal instant.
    pub finished: Ns,
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// End-to-end latency (terminal − arrival).
    pub fn latency(&self) -> Ns {
        self.finished.saturating_sub(self.arrival)
    }

    /// Queue wait (dispatch − arrival; full latency if never launched).
    pub fn queue_wait(&self) -> Ns {
        self.started
            .unwrap_or(self.finished)
            .saturating_sub(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::DType;
    use hpdr_core::Shape;

    fn payload() -> JobPayload {
        JobPayload::Compress {
            input: Arc::new(vec![0u8; 64]),
            meta: ArrayMeta::new(DType::F32, Shape::new(&[16])),
        }
    }

    #[test]
    fn codec_parse_roundtrip() {
        assert_eq!(
            ServeCodec::parse("zfp:8").unwrap(),
            ServeCodec::Zfp { rate: 8 }
        );
        assert_eq!(
            ServeCodec::parse("mgard:1e-2").unwrap(),
            ServeCodec::Mgard { rel_eb: 1e-2 }
        );
        assert_eq!(ServeCodec::parse("huffman").unwrap(), ServeCodec::Huffman);
        assert_eq!(ServeCodec::parse("lz4").unwrap(), ServeCodec::Lz4);
        assert_eq!(
            ServeCodec::parse("sz").unwrap(),
            ServeCodec::Sz { rel_eb: 1e-3 }
        );
        assert!(ServeCodec::parse("gzip").is_err());
        assert!(ServeCodec::parse("zfp:fast").is_err());
    }

    #[test]
    fn codec_names_match_registry() {
        for (codec, name) in [
            (ServeCodec::Mgard { rel_eb: 1e-3 }, "mgard-x"),
            (ServeCodec::Zfp { rate: 16 }, "zfp-x"),
            (ServeCodec::Huffman, "huffman-x"),
            (ServeCodec::Sz { rel_eb: 1e-3 }, "cusz-like"),
            (ServeCodec::Lz4, "nvcomp-lz4-like"),
        ] {
            assert_eq!(codec.name(), name);
            assert_eq!(codec.reducer().name(), name);
        }
    }

    #[test]
    fn config_hash_distinguishes_parameters() {
        assert_ne!(
            ServeCodec::Zfp { rate: 8 }.config_hash(),
            ServeCodec::Zfp { rate: 16 }.config_hash()
        );
    }

    #[test]
    fn cancel_token_and_cancel_at() {
        let mut req = JobRequest::new(TenantId(1), Ns(100), ServeCodec::Lz4, payload());
        assert!(!req.cancelled_at(Ns(100)));
        req.cancel_at = Some(Ns(500));
        assert!(!req.cancelled_at(Ns(499)));
        assert!(req.cancelled_at(Ns(500)));
        let req2 = JobRequest::new(TenantId(1), Ns(0), ServeCodec::Lz4, payload());
        req2.cancel.cancel();
        assert!(req2.cancelled_at(Ns::ZERO));
    }

    #[test]
    fn record_latency_and_wait() {
        let r = JobRecord {
            id: JobId(0),
            tenant: TenantId(0),
            kind: JobKind::Compress,
            codec: "lz4".into(),
            bytes: 64,
            device: Some(0),
            arrival: Ns(100),
            started: Some(Ns(150)),
            finished: Ns(400),
            outcome: JobOutcome::Completed,
        };
        assert_eq!(r.latency(), Ns(300));
        assert_eq!(r.queue_wait(), Ns(50));
    }
}
