//! Adversarial schedule fixtures: deliberately broken op-DAGs that the
//! static analyzer must flag with the *right* hazard, by name.
//!
//! Each fixture seeds one of the bug classes the Fig. 9 pipeline design
//! guards against: a missing buffer-reuse anti-dependency (data race), a
//! premature free (use-after-free), a dependency cycle (deadlock), and a
//! forward dependency (launch-order violation).

use hpdr_sim::verify::{analyze, Dag, DagOp, Hazard, OpKind};
use hpdr_sim::{BufId, Cost, DeviceId, Effects, Engine, Ns, OpSpec, Sim};

fn dev() -> DeviceId {
    DeviceId(0)
}

fn op(
    label: &str,
    engine: Engine,
    queue: Option<usize>,
    deps: Vec<usize>,
    effects: Effects,
) -> DagOp {
    DagOp {
        label: label.into(),
        engine,
        queue,
        deps,
        effects,
        kind: OpKind::Fixed,
    }
}

/// The seeded two-buffer pipeline bug: chunk 2 reuses chunk 0's input
/// buffer, but the `S[0] → H2D[2]` anti-dependency was "forgotten".
/// `H2D[2]` overwrites the buffer while `R[0]` may still be reading it.
#[test]
fn missing_anti_dependency_is_a_data_race() {
    let in0 = BufId::from_index(0);
    let in1 = BufId::from_index(1);
    let mut ops = Vec::new();
    // Chunk 0 on queue 0, chunk 1 on queue 1, chunk 2 reuses in0 on queue 2.
    for (k, buf) in [(0usize, in0), (1, in1), (2, in0)] {
        let h2d_deps = vec![]; // the anti-dep S[k-2] -> H2D[k] is missing
        let h2d = ops.len();
        ops.push(op(
            &format!("H2D[{k}]"),
            Engine::H2D(dev()),
            Some(k),
            h2d_deps,
            Effects::write(buf),
        ));
        ops.push(op(
            &format!("R[{k}]"),
            Engine::Compute(dev()),
            Some(k),
            vec![h2d],
            Effects::read(buf),
        ));
    }
    let dag = Dag { ops };
    let report = analyze(&dag);
    assert!(!report.is_clean());
    let race = report
        .hazards
        .iter()
        .find_map(|h| match h {
            Hazard::DataRace { buf, first, second } => Some((*buf, *first, *second)),
            _ => None,
        })
        .expect("analyzer must name the data race");
    // The minimal unordered pair: R[0] (op 1) vs H2D[2] (op 4) on in0.
    assert_eq!(race, (in0, 1, 4));
    assert!(report.describe(&dag).contains("data race"));
    assert!(report.describe(&dag).contains("H2D[2]"));
}

/// Same seeded race, via the live `Sim` path: with verification enabled,
/// `run()` must refuse to execute the broken schedule.
#[test]
#[should_panic(expected = "data race")]
fn sim_run_rejects_racy_schedule() {
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(hpdr_sim::v100(), rt);
    let q0 = sim.add_queue();
    let q1 = sim.add_queue();
    let buf = sim.create_buffer(dev, 16);
    sim.set_verify(true); // explicit: on in debug anyway, but the test must hold in release too
    sim.push(
        OpSpec {
            engine: Engine::H2D(dev),
            queue: Some(q0),
            deps: vec![],
            cost: Cost::Fixed(Ns(10)),
            label: "H2D[0]".into(),
            effects: Effects::write(buf),
        },
        None,
    );
    sim.push(
        OpSpec {
            engine: Engine::Compute(dev),
            queue: Some(q1),
            deps: vec![], // missing dep on H2D[0]
            cost: Cost::Fixed(Ns(10)),
            label: "R[0]".into(),
            effects: Effects::read(buf),
        },
        None,
    );
    sim.run();
}

/// Seeded use-after-free: the workspace is freed after chunk 0, but the
/// serialize op of chunk 0 was ordered after the free.
#[test]
fn premature_free_is_use_after_free() {
    let out = BufId::from_index(7);
    let dag = Dag {
        ops: vec![
            op(
                "R[0]",
                Engine::Compute(dev()),
                Some(0),
                vec![],
                Effects::write(out),
            ),
            op(
                "free[0]",
                Engine::Runtime(hpdr_sim::RuntimeId(0)),
                Some(0),
                vec![0],
                Effects::free(out),
            ),
            op(
                "S[0]",
                Engine::D2H(dev()),
                Some(0),
                vec![1],
                Effects::read(out),
            ),
        ],
    };
    let report = analyze(&dag);
    let uaf = report
        .hazards
        .iter()
        .find(|h| matches!(h, Hazard::UseAfterFree { .. }))
        .expect("analyzer must name the use-after-free");
    assert!(uaf.describe(&dag).contains("use-after-free"));
    assert!(uaf.describe(&dag).contains("S[0]"));
    assert!(uaf.describe(&dag).contains("free[0]"));
    assert_eq!(uaf.kind(), "use-after-free");
}

/// An *unordered* free is also a use-after-free (the free may win).
#[test]
fn unordered_free_is_use_after_free_too() {
    let out = BufId::from_index(3);
    let dag = Dag {
        ops: vec![
            op(
                "S[0]",
                Engine::D2H(dev()),
                Some(0),
                vec![],
                Effects::read(out),
            ),
            op(
                "free[0]",
                Engine::Runtime(hpdr_sim::RuntimeId(0)),
                Some(1),
                vec![], // no ordering against S[0]
                Effects::free(out),
            ),
        ],
    };
    let report = analyze(&dag);
    match report.hazards.as_slice() {
        [Hazard::UseAfterFree { definite, .. }] => assert!(!definite),
        other => panic!("expected one indefinite UAF, got {other:?}"),
    }
}

/// Seeded dependency cycle: three ops waiting on each other. A real
/// runtime would deadlock; the analyzer must say so and name the loop.
#[test]
fn dependency_cycle_is_reported_as_deadlock() {
    let dag = Dag {
        ops: vec![
            op("a", Engine::Host, None, vec![2], Effects::none()),
            op("b", Engine::Host, None, vec![0], Effects::none()),
            op("c", Engine::Host, None, vec![1], Effects::none()),
        ],
    };
    let report = analyze(&dag);
    let cycle = report
        .hazards
        .iter()
        .find(|h| matches!(h, Hazard::Deadlock { .. }))
        .expect("analyzer must report the deadlock");
    assert_eq!(cycle.kind(), "deadlock");
    let text = cycle.describe(&dag);
    assert!(text.contains("cycle"), "{text}");
    // All three ops participate.
    match cycle {
        Hazard::Deadlock { cycle } => assert_eq!(cycle.len(), 3),
        _ => unreachable!(),
    }
    // Forward deps are also reported for the back edge.
    assert!(report.hazards.iter().any(|h| h.kind() == "forward-dep"));
}

/// Seeded forward dependency: an op waiting on a later submission — an
/// event that has not been recorded yet at launch time.
#[test]
fn forward_dependency_is_flagged() {
    let dag = Dag {
        ops: vec![
            op("early", Engine::Host, None, vec![1], Effects::none()),
            op("late", Engine::Host, None, vec![], Effects::none()),
        ],
    };
    let report = analyze(&dag);
    assert_eq!(report.hazards.len(), 1);
    assert_eq!(report.hazards[0].kind(), "forward-dep");
    let text = report.describe(&dag);
    assert!(
        text.contains("'early'") && text.contains("'late'"),
        "{text}"
    );
}

/// The JSON rendering carries the same hazards machine-readably.
#[test]
fn json_report_names_seeded_hazards() {
    let buf = BufId::from_index(0);
    let dag = Dag {
        ops: vec![
            op(
                "w",
                Engine::H2D(dev()),
                Some(0),
                vec![],
                Effects::write(buf),
            ),
            op(
                "r",
                Engine::Compute(dev()),
                Some(1),
                vec![],
                Effects::read(buf),
            ),
        ],
    };
    let report = analyze(&dag);
    let json = report.to_json(&dag);
    assert!(json.contains("\"kind\":\"data-race\""), "{json}");
    assert!(json.contains("\"truncated\":0"));
}
