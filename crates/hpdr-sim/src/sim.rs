//! The deterministic virtual-time scheduler.
//!
//! A [`Sim`] owns a set of devices (each with an H2D DMA engine, a D2H DMA
//! engine, and a compute engine), shared runtimes (whose allocator
//! serializes alloc/free across all devices of a node — the multi-GPU
//! contention source identified in paper §III-B), and a list of operations.
//!
//! Scheduling semantics mirror a CUDA/HIP runtime:
//!
//! * ops in the same **queue** (stream) execute in submission order;
//! * each **engine** executes at most one op at a time, in submission order
//!   (one kernel at a time, one DMA per direction — paper §V-B restrictions);
//! * explicit **dependencies** (events) may only point at earlier-submitted
//!   ops, so launch order is part of the model (the paper's Fig. 9 red-arrow
//!   optimization is expressed by reordering submissions).
//!
//! Every op may carry a *payload* closure that runs against the real
//! [`MemPool`], so simulated pipelines produce real output bytes.

use crate::effects::Effects;
use crate::mem::{BufId, MemPool};
use crate::spec::{DeviceSpec, KernelClass};
use crate::time::Ns;
use crate::timeline::{OpRecord, Timeline};
use crate::trace::{Recorder, SpanEvent, Trace};
use crate::verify::{self, Dag, DagOp, OpKind};

/// Handle to a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub usize);

/// Handle to a shared runtime (one per node; owns the allocator lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuntimeId(pub usize);

/// Handle to an execution queue (CUDA-stream analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub usize);

/// Handle to a submitted operation (usable as a dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// The hardware engine an op occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Host→device DMA engine of a device.
    H2D(DeviceId),
    /// Device→host DMA engine of a device.
    D2H(DeviceId),
    /// Compute engine of a device.
    Compute(DeviceId),
    /// The shared-runtime allocator lock (serializes across devices).
    Runtime(RuntimeId),
    /// Host-side staging copies for one device's driver thread
    /// (application ↔ reduction ↔ I/O buffers).
    Staging(DeviceId),
    /// Host-side work (untimed unless a fixed cost is given).
    Host,
}

impl Engine {
    /// The device this engine belongs to, if any.
    pub fn device(&self) -> Option<DeviceId> {
        match self {
            Engine::H2D(d) | Engine::D2H(d) | Engine::Compute(d) | Engine::Staging(d) => Some(*d),
            _ => None,
        }
    }
}

/// How the virtual duration of an op is derived.
#[derive(Debug, Clone)]
pub enum Cost {
    /// A DMA transfer of `bytes` (engine must be H2D or D2H).
    Transfer { bytes: u64 },
    /// A DMA transfer whose size becomes known only when an earlier
    /// payload runs (e.g. the compressed size produced by a reduction
    /// kernel). The cell is read at schedule time, which happens after
    /// all earlier-submitted payloads have executed.
    TransferDyn {
        bytes: std::sync::Arc<std::sync::atomic::AtomicU64>,
    },
    /// A compute kernel over `bytes` of input (engine must be Compute).
    Kernel { class: KernelClass, bytes: u64 },
    /// One device-memory allocation (engine must be Runtime).
    Alloc { device: DeviceId },
    /// One device-memory free (engine must be Runtime).
    Free { device: DeviceId },
    /// A fixed duration.
    Fixed(Ns),
    /// A host-memory copy (pageable staging between application,
    /// reduction and I/O buffers — paper §II-B). Engine must be Host;
    /// rate set by [`Sim::set_host_copy_gbps`]. Size may be dynamic.
    HostCopy {
        bytes: std::sync::Arc<std::sync::atomic::AtomicU64>,
    },
}

/// Payload executed against the memory pool when the op "runs".
pub type Payload = Box<dyn FnOnce(&mut MemPool)>;

/// Shadow-access record of one executed op, collected when auditing is
/// enabled ([`Sim::set_audit`]): the buffer accesses the payload *actually*
/// performed, as opposed to the [`Effects`] its [`OpSpec`] declared.
#[derive(Debug, Clone)]
pub struct OpAudit {
    pub label: String,
    /// Whether the op carried a payload at all. Payload-less ops (pure
    /// timing models) observe nothing, and their declarations are the
    /// model itself — auditors skip the over-declaration check for them.
    pub had_payload: bool,
    /// The observed access set (empty for payload-less ops).
    pub observed: Effects,
}

/// A fully-specified operation prior to submission.
pub struct OpSpec {
    pub engine: Engine,
    pub queue: Option<QueueId>,
    pub deps: Vec<OpId>,
    pub cost: Cost,
    pub label: String,
    /// Declared buffer effects — the static analyzer's ([`crate::verify`])
    /// source of truth, enforced against the payload in debug builds.
    pub effects: Effects,
}

struct Device {
    spec: DeviceSpec,
    runtime: RuntimeId,
}

struct PendingOp {
    spec: OpSpec,
    payload: Option<Payload>,
}

/// The virtual machine: devices, queues, submitted ops and the memory pool.
pub struct Sim {
    devices: Vec<Device>,
    runtimes: usize,
    queues: usize,
    ops: Vec<PendingOp>,
    pool: MemPool,
    /// Pageable host-memory copy bandwidth (GB/s) for [`Cost::HostCopy`].
    host_copy_gbps: f64,
    /// Run the static hazard analyzer before executing (defaults to on in
    /// debug builds — i.e. on under `cargo test`, off in release benches).
    verify_enabled: bool,
    /// Span recorder; present only while tracing is enabled so a disabled
    /// recorder costs one `Option` check per op and changes nothing else.
    recorder: Option<Recorder>,
    /// Shadow-access auditing: record what each payload actually touches
    /// instead of enforcing the declaration ([`Sim::set_audit`]).
    audit_enabled: bool,
    /// Per-op observation log of the last audited [`Sim::run`].
    observed: Vec<OpAudit>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    pub fn new() -> Sim {
        Sim {
            devices: Vec::new(),
            runtimes: 0,
            queues: 0,
            ops: Vec::new(),
            pool: MemPool::new(),
            host_copy_gbps: 18.0,
            verify_enabled: cfg!(debug_assertions),
            recorder: None,
            audit_enabled: false,
            observed: Vec::new(),
        }
    }

    /// Enable or disable span tracing for the next [`Sim::run`]. Tracing
    /// never changes scheduling: virtual times are identical on and off.
    pub fn set_trace(&mut self, on: bool) {
        if on {
            if self.recorder.is_none() {
                self.recorder = Some(Recorder::new());
            }
        } else {
            self.recorder = None;
        }
    }

    /// Take the trace recorded by the last [`Sim::run`], if tracing was on.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.recorder.take().map(Recorder::into_trace)
    }

    /// Enable or disable pre-execution schedule verification.
    pub fn set_verify(&mut self, on: bool) {
        self.verify_enabled = on;
    }

    /// Enable or disable shadow-access auditing for the next [`Sim::run`].
    /// With auditing on, the memory pool *records* every buffer access a
    /// payload performs (instead of panicking on undeclared ones) and the
    /// per-op observation log is retrievable via [`Sim::take_observed`].
    /// Auditing never changes scheduling: virtual times are identical.
    pub fn set_audit(&mut self, on: bool) {
        self.audit_enabled = on;
        self.observed.clear();
    }

    /// Take the shadow-access log of the last audited [`Sim::run`]
    /// (one entry per executed op, in submission order). Empty if
    /// auditing was off.
    pub fn take_observed(&mut self) -> Vec<OpAudit> {
        std::mem::take(&mut self.observed)
    }

    /// Override the pageable host-copy bandwidth (default 18 GB/s).
    pub fn set_host_copy_gbps(&mut self, gbps: f64) {
        assert!(gbps > 0.0 && gbps.is_finite());
        self.host_copy_gbps = gbps;
    }

    /// Register a shared runtime (one per simulated node).
    pub fn add_runtime(&mut self) -> RuntimeId {
        let id = RuntimeId(self.runtimes);
        self.runtimes += 1;
        id
    }

    /// Register a device under a runtime.
    pub fn add_device(&mut self, spec: DeviceSpec, runtime: RuntimeId) -> DeviceId {
        assert!(runtime.0 < self.runtimes, "unknown runtime");
        let id = DeviceId(self.devices.len());
        self.devices.push(Device { spec, runtime });
        id
    }

    /// Create an execution queue.
    pub fn add_queue(&mut self) -> QueueId {
        let id = QueueId(self.queues);
        self.queues += 1;
        id
    }

    pub fn device_spec(&self, dev: DeviceId) -> &DeviceSpec {
        &self.devices[dev.0].spec
    }

    pub fn device_runtime(&self, dev: DeviceId) -> RuntimeId {
        self.devices[dev.0].runtime
    }

    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Create a device buffer (backing store only; charge time separately
    /// with an [`Cost::Alloc`] op, or don't — that's what the CMM avoids).
    pub fn create_buffer(&mut self, device: DeviceId, bytes: usize) -> BufId {
        self.pool.create(device, bytes)
    }

    /// Direct access to the memory pool (e.g. to seed input buffers).
    pub fn pool_mut(&mut self) -> &mut MemPool {
        &mut self.pool
    }

    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// Submit an operation. Dependencies must reference earlier submissions.
    pub fn push(&mut self, spec: OpSpec, payload: Option<Payload>) -> OpId {
        let id = OpId(self.ops.len());
        for d in &spec.deps {
            assert!(d.0 < id.0, "dependency {:?} not yet submitted", d);
        }
        if let Some(q) = spec.queue {
            assert!(q.0 < self.queues, "unknown queue");
        }
        match (&spec.cost, &spec.engine) {
            (Cost::Transfer { .. } | Cost::TransferDyn { .. }, Engine::H2D(_) | Engine::D2H(_)) => {
            }
            (Cost::Kernel { .. }, Engine::Compute(_)) => {}
            (Cost::Alloc { .. } | Cost::Free { .. }, Engine::Runtime(_)) => {}
            (Cost::HostCopy { .. }, Engine::Host | Engine::Staging(_)) => {}
            (Cost::Fixed(_), _) => {}
            (c, e) => panic!("cost {c:?} not valid on engine {e:?}"),
        }
        self.ops.push(PendingOp { spec, payload });
        id
    }

    /// Convenience: allocate a device buffer *with* a timed runtime op.
    pub fn alloc_timed(
        &mut self,
        queue: QueueId,
        device: DeviceId,
        bytes: usize,
        label: &str,
    ) -> (BufId, OpId) {
        let buf = self.create_buffer(device, bytes);
        let rt = self.device_runtime(device);
        let op = self.push(
            OpSpec {
                engine: Engine::Runtime(rt),
                queue: Some(queue),
                deps: vec![],
                cost: Cost::Alloc { device },
                label: label.to_string(),
                effects: Effects::alloc(buf),
            },
            None,
        );
        (buf, op)
    }

    /// Convenience: free a buffer with a timed runtime op.
    pub fn free_timed(&mut self, queue: QueueId, buf: BufId, deps: Vec<OpId>, label: &str) -> OpId {
        let device = self.pool.device(buf);
        let rt = self.device_runtime(device);
        self.push(
            OpSpec {
                engine: Engine::Runtime(rt),
                queue: Some(queue),
                deps,
                cost: Cost::Free { device },
                label: label.to_string(),
                effects: Effects::free(buf),
            },
            Some(Box::new(move |pool: &mut MemPool| pool.mark_freed(buf))),
        )
    }

    fn resolve_duration(&self, spec: &OpSpec) -> (Ns, u64, Option<KernelClass>) {
        let dma_model = |engine: &Engine| match engine {
            Engine::H2D(d) => &self.devices[d.0].spec.h2d,
            Engine::D2H(d) => &self.devices[d.0].spec.d2h,
            _ => unreachable!(),
        };
        match &spec.cost {
            Cost::Transfer { bytes } => (dma_model(&spec.engine).duration(*bytes), *bytes, None),
            Cost::TransferDyn { bytes } => {
                let b = bytes.load(std::sync::atomic::Ordering::SeqCst);
                (dma_model(&spec.engine).duration(b), b, None)
            }
            Cost::Kernel { class, bytes } => {
                let d = match spec.engine {
                    Engine::Compute(d) => d,
                    _ => unreachable!(),
                };
                (
                    self.devices[d.0].spec.kernel_duration(*class, *bytes),
                    *bytes,
                    Some(*class),
                )
            }
            Cost::Alloc { device } => (self.devices[device.0].spec.alloc_latency, 0, None),
            Cost::Free { device } => (self.devices[device.0].spec.free_latency, 0, None),
            Cost::Fixed(ns) => (*ns, 0, None),
            Cost::HostCopy { bytes } => {
                let b = bytes.load(std::sync::atomic::Ordering::SeqCst);
                (Ns((b as f64 / self.host_copy_gbps).round() as u64), b, None)
            }
        }
    }

    /// Snapshot the currently submitted (not yet run) ops as an analyzable
    /// [`Dag`] for [`verify::analyze`] and the schedule linters.
    pub fn dag(&self) -> Dag {
        let ops = self
            .ops
            .iter()
            .map(|p| {
                let spec = &p.spec;
                let kind = kind_of(&spec.cost);
                DagOp {
                    label: spec.label.clone(),
                    engine: spec.engine,
                    queue: spec.queue.map(|q| q.0),
                    deps: spec.deps.iter().map(|d| d.0).collect(),
                    effects: spec.effects.clone(),
                    kind,
                }
            })
            .collect();
        Dag { ops }
    }

    /// Execute every submitted op: compute virtual start/end times and run
    /// payloads in submission (and therefore dependency-safe) order.
    ///
    /// When verification is enabled ([`Sim::set_verify`]; default on in
    /// debug builds), the static hazard analyzer runs over the DAG first
    /// and panics with a full report if any hazard is found — nothing
    /// executes against the memory pool on a broken schedule.
    ///
    /// Returns the resulting [`Timeline`]; the memory pool stays available
    /// via [`Sim::pool`] / [`Sim::take_buffer`] for output extraction.
    pub fn run(&mut self) -> Timeline {
        if self.verify_enabled {
            let dag = self.dag();
            let report = verify::analyze(&dag);
            assert!(report.is_clean(), "{}", report.describe(&dag));
        }
        use std::collections::HashMap;
        let mut engine_free: HashMap<Engine, Ns> = HashMap::new();
        let mut queue_tail: Vec<Ns> = vec![Ns::ZERO; self.queues];
        let mut ends: Vec<Ns> = Vec::with_capacity(self.ops.len());
        let mut records: Vec<OpRecord> = Vec::with_capacity(self.ops.len());

        let ops = std::mem::take(&mut self.ops);
        for (op, PendingOp { spec, payload }) in ops.into_iter().enumerate() {
            let mut ready = Ns::ZERO;
            for d in &spec.deps {
                ready = ready.max(ends[d.0]);
            }
            let mut start = ready;
            if let Some(q) = spec.queue {
                start = start.max(queue_tail[q.0]);
            }
            if let Some(&free) = engine_free.get(&spec.engine) {
                start = start.max(free);
            }
            let (dur, bytes, class) = self.resolve_duration(&spec);
            let end = start + dur;
            engine_free.insert(spec.engine, end);
            if let Some(q) = spec.queue {
                queue_tail[q.0] = end;
            }
            ends.push(end);
            if let Some(rec) = &mut self.recorder {
                rec.emit(SpanEvent::Begin {
                    op,
                    t: start,
                    label: spec.label.clone(),
                    engine: spec.engine,
                    queue: spec.queue.map(|q| q.0),
                    deps: spec.deps.iter().map(|d| d.0).collect(),
                    kind: kind_of(&spec.cost),
                    class,
                    bytes,
                    ready,
                });
            }
            let mut wall = Ns::ZERO;
            if let Some(p) = payload {
                let t0 = std::time::Instant::now();
                if self.audit_enabled {
                    // Audit mode: record what the payload really touches.
                    self.pool
                        .begin_payload_recording(&spec.label, &spec.effects);
                    p(&mut self.pool);
                    let observed = self.pool.end_payload().unwrap_or_default();
                    self.observed.push(OpAudit {
                        label: spec.label.clone(),
                        had_payload: true,
                        observed,
                    });
                } else if cfg!(debug_assertions) {
                    // Debug builds: hold the payload to its declared effects.
                    self.pool.begin_payload(&spec.label, &spec.effects);
                    p(&mut self.pool);
                    self.pool.end_payload();
                } else {
                    p(&mut self.pool);
                }
                wall = Ns(t0.elapsed().as_nanos() as u64);
            } else if self.audit_enabled {
                self.observed.push(OpAudit {
                    label: spec.label.clone(),
                    had_payload: false,
                    observed: Effects::none(),
                });
            }
            if self.recorder.is_some() {
                // Footprint sampled after the payload so dynamically sized
                // outputs (compressed streams) report their final sizes.
                let footprint_bytes = spec
                    .effects
                    .touched()
                    .into_iter()
                    .filter(|b| !self.pool.is_freed(*b))
                    .map(|b| self.pool.len(b) as u64)
                    .sum();
                let event = SpanEvent::End {
                    op,
                    t: end,
                    footprint_bytes,
                    wall,
                };
                if let Some(rec) = &mut self.recorder {
                    rec.emit(event);
                }
            }
            records.push(OpRecord {
                label: spec.label,
                engine: spec.engine,
                start,
                end,
                bytes,
                class,
            });
        }
        Timeline::new(records)
    }

    /// Move a buffer's contents out of the pool after a run.
    pub fn take_buffer(&mut self, buf: BufId) -> Vec<u8> {
        self.pool.take(buf)
    }
}

/// The analyzer/trace op kind of a cost model.
pub fn kind_of(cost: &Cost) -> OpKind {
    match cost {
        Cost::Transfer { .. } | Cost::TransferDyn { .. } => OpKind::Transfer,
        Cost::Kernel { .. } => OpKind::Kernel,
        Cost::Alloc { .. } => OpKind::Alloc,
        Cost::Free { .. } => OpKind::Free,
        Cost::HostCopy { .. } => OpKind::HostCopy,
        Cost::Fixed(_) => OpKind::Fixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::v100;

    fn one_device() -> (Sim, DeviceId, QueueId) {
        let mut sim = Sim::new();
        let rt = sim.add_runtime();
        let dev = sim.add_device(v100(), rt);
        let q = sim.add_queue();
        (sim, dev, q)
    }

    #[test]
    fn queue_serializes_in_order() {
        let (mut sim, dev, q) = one_device();
        let a = sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Fixed(Ns(100)),
                label: "a".into(),
                effects: Effects::none(),
            },
            None,
        );
        let b = sim.push(
            OpSpec {
                engine: Engine::H2D(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Fixed(Ns(50)),
                label: "b".into(),
                effects: Effects::none(),
            },
            None,
        );
        let tl = sim.run();
        assert_eq!(tl.record(a).start, Ns(0));
        assert_eq!(tl.record(a).end, Ns(100));
        // Same queue ⇒ b waits even though it's a different engine.
        assert_eq!(tl.record(b).start, Ns(100));
        assert_eq!(tl.record(b).end, Ns(150));
    }

    #[test]
    fn different_queues_overlap_on_different_engines() {
        let (mut sim, dev, _q) = one_device();
        let q1 = sim.add_queue();
        let q2 = sim.add_queue();
        let a = sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q1),
                deps: vec![],
                cost: Cost::Fixed(Ns(100)),
                label: "k".into(),
                effects: Effects::none(),
            },
            None,
        );
        let b = sim.push(
            OpSpec {
                engine: Engine::H2D(dev),
                queue: Some(q2),
                deps: vec![],
                cost: Cost::Fixed(Ns(80)),
                label: "h2d".into(),
                effects: Effects::none(),
            },
            None,
        );
        let tl = sim.run();
        assert_eq!(tl.record(a).start, Ns(0));
        assert_eq!(tl.record(b).start, Ns(0)); // fully overlapped
    }

    #[test]
    fn same_engine_serializes_across_queues() {
        let (mut sim, dev, _) = one_device();
        let q1 = sim.add_queue();
        let q2 = sim.add_queue();
        let mk = |sim: &mut Sim, q| {
            sim.push(
                OpSpec {
                    engine: Engine::Compute(dev),
                    queue: Some(q),
                    deps: vec![],
                    cost: Cost::Fixed(Ns(100)),
                    label: "k".into(),
                    effects: Effects::none(),
                },
                None,
            )
        };
        let a = mk(&mut sim, q1);
        let b = mk(&mut sim, q2);
        let tl = sim.run();
        assert_eq!(tl.record(a).end, Ns(100));
        assert_eq!(tl.record(b).start, Ns(100)); // one kernel at a time
    }

    #[test]
    fn deps_delay_start() {
        let (mut sim, dev, _) = one_device();
        let q1 = sim.add_queue();
        let q2 = sim.add_queue();
        let a = sim.push(
            OpSpec {
                engine: Engine::H2D(dev),
                queue: Some(q1),
                deps: vec![],
                cost: Cost::Fixed(Ns(300)),
                label: "h2d".into(),
                effects: Effects::none(),
            },
            None,
        );
        let b = sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q2),
                deps: vec![a],
                cost: Cost::Fixed(Ns(10)),
                label: "k".into(),
                effects: Effects::none(),
            },
            None,
        );
        let tl = sim.run();
        assert_eq!(tl.record(b).start, Ns(300));
    }

    #[test]
    fn runtime_lock_serializes_allocs_across_devices() {
        let mut sim = Sim::new();
        let rt = sim.add_runtime();
        let d0 = sim.add_device(v100(), rt);
        let d1 = sim.add_device(v100(), rt);
        let q0 = sim.add_queue();
        let q1 = sim.add_queue();
        let (_, a) = sim.alloc_timed(q0, d0, 1024, "alloc0");
        let (_, b) = sim.alloc_timed(q1, d1, 1024, "alloc1");
        let tl = sim.run();
        let lat = v100().alloc_latency;
        assert_eq!(tl.record(a).end, lat);
        // Second device's alloc is blocked behind the shared runtime lock.
        assert_eq!(tl.record(b).start, lat);
        assert_eq!(tl.record(b).end, lat + lat);
    }

    #[test]
    fn separate_runtimes_do_not_contend() {
        let mut sim = Sim::new();
        let rt0 = sim.add_runtime();
        let rt1 = sim.add_runtime();
        let d0 = sim.add_device(v100(), rt0);
        let d1 = sim.add_device(v100(), rt1);
        let q0 = sim.add_queue();
        let q1 = sim.add_queue();
        let (_, a) = sim.alloc_timed(q0, d0, 1024, "alloc0");
        let (_, b) = sim.alloc_timed(q1, d1, 1024, "alloc1");
        let tl = sim.run();
        assert_eq!(tl.record(a).start, Ns(0));
        assert_eq!(tl.record(b).start, Ns(0));
    }

    #[test]
    fn payloads_move_real_bytes() {
        let (mut sim, dev, q) = one_device();
        let src = sim.create_buffer(dev, 4);
        let dst = sim.create_buffer(dev, 4);
        sim.pool_mut().get_mut(src).copy_from_slice(&[1, 2, 3, 4]);
        sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Kernel {
                    class: KernelClass::Memcpy,
                    bytes: 4,
                },
                label: "copy".into(),
                effects: Effects::read(src).and_write(dst),
            },
            Some(Box::new(move |pool: &mut MemPool| {
                let (s, d) = pool.get_pair_mut(src, dst);
                d.copy_from_slice(s);
            })),
        );
        sim.run();
        assert_eq!(sim.take_buffer(dst), vec![1, 2, 3, 4]);
    }

    #[test]
    fn audit_mode_records_observed_accesses_per_op() {
        let (mut sim, dev, q) = one_device();
        sim.set_audit(true);
        let src = sim.create_buffer(dev, 4);
        let dst = sim.create_buffer(dev, 4);
        let stray = sim.create_buffer(dev, 4);
        sim.pool_mut().get_mut(src).copy_from_slice(&[1, 2, 3, 4]);
        let a = sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Kernel {
                    class: KernelClass::Memcpy,
                    bytes: 4,
                },
                label: "copy".into(),
                effects: Effects::read(src).and_write(dst),
            },
            Some(Box::new(move |pool: &mut MemPool| {
                let (s, d) = pool.get_pair_mut(src, dst);
                d.copy_from_slice(s);
                // Undeclared write: recorded, not fatal, in audit mode.
                pool.get_mut(stray).fill(9);
            })),
        );
        sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Fixed(Ns(10)),
                label: "noop".into(),
                effects: Effects::none(),
            },
            None,
        );
        let tl = sim.run();
        let obs = sim.take_observed();
        assert_eq!(obs.len(), 2);
        assert!(obs[0].had_payload);
        assert!(obs[0].observed.reads.contains(&src));
        assert!(obs[0].observed.writes.contains(&dst));
        assert!(obs[0].observed.writes.contains(&stray));
        assert_eq!(obs[1].label, "noop");
        assert!(!obs[1].had_payload);
        assert!(obs[1].observed.is_empty());
        // Auditing changes neither virtual timing nor data movement.
        assert_eq!(tl.record(a).start, Ns(0));
        assert_eq!(sim.take_buffer(dst), vec![1, 2, 3, 4]);
    }

    #[test]
    fn transfer_cost_uses_dma_model() {
        let (mut sim, dev, q) = one_device();
        let bytes = 64 << 20; // saturated region: 45 GB/s NVLink on V100
        let a = sim.push(
            OpSpec {
                engine: Engine::H2D(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Transfer { bytes },
                label: "h2d".into(),
                effects: Effects::none(),
            },
            None,
        );
        let tl = sim.run();
        let dur = tl.record(a).end - tl.record(a).start;
        let expect = v100().h2d.duration(bytes);
        assert_eq!(dur, expect);
        // ~1.5 ms for 64 MiB at 45 GB/s.
        let got_gbps = bytes as f64 / dur.0 as f64;
        assert!((got_gbps - 45.0).abs() < 1.5, "got {got_gbps} GB/s");
    }

    #[test]
    #[should_panic(expected = "not yet submitted")]
    fn forward_dependency_rejected() {
        let (mut sim, dev, q) = one_device();
        sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q),
                deps: vec![OpId(5)],
                cost: Cost::Fixed(Ns(1)),
                label: "bad".into(),
                effects: Effects::none(),
            },
            None,
        );
    }

    #[test]
    #[should_panic(expected = "not valid on engine")]
    fn kernel_cost_on_dma_engine_rejected() {
        let (mut sim, dev, q) = one_device();
        sim.push(
            OpSpec {
                engine: Engine::H2D(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Kernel {
                    class: KernelClass::Other,
                    bytes: 1,
                },
                label: "bad".into(),
                effects: Effects::none(),
            },
            None,
        );
    }

    #[test]
    fn free_timed_marks_buffer() {
        let (mut sim, dev, q) = one_device();
        let (buf, op) = sim.alloc_timed(q, dev, 16, "a");
        sim.free_timed(q, buf, vec![op], "f");
        sim.run();
        assert_eq!(sim.pool().resident_bytes(dev), 0);
    }

    fn mixed_op_schedule(sim: &mut Sim, dev: DeviceId, q: QueueId) {
        let q2 = sim.add_queue();
        let buf = sim.create_buffer(dev, 256);
        let h = sim.push(
            OpSpec {
                engine: Engine::H2D(dev),
                queue: Some(q),
                deps: vec![],
                cost: Cost::Transfer { bytes: 256 },
                label: "h2d".into(),
                effects: Effects::write(buf),
            },
            Some(Box::new(move |pool: &mut MemPool| {
                pool.get_mut(buf).fill(7);
            })),
        );
        let k = sim.push(
            OpSpec {
                engine: Engine::Compute(dev),
                queue: Some(q2),
                deps: vec![h],
                cost: Cost::Kernel {
                    class: KernelClass::Huffman,
                    bytes: 256,
                },
                label: "kernel".into(),
                effects: Effects::read(buf),
            },
            None,
        );
        sim.free_timed(q, buf, vec![k], "free");
    }

    #[test]
    fn trace_records_all_ops_with_scheduler_times() {
        let (mut sim, dev, q) = one_device();
        mixed_op_schedule(&mut sim, dev, q);
        sim.set_trace(true);
        let tl = sim.run();
        let trace = sim.take_trace().expect("tracing was on");
        assert_eq!(trace.len(), 3);
        for (i, span) in trace.spans().iter().enumerate() {
            assert_eq!(span.op, i);
            assert_eq!(span.start, tl.record(OpId(i)).start);
            assert_eq!(span.end, tl.record(OpId(i)).end);
        }
        // The kernel became ready when the h2d finished.
        assert_eq!(trace.spans()[1].ready, tl.record(OpId(0)).end);
        assert_eq!(trace.spans()[1].deps, vec![0]);
        // h2d footprint: its 256-byte destination buffer was live.
        assert_eq!(trace.spans()[0].footprint_bytes, 256);
        // free footprint: the buffer is gone by the time the free ends.
        assert_eq!(trace.spans()[2].footprint_bytes, 0);
        assert_eq!(trace.makespan(), tl.makespan());
    }

    #[test]
    fn tracing_does_not_change_virtual_times() {
        let build = |trace: bool| {
            let (mut sim, dev, q) = one_device();
            mixed_op_schedule(&mut sim, dev, q);
            sim.set_trace(trace);
            sim.run()
        };
        let off = build(false);
        let on = build(true);
        assert_eq!(off.makespan(), on.makespan());
        for i in 0..3 {
            assert_eq!(off.record(OpId(i)).start, on.record(OpId(i)).start);
            assert_eq!(off.record(OpId(i)).end, on.record(OpId(i)).end);
        }
    }

    #[test]
    fn take_trace_is_none_when_tracing_off() {
        let (mut sim, dev, q) = one_device();
        mixed_op_schedule(&mut sim, dev, q);
        sim.run();
        assert!(sim.take_trace().is_none());
    }
}
