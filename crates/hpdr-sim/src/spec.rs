//! Device specifications and cost models.
//!
//! A [`DeviceSpec`] captures everything the scheduler needs to charge
//! virtual time for an operation: DMA bandwidths, per-kernel-class roofline
//! throughput models, and runtime (allocator) latencies. The presets are
//! calibrated against the numbers reported in the HPDR paper (Fig. 11/12:
//! up to 45 GB/s MGARD-X, 210 GB/s ZFP-X, 150 GB/s Huffman-X on GPUs).

use crate::time::Ns;

/// Broad classification of a compute kernel for cost-model lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// MGARD multilevel decomposition / recomposition.
    Mgard,
    /// ZFP block transform codec.
    Zfp,
    /// Huffman encode / decode.
    Huffman,
    /// SZ-style Lorenzo prediction + quantization.
    Lorenzo,
    /// LZ77/LZ4-style byte-level matcher.
    Lz4,
    /// Device-side memcpy / memset / (de)serialization.
    Memcpy,
    /// Anything else (charged at the generic streaming rate).
    Other,
}

impl KernelClass {
    pub const ALL: [KernelClass; 7] = [
        KernelClass::Mgard,
        KernelClass::Zfp,
        KernelClass::Huffman,
        KernelClass::Lorenzo,
        KernelClass::Lz4,
        KernelClass::Memcpy,
        KernelClass::Other,
    ];

    fn index(self) -> usize {
        match self {
            KernelClass::Mgard => 0,
            KernelClass::Zfp => 1,
            KernelClass::Huffman => 2,
            KernelClass::Lorenzo => 3,
            KernelClass::Lz4 => 4,
            KernelClass::Memcpy => 5,
            KernelClass::Other => 6,
        }
    }
}

/// A roofline-style throughput model (paper §V-C, Fig. 11).
///
/// Effective throughput ramps linearly with input size until the device is
/// saturated, then stays at the plateau `saturated_gbps`:
///
/// ```text
/// Φ(C) = γ·(r0 + (1−r0)·C/C_threshold)   if C < C_threshold
///        γ                               otherwise
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// Fixed per-launch latency (kernel launch / DMA setup).
    pub latency: Ns,
    /// Plateau throughput γ in GB/s.
    pub saturated_gbps: f64,
    /// Input size at which the plateau is reached (C_threshold).
    pub saturate_bytes: u64,
    /// Fraction of γ delivered as C → 0 (the β intercept, as a fraction).
    pub ramp_floor: f64,
}

impl ThroughputModel {
    /// A model with a flat rate regardless of size.
    pub fn flat(gbps: f64) -> ThroughputModel {
        ThroughputModel {
            latency: Ns::ZERO,
            saturated_gbps: gbps,
            saturate_bytes: 1,
            ramp_floor: 1.0,
        }
    }

    /// Effective throughput (GB/s) for an operation of `bytes` bytes.
    pub fn gbps_at(&self, bytes: u64) -> f64 {
        if bytes >= self.saturate_bytes {
            self.saturated_gbps
        } else {
            let frac = bytes as f64 / self.saturate_bytes as f64;
            self.saturated_gbps * (self.ramp_floor + (1.0 - self.ramp_floor) * frac)
        }
    }

    /// Virtual duration for an operation of `bytes` bytes.
    pub fn duration(&self, bytes: u64) -> Ns {
        if bytes == 0 {
            return self.latency;
        }
        let gbps = self.gbps_at(bytes).max(1e-9);
        self.latency + Ns((bytes as f64 / gbps).round() as u64)
    }
}

/// Simulated architecture family (determines which "device adapter" the
/// portable kernels report running under).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// NVIDIA-like device executed through the CUDA-style adapter.
    CudaSim,
    /// AMD-like device executed through the HIP-style adapter.
    HipSim,
}

/// Full description of one simulated accelerator device.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    pub name: &'static str,
    pub arch: Arch,
    /// Host→device DMA engine model.
    pub h2d: ThroughputModel,
    /// Device→host DMA engine model.
    pub d2h: ThroughputModel,
    /// Per-kernel-class compute models, indexed by [`KernelClass`].
    kernels: [ThroughputModel; 7],
    /// Latency of one device memory allocation through the shared runtime.
    pub alloc_latency: Ns,
    /// Latency of one device memory free through the shared runtime.
    pub free_latency: Ns,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

impl DeviceSpec {
    pub fn kernel_model(&self, class: KernelClass) -> &ThroughputModel {
        &self.kernels[class.index()]
    }

    pub fn set_kernel_model(&mut self, class: KernelClass, model: ThroughputModel) {
        self.kernels[class.index()] = model;
    }

    /// Virtual duration of a compute kernel of `class` over `bytes` input.
    pub fn kernel_duration(&self, class: KernelClass, bytes: u64) -> Ns {
        self.kernel_model(class).duration(bytes)
    }

    /// Shrink the spec for laptop-scale experiments: saturation knees and
    /// latencies divide by `factor` (with small floors so nothing hits
    /// zero); saturated bandwidths / plateaus are untouched, so
    /// performance *shapes* survive when data is shrunk by the same
    /// factor.
    pub fn scaled(&self, factor: u64) -> DeviceSpec {
        assert!(factor > 0, "scale factor must be positive");
        let shrink = |m: &ThroughputModel| ThroughputModel {
            latency: Ns((m.latency.0 / factor).max(10)),
            saturated_gbps: m.saturated_gbps,
            saturate_bytes: (m.saturate_bytes / factor).max(1),
            ramp_floor: m.ramp_floor,
        };
        let mut spec = self.clone();
        spec.h2d = shrink(&spec.h2d);
        spec.d2h = shrink(&spec.d2h);
        for class in KernelClass::ALL {
            let m = shrink(spec.kernel_model(class));
            spec.set_kernel_model(class, m);
        }
        spec.alloc_latency = Ns((spec.alloc_latency.0 / factor).max(20));
        spec.free_latency = Ns((spec.free_latency.0 / factor).max(15));
        spec
    }
}

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

fn gpu_kernels(
    mgard: f64,
    zfp: f64,
    huffman: f64,
    lorenzo: f64,
    lz4: f64,
    mem: f64,
) -> [ThroughputModel; 7] {
    let launch = Ns::from_micros(8);
    let mk = |g: f64, sat: u64| ThroughputModel {
        latency: launch,
        saturated_gbps: g,
        saturate_bytes: sat,
        ramp_floor: 0.05,
    };
    // Saturation knees: GPU reduction kernels reach full occupancy by a
    // few tens of MB (the paper's 100 MB chunks sit on the plateau).
    [
        mk(mgard, 48 * MIB),
        mk(zfp, 24 * MIB),
        mk(huffman, 32 * MIB),
        mk(lorenzo, 32 * MIB),
        mk(lz4, 48 * MIB),
        mk(mem, 16 * MIB),
        mk(mem / 2.0, 16 * MIB),
    ]
}

/// NVIDIA V100 (Summit node GPU): NVLink2-attached (~45 GB/s to the
/// POWER9 host), 16 GB HBM2.
pub fn v100() -> DeviceSpec {
    DeviceSpec {
        name: "V100",
        arch: Arch::CudaSim,
        h2d: ThroughputModel {
            latency: Ns::from_micros(10),
            saturated_gbps: 45.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        d2h: ThroughputModel {
            latency: Ns::from_micros(10),
            saturated_gbps: 45.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        kernels: gpu_kernels(30.0, 120.0, 90.0, 95.0, 60.0, 700.0),
        alloc_latency: Ns::from_micros(220),
        free_latency: Ns::from_micros(160),
        memory_bytes: 16 * GIB,
    }
}

/// NVIDIA A100 (Jetstream2 node GPU): PCIe4, 40 GB HBM2e.
pub fn a100() -> DeviceSpec {
    DeviceSpec {
        name: "A100",
        arch: Arch::CudaSim,
        h2d: ThroughputModel {
            latency: Ns::from_micros(9),
            saturated_gbps: 24.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        d2h: ThroughputModel {
            latency: Ns::from_micros(9),
            saturated_gbps: 24.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        kernels: gpu_kernels(45.0, 210.0, 150.0, 160.0, 95.0, 1300.0),
        alloc_latency: Ns::from_micros(200),
        free_latency: Ns::from_micros(150),
        memory_bytes: 40 * GIB,
    }
}

/// AMD MI250X (one GCD of a Frontier node GPU): Infinity-Fabric attached.
pub fn mi250x() -> DeviceSpec {
    DeviceSpec {
        name: "MI250X",
        arch: Arch::HipSim,
        h2d: ThroughputModel {
            latency: Ns::from_micros(11),
            saturated_gbps: 36.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        d2h: ThroughputModel {
            latency: Ns::from_micros(11),
            saturated_gbps: 36.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        kernels: gpu_kernels(40.0, 180.0, 130.0, 135.0, 80.0, 1100.0),
        alloc_latency: Ns::from_micros(260),
        free_latency: Ns::from_micros(190),
        memory_bytes: 64 * GIB,
    }
}

/// NVIDIA RTX 3090 (workstation GPU): PCIe3, 24 GB GDDR6X.
pub fn rtx3090() -> DeviceSpec {
    DeviceSpec {
        name: "RTX3090",
        arch: Arch::CudaSim,
        h2d: ThroughputModel {
            latency: Ns::from_micros(12),
            saturated_gbps: 10.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        d2h: ThroughputModel {
            latency: Ns::from_micros(12),
            saturated_gbps: 10.0,
            saturate_bytes: 8 * MIB,
            ramp_floor: 0.1,
        },
        kernels: gpu_kernels(25.0, 110.0, 85.0, 90.0, 55.0, 800.0),
        alloc_latency: Ns::from_micros(240),
        free_latency: Ns::from_micros(170),
        memory_bytes: 24 * GIB,
    }
}

/// All built-in GPU presets.
pub fn all_gpus() -> Vec<DeviceSpec> {
    vec![v100(), a100(), mi250x(), rtx3090()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_plateau_reached_at_threshold() {
        let m = ThroughputModel {
            latency: Ns::ZERO,
            saturated_gbps: 100.0,
            saturate_bytes: 1000,
            ramp_floor: 0.1,
        };
        assert!((m.gbps_at(1000) - 100.0).abs() < 1e-9);
        assert!((m.gbps_at(2000) - 100.0).abs() < 1e-9);
        // At C → 0, throughput is the ramp floor.
        assert!((m.gbps_at(0) - 10.0).abs() < 1e-9);
        // Halfway: 10 + 90*0.5 = 55.
        assert!((m.gbps_at(500) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_monotonic_in_size() {
        let m = v100().h2d;
        let mut last = 0.0;
        for bytes in [0u64, 1 << 10, 1 << 16, 1 << 20, 1 << 23, 1 << 26, 1 << 30] {
            let g = m.gbps_at(bytes);
            assert!(g >= last, "throughput decreased at {bytes}");
            last = g;
        }
    }

    #[test]
    fn duration_includes_latency() {
        let m = ThroughputModel {
            latency: Ns(500),
            saturated_gbps: 1.0, // 1 byte/ns
            saturate_bytes: 1,
            ramp_floor: 1.0,
        };
        assert_eq!(m.duration(1000), Ns(1500));
        assert_eq!(m.duration(0), Ns(500));
    }

    #[test]
    fn flat_model_is_size_independent() {
        let m = ThroughputModel::flat(10.0);
        assert!((m.gbps_at(1) - 10.0).abs() < 1e-9);
        assert!((m.gbps_at(1 << 30) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn presets_have_expected_ordering() {
        // Paper Fig. 12: A100 is the fastest kernel device; V100 PCIe slower
        // than MI250X infinity fabric.
        let (v, a, m) = (v100(), a100(), mi250x());
        assert!(
            a.kernel_model(KernelClass::Zfp).saturated_gbps
                > v.kernel_model(KernelClass::Zfp).saturated_gbps
        );
        // Summit's NVLink V100 has the fastest host link; Frontier's
        // Infinity-Fabric MI250X beats PCIe4 A100.
        assert!(v.h2d.saturated_gbps > m.h2d.saturated_gbps);
        assert!(m.h2d.saturated_gbps > a.h2d.saturated_gbps);
        for spec in all_gpus() {
            for class in KernelClass::ALL {
                assert!(spec.kernel_model(class).saturated_gbps > 0.0);
            }
        }
    }

    #[test]
    fn kernel_model_override() {
        let mut spec = v100();
        spec.set_kernel_model(KernelClass::Other, ThroughputModel::flat(42.0));
        assert!((spec.kernel_model(KernelClass::Other).saturated_gbps - 42.0).abs() < 1e-9);
    }
}
