//! Simulated device memory.
//!
//! Device buffers are plain host allocations tagged with the owning device.
//! Payload closures receive a `&mut MemPool` so copies and kernels operate
//! on real bytes — the compressed output of a simulated pipeline is real,
//! only the *timing* is virtual.

use crate::sim::DeviceId;

/// Handle to a simulated device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub(crate) usize);

#[derive(Debug)]
struct Buffer {
    device: DeviceId,
    data: Vec<u8>,
    freed: bool,
}

/// Backing store for every simulated device buffer in a [`crate::Sim`].
#[derive(Debug, Default)]
pub struct MemPool {
    buffers: Vec<Buffer>,
}

impl MemPool {
    pub(crate) fn new() -> MemPool {
        MemPool { buffers: Vec::new() }
    }

    pub(crate) fn create(&mut self, device: DeviceId, bytes: usize) -> BufId {
        let id = BufId(self.buffers.len());
        self.buffers.push(Buffer {
            device,
            data: vec![0u8; bytes],
            freed: false,
        });
        id
    }

    /// Read access to a buffer's bytes.
    pub fn get(&self, id: BufId) -> &[u8] {
        let b = &self.buffers[id.0];
        assert!(!b.freed, "use of freed device buffer {id:?}");
        &b.data
    }

    /// Write access to a buffer's bytes.
    pub fn get_mut(&mut self, id: BufId) -> &mut [u8] {
        let b = &mut self.buffers[id.0];
        assert!(!b.freed, "use of freed device buffer {id:?}");
        &mut b.data
    }

    /// Two disjoint buffers borrowed simultaneously (src read, dst write).
    pub fn get_pair_mut(&mut self, src: BufId, dst: BufId) -> (&[u8], &mut [u8]) {
        assert_ne!(src.0, dst.0, "src and dst must differ");
        assert!(!self.buffers[src.0].freed && !self.buffers[dst.0].freed);
        let (lo, hi) = if src.0 < dst.0 {
            let (a, b) = self.buffers.split_at_mut(dst.0);
            (&a[src.0], &mut b[0])
        } else {
            let (a, b) = self.buffers.split_at_mut(src.0);
            return (&b[0].data, &mut a[dst.0].data);
        };
        (&lo.data, &mut hi.data)
    }

    /// Resize a buffer (e.g. to the actual compressed size after a kernel).
    pub fn resize(&mut self, id: BufId, bytes: usize) {
        let b = &mut self.buffers[id.0];
        assert!(!b.freed);
        b.data.resize(bytes, 0);
    }

    /// Logical size of a buffer.
    pub fn len(&self, id: BufId) -> usize {
        self.buffers[id.0].data.len()
    }

    pub fn is_empty(&self, id: BufId) -> bool {
        self.len(id) == 0
    }

    /// Which device owns this buffer.
    pub fn device(&self, id: BufId) -> DeviceId {
        self.buffers[id.0].device
    }

    /// Mark a buffer freed; later access panics (use-after-free detector).
    pub fn mark_freed(&mut self, id: BufId) {
        self.buffers[id.0].freed = true;
        self.buffers[id.0].data = Vec::new();
    }

    /// Move a buffer's contents out (typically after the run completes).
    pub fn take(&mut self, id: BufId) -> Vec<u8> {
        let b = &mut self.buffers[id.0];
        assert!(!b.freed, "take of freed device buffer {id:?}");
        std::mem::take(&mut b.data)
    }

    /// Total live (non-freed) bytes currently resident, per device.
    pub fn resident_bytes(&self, device: DeviceId) -> u64 {
        self.buffers
            .iter()
            .filter(|b| !b.freed && b.device == device)
            .map(|b| b.data.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn create_and_rw() {
        let mut pool = MemPool::new();
        let b = pool.create(dev(), 8);
        pool.get_mut(b).copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(pool.get(b)[3], 4);
        assert_eq!(pool.len(b), 8);
    }

    #[test]
    fn pair_mut_copies() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        let b = pool.create(dev(), 4);
        pool.get_mut(a).copy_from_slice(&[9, 8, 7, 6]);
        {
            let (src, dst) = pool.get_pair_mut(a, b);
            dst.copy_from_slice(src);
        }
        assert_eq!(pool.get(b), &[9, 8, 7, 6]);
        // And in the reverse index order.
        {
            let (src, dst) = pool.get_pair_mut(b, a);
            dst.copy_from_slice(src);
        }
        assert_eq!(pool.get(a), &[9, 8, 7, 6]);
    }

    #[test]
    #[should_panic(expected = "freed")]
    fn use_after_free_panics() {
        let mut pool = MemPool::new();
        let b = pool.create(dev(), 4);
        pool.mark_freed(b);
        let _ = pool.get(b);
    }

    #[test]
    fn resident_bytes_tracks_frees() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 100);
        let _b = pool.create(dev(), 50);
        assert_eq!(pool.resident_bytes(dev()), 150);
        pool.mark_freed(a);
        assert_eq!(pool.resident_bytes(dev()), 50);
    }

    #[test]
    fn resize_changes_len() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 10);
        pool.resize(a, 3);
        assert_eq!(pool.len(a), 3);
        assert!(!pool.is_empty(a));
    }
}
