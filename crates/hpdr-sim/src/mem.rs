//! Simulated device memory.
//!
//! Device buffers are plain host allocations tagged with the owning device.
//! Payload closures receive a `&mut MemPool` so copies and kernels operate
//! on real bytes — the compressed output of a simulated pipeline is real,
//! only the *timing* is virtual.
//!
//! While a payload runs inside [`crate::Sim::run`], the pool carries an
//! **effect guard** (debug builds): every access is checked against the
//! running op's declared [`crate::Effects`], and any undeclared read,
//! write, or free panics with the op's label. This keeps the static
//! analyzer's input honest — a payload cannot touch a buffer the
//! analyzer does not know about.

use crate::effects::Effects;
use crate::sim::DeviceId;

/// Handle to a simulated device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub(crate) usize);

impl BufId {
    /// Stable dense index of this buffer (for reports and bitsets).
    pub fn index(&self) -> usize {
        self.0
    }

    /// Rebuild a handle from [`BufId::index`] (fixtures and reports only —
    /// the pool is the sole authority on which indices are live).
    pub fn from_index(i: usize) -> BufId {
        BufId(i)
    }
}

#[derive(Debug)]
struct Buffer {
    device: DeviceId,
    data: Vec<u8>,
    freed: bool,
}

/// What the effect guard does with each access it intercepts.
#[derive(Debug)]
enum GuardMode {
    /// Panic on any access outside the declared [`Effects`] (debug-build
    /// enforcement — keeps payloads honest during normal runs).
    Enforce,
    /// Record every access into a shadow [`Effects`] set without
    /// enforcing anything (the `hpdr audit` observation mode: the
    /// recorded set is later diffed against the declaration, so the
    /// payload must be allowed to stray in order to be caught).
    Record(std::cell::RefCell<Effects>),
}

/// Effect guard installed for the duration of one payload execution.
#[derive(Debug)]
struct Guard {
    label: String,
    effects: Effects,
    mode: GuardMode,
}

/// Backing store for every simulated device buffer in a [`crate::Sim`].
#[derive(Debug, Default)]
pub struct MemPool {
    buffers: Vec<Buffer>,
    guard: Option<Guard>,
}

impl MemPool {
    pub(crate) fn new() -> MemPool {
        MemPool {
            buffers: Vec::new(),
            guard: None,
        }
    }

    pub(crate) fn create(&mut self, device: DeviceId, bytes: usize) -> BufId {
        let id = BufId(self.buffers.len());
        self.buffers.push(Buffer {
            device,
            data: vec![0u8; bytes],
            freed: false,
        });
        id
    }

    /// Install the effect guard for one payload run (debug enforcement).
    pub(crate) fn begin_payload(&mut self, label: &str, effects: &Effects) {
        self.guard = Some(Guard {
            label: label.to_string(),
            effects: effects.clone(),
            mode: GuardMode::Enforce,
        });
    }

    /// Install the shadow-access recorder for one payload run: every
    /// read/write/free is logged instead of enforced, and
    /// [`MemPool::end_payload`] returns the observed set. Freed-buffer
    /// and bounds assertions still apply — the recorder observes *which*
    /// buffers a payload touches, it does not suspend memory safety.
    pub(crate) fn begin_payload_recording(&mut self, label: &str, effects: &Effects) {
        self.guard = Some(Guard {
            label: label.to_string(),
            effects: effects.clone(),
            mode: GuardMode::Record(std::cell::RefCell::new(Effects::none())),
        });
    }

    /// Remove the effect guard after a payload run; in recording mode the
    /// observed access set is returned.
    pub(crate) fn end_payload(&mut self) -> Option<Effects> {
        match self.guard.take() {
            Some(Guard {
                mode: GuardMode::Record(obs),
                ..
            }) => Some(obs.into_inner()),
            _ => None,
        }
    }

    fn check_read(&self, id: BufId) {
        if let Some(g) = &self.guard {
            match &g.mode {
                GuardMode::Enforce => assert!(
                    g.effects.may_read(id),
                    "op '{}' reads {id:?} without declaring it in its effects",
                    g.label
                ),
                GuardMode::Record(obs) => {
                    let mut o = obs.borrow_mut();
                    if !o.reads.contains(&id) {
                        o.reads.push(id);
                    }
                }
            }
        }
    }

    fn check_write(&self, id: BufId) {
        if let Some(g) = &self.guard {
            match &g.mode {
                GuardMode::Enforce => assert!(
                    g.effects.may_write(id),
                    "op '{}' writes {id:?} without declaring it in its effects",
                    g.label
                ),
                GuardMode::Record(obs) => {
                    let mut o = obs.borrow_mut();
                    if !o.writes.contains(&id) {
                        o.writes.push(id);
                    }
                }
            }
        }
    }

    fn check_free(&self, id: BufId) {
        if let Some(g) = &self.guard {
            match &g.mode {
                GuardMode::Enforce => assert!(
                    g.effects.may_free(id),
                    "op '{}' frees {id:?} without declaring it in its effects",
                    g.label
                ),
                GuardMode::Record(obs) => {
                    let mut o = obs.borrow_mut();
                    if !o.frees.contains(&id) {
                        o.frees.push(id);
                    }
                }
            }
        }
    }

    /// Read access to a buffer's bytes.
    pub fn get(&self, id: BufId) -> &[u8] {
        self.check_read(id);
        let b = &self.buffers[id.0];
        assert!(!b.freed, "use of freed device buffer {id:?}");
        &b.data
    }

    /// Write access to a buffer's bytes.
    pub fn get_mut(&mut self, id: BufId) -> &mut [u8] {
        self.check_write(id);
        let b = &mut self.buffers[id.0];
        assert!(!b.freed, "use of freed device buffer {id:?}");
        &mut b.data
    }

    /// Two disjoint buffers borrowed simultaneously (src read, dst write).
    pub fn get_pair_mut(&mut self, src: BufId, dst: BufId) -> (&[u8], &mut [u8]) {
        assert_ne!(src.0, dst.0, "src and dst must differ");
        self.check_read(src);
        self.check_write(dst);
        assert!(
            !self.buffers[src.0].freed && !self.buffers[dst.0].freed,
            "use of freed device buffer (src {src:?} / dst {dst:?})"
        );
        let (lo, hi) = if src.0 < dst.0 {
            let (a, b) = self.buffers.split_at_mut(dst.0);
            (&a[src.0], &mut b[0])
        } else {
            let (a, b) = self.buffers.split_at_mut(src.0);
            return (&b[0].data, &mut a[dst.0].data);
        };
        (&lo.data, &mut hi.data)
    }

    /// Resize a buffer (e.g. to the actual compressed size after a kernel).
    pub fn resize(&mut self, id: BufId, bytes: usize) {
        self.check_write(id);
        let b = &mut self.buffers[id.0];
        assert!(!b.freed, "resize of freed device buffer {id:?}");
        b.data.resize(bytes, 0);
    }

    /// Logical size of a buffer. Hard error on freed buffers: a freed
    /// buffer has no length, and code asking for one is reading stale
    /// state (the runtime check backing the analyzer's UAF lint).
    pub fn len(&self, id: BufId) -> usize {
        let b = &self.buffers[id.0];
        assert!(!b.freed, "len of freed device buffer {id:?}");
        b.data.len()
    }

    pub fn is_empty(&self, id: BufId) -> bool {
        self.len(id) == 0
    }

    /// Which device owns this buffer (valid even after a free — the
    /// handle's placement is immutable metadata, not contents).
    pub fn device(&self, id: BufId) -> DeviceId {
        self.buffers[id.0].device
    }

    /// Whether this buffer has been freed.
    pub fn is_freed(&self, id: BufId) -> bool {
        self.buffers[id.0].freed
    }

    /// Mark a buffer freed; later content access panics, and a second
    /// free panics (double-free detector backing the analyzer).
    pub fn mark_freed(&mut self, id: BufId) {
        self.check_free(id);
        let b = &mut self.buffers[id.0];
        assert!(!b.freed, "double free of device buffer {id:?}");
        b.freed = true;
        b.data = Vec::new();
    }

    /// Move a buffer's contents out (typically after the run completes).
    pub fn take(&mut self, id: BufId) -> Vec<u8> {
        self.check_write(id);
        let b = &mut self.buffers[id.0];
        assert!(!b.freed, "take of freed device buffer {id:?}");
        std::mem::take(&mut b.data)
    }

    /// Total live (non-freed) bytes currently resident, per device.
    pub fn resident_bytes(&self, device: DeviceId) -> u64 {
        self.buffers
            .iter()
            .filter(|b| !b.freed && b.device == device)
            .map(|b| b.data.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn create_and_rw() {
        let mut pool = MemPool::new();
        let b = pool.create(dev(), 8);
        pool.get_mut(b).copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(pool.get(b)[3], 4);
        assert_eq!(pool.len(b), 8);
    }

    #[test]
    fn pair_mut_copies() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        let b = pool.create(dev(), 4);
        pool.get_mut(a).copy_from_slice(&[9, 8, 7, 6]);
        {
            let (src, dst) = pool.get_pair_mut(a, b);
            dst.copy_from_slice(src);
        }
        assert_eq!(pool.get(b), &[9, 8, 7, 6]);
        // And in the reverse index order.
        {
            let (src, dst) = pool.get_pair_mut(b, a);
            dst.copy_from_slice(src);
        }
        assert_eq!(pool.get(a), &[9, 8, 7, 6]);
    }

    #[test]
    #[should_panic(expected = "freed")]
    fn use_after_free_panics() {
        let mut pool = MemPool::new();
        let b = pool.create(dev(), 4);
        pool.mark_freed(b);
        let _ = pool.get(b);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = MemPool::new();
        let b = pool.create(dev(), 4);
        pool.mark_freed(b);
        pool.mark_freed(b);
    }

    #[test]
    #[should_panic(expected = "len of freed")]
    fn len_of_freed_panics() {
        let mut pool = MemPool::new();
        let b = pool.create(dev(), 4);
        pool.mark_freed(b);
        let _ = pool.len(b);
    }

    #[test]
    fn resident_bytes_tracks_frees() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 100);
        let _b = pool.create(dev(), 50);
        assert_eq!(pool.resident_bytes(dev()), 150);
        pool.mark_freed(a);
        assert!(pool.is_freed(a));
        assert_eq!(pool.resident_bytes(dev()), 50);
    }

    #[test]
    fn resize_changes_len() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 10);
        pool.resize(a, 3);
        assert_eq!(pool.len(a), 3);
        assert!(!pool.is_empty(a));
    }

    #[test]
    fn guard_allows_declared_access() {
        let mut pool = MemPool::new();
        let src = pool.create(dev(), 4);
        let dst = pool.create(dev(), 4);
        pool.begin_payload("copy", &Effects::read(src).and_write(dst));
        let (s, d) = pool.get_pair_mut(src, dst);
        d.copy_from_slice(s);
        pool.end_payload();
        // Guard removed: undeclared access is fine again.
        let _ = pool.get(src);
    }

    #[test]
    #[should_panic(expected = "without declaring")]
    fn guard_rejects_undeclared_read() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        pool.begin_payload("sneaky", &Effects::none());
        let _ = pool.get(a);
    }

    #[test]
    #[should_panic(expected = "without declaring")]
    fn guard_rejects_write_via_read_declaration() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        pool.begin_payload("read-only", &Effects::read(a));
        let _ = pool.get_mut(a);
    }

    #[test]
    fn recorder_observes_undeclared_accesses_without_panicking() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        let b = pool.create(dev(), 4);
        let c = pool.create(dev(), 4);
        // Declared effects say "read a" only; the payload strays.
        pool.begin_payload_recording("sneaky", &Effects::read(a));
        let _ = pool.get(a);
        let _ = pool.get(a); // deduplicated
        pool.get_mut(b).fill(1);
        pool.mark_freed(c);
        let obs = pool.end_payload().expect("recording mode returns the log");
        assert_eq!(obs.reads, vec![a]);
        assert_eq!(obs.writes, vec![b]);
        assert_eq!(obs.frees, vec![c]);
    }

    #[test]
    fn recorder_logs_pair_and_resize_accesses() {
        let mut pool = MemPool::new();
        let src = pool.create(dev(), 4);
        let dst = pool.create(dev(), 4);
        pool.begin_payload_recording("copy", &Effects::none());
        {
            let (s, d) = pool.get_pair_mut(src, dst);
            d.copy_from_slice(s);
        }
        pool.resize(dst, 2);
        let obs = pool.end_payload().unwrap();
        assert_eq!(obs.reads, vec![src]);
        assert_eq!(obs.writes, vec![dst]);
        assert!(obs.frees.is_empty());
    }

    #[test]
    #[should_panic(expected = "freed")]
    fn recorder_still_enforces_use_after_free() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        pool.mark_freed(a);
        pool.begin_payload_recording("uaf", &Effects::none());
        let _ = pool.get(a);
    }

    #[test]
    fn enforce_mode_end_payload_returns_none() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        pool.begin_payload("ok", &Effects::read(a));
        let _ = pool.get(a);
        assert!(pool.end_payload().is_none());
    }

    #[test]
    #[should_panic(expected = "without declaring")]
    fn guard_rejects_undeclared_free() {
        let mut pool = MemPool::new();
        let a = pool.create(dev(), 4);
        pool.begin_payload("no-free", &Effects::read(a));
        pool.mark_freed(a);
    }
}
