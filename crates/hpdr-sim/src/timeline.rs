//! Timeline records and derived metrics (makespan, engine busy time,
//! overlap ratio, per-category breakdowns).
//!
//! The overlap ratio follows the paper's definition (§V-C):
//!
//! ```text
//! Overlap = Total overlapped H2D and D2H time / Total H2D and D2H time
//! ```
//!
//! where a DMA-busy instant counts as *overlapped* if the owning device is
//! concurrently doing anything else (compute, or the opposite-direction
//! DMA).

use crate::sim::{DeviceId, Engine, OpId};
use crate::spec::KernelClass;
use crate::time::Ns;

/// One scheduled operation instance.
#[derive(Debug, Clone)]
pub struct OpRecord {
    pub label: String,
    pub engine: Engine,
    pub start: Ns,
    pub end: Ns,
    pub bytes: u64,
    pub class: Option<KernelClass>,
}

impl OpRecord {
    pub fn duration(&self) -> Ns {
        self.end - self.start
    }
}

/// Immutable result of a [`crate::Sim::run`].
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    records: Vec<OpRecord>,
}

/// High-level categories for time-breakdown reporting (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    H2D,
    D2H,
    Compute,
    MemMgmt,
    Host,
}

impl Category {
    pub const ALL: [Category; 5] = [
        Category::H2D,
        Category::D2H,
        Category::Compute,
        Category::MemMgmt,
        Category::Host,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Category::H2D => "H2D copy",
            Category::D2H => "D2H copy",
            Category::Compute => "compute",
            Category::MemMgmt => "mem mgmt",
            Category::Host => "host",
        }
    }
}

fn categorize(e: Engine) -> Category {
    match e {
        Engine::H2D(_) => Category::H2D,
        Engine::D2H(_) => Category::D2H,
        Engine::Compute(_) => Category::Compute,
        Engine::Runtime(_) => Category::MemMgmt,
        Engine::Staging(_) => Category::Host,
        Engine::Host => Category::Host,
    }
}

/// Merge possibly-overlapping intervals into a disjoint sorted list.
fn merge(mut iv: Vec<(Ns, Ns)>) -> Vec<(Ns, Ns)> {
    iv.sort();
    let mut out: Vec<(Ns, Ns)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        if s >= e {
            continue;
        }
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total(iv: &[(Ns, Ns)]) -> Ns {
    iv.iter().map(|&(s, e)| e - s).sum()
}

/// Total length of the intersection of two disjoint sorted interval lists.
fn intersection(a: &[(Ns, Ns)], b: &[(Ns, Ns)]) -> Ns {
    let (mut i, mut j) = (0, 0);
    let mut acc = Ns::ZERO;
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if s < e {
            acc += e - s;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

impl Timeline {
    pub(crate) fn new(records: Vec<OpRecord>) -> Timeline {
        Timeline { records }
    }

    pub fn record(&self, id: OpId) -> &OpRecord {
        &self.records[id.0]
    }

    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// End of the last op (total virtual time of the run).
    pub fn makespan(&self) -> Ns {
        self.records.iter().map(|r| r.end).max().unwrap_or(Ns::ZERO)
    }

    /// Total busy time of ops matching a predicate (sum of durations; ops
    /// on the same engine never overlap by construction).
    pub fn busy_where<F: Fn(&OpRecord) -> bool>(&self, pred: F) -> Ns {
        self.records
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.duration())
            .sum()
    }

    /// Busy time of a specific engine.
    pub fn engine_busy(&self, engine: Engine) -> Ns {
        self.busy_where(|r| r.engine == engine)
    }

    /// Busy intervals of a specific engine, merged/disjoint.
    fn engine_intervals(&self, engine: Engine) -> Vec<(Ns, Ns)> {
        merge(
            self.records
                .iter()
                .filter(|r| r.engine == engine)
                .map(|r| (r.start, r.end))
                .collect(),
        )
    }

    /// Paper §V-C overlap ratio for one device.
    ///
    /// Returns `None` if the device performed no DMA at all.
    pub fn overlap_ratio(&self, dev: DeviceId) -> Option<f64> {
        let h2d = self.engine_intervals(Engine::H2D(dev));
        let d2h = self.engine_intervals(Engine::D2H(dev));
        let compute = self.engine_intervals(Engine::Compute(dev));
        let dma_total = total(&h2d) + total(&d2h);
        if dma_total.is_zero() {
            return None;
        }
        // H2D instants overlapped with (compute ∪ D2H):
        let other_for_h2d = merge([compute.clone(), d2h.clone()].concat());
        let other_for_d2h = merge([compute, h2d.clone()].concat());
        let overlapped = intersection(&h2d, &other_for_h2d) + intersection(&d2h, &other_for_d2h);
        Some(overlapped.0 as f64 / dma_total.0 as f64)
    }

    /// Per-category busy time (paper Fig. 1 style breakdown).
    pub fn breakdown(&self) -> Vec<(Category, Ns)> {
        Category::ALL
            .iter()
            .map(|&c| (c, self.busy_where(|r| categorize(r.engine) == c)))
            .collect()
    }

    /// Fraction of total busy time spent on memory operations
    /// (H2D + D2H + host buffer copies + mem-mgmt) — the paper's
    /// "34–89%" metric.
    pub fn memory_fraction(&self) -> f64 {
        let mut mem = Ns::ZERO;
        let mut all = Ns::ZERO;
        for r in &self.records {
            let d = r.duration();
            all += d;
            match categorize(r.engine) {
                Category::H2D | Category::D2H | Category::MemMgmt | Category::Host => mem += d,
                _ => {}
            }
        }
        if all.is_zero() {
            0.0
        } else {
            mem.0 as f64 / all.0 as f64
        }
    }

    /// Throughput in GB/s given a logical byte count for the whole run.
    pub fn throughput_gbps(&self, bytes: u64) -> f64 {
        crate::time::gbps(bytes, self.makespan())
    }

    /// Concatenate another timeline (e.g. from an independent device run),
    /// preserving both sets of records. Times are *not* shifted.
    pub fn extend(&mut self, other: Timeline) {
        self.records.extend(other.records);
    }

    /// Render a compact textual Gantt-ish dump, for debugging/reports.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for r in &self.records {
            let _ = writeln!(
                s,
                "{:>12} .. {:>12}  {:?}  {} ({} B)",
                r.start.to_string(),
                r.end.to_string(),
                r.engine,
                r.label,
                r.bytes
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(engine: Engine, start: u64, end: u64) -> OpRecord {
        OpRecord {
            label: String::new(),
            engine,
            start: Ns(start),
            end: Ns(end),
            bytes: 0,
            class: None,
        }
    }

    const D: DeviceId = DeviceId(0);

    #[test]
    fn merge_coalesces_adjacent_and_overlapping() {
        let m = merge(vec![
            (Ns(5), Ns(10)),
            (Ns(0), Ns(5)),
            (Ns(8), Ns(12)),
            (Ns(20), Ns(21)),
        ]);
        assert_eq!(m, vec![(Ns(0), Ns(12)), (Ns(20), Ns(21))]);
    }

    #[test]
    fn intersection_counts_shared_time() {
        let a = vec![(Ns(0), Ns(10)), (Ns(20), Ns(30))];
        let b = vec![(Ns(5), Ns(25))];
        assert_eq!(intersection(&a, &b), Ns(10)); // 5..10 and 20..25
    }

    #[test]
    fn makespan_is_last_end() {
        let tl = Timeline::new(vec![
            rec(Engine::Compute(D), 0, 10),
            rec(Engine::H2D(D), 3, 25),
        ]);
        assert_eq!(tl.makespan(), Ns(25));
    }

    #[test]
    fn full_overlap_ratio_is_one() {
        let tl = Timeline::new(vec![
            rec(Engine::Compute(D), 0, 100),
            rec(Engine::H2D(D), 10, 40),
            rec(Engine::D2H(D), 50, 90),
        ]);
        let r = tl.overlap_ratio(D).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "r={r}");
    }

    #[test]
    fn no_overlap_ratio_is_zero() {
        let tl = Timeline::new(vec![
            rec(Engine::H2D(D), 0, 10),
            rec(Engine::Compute(D), 10, 20),
            rec(Engine::D2H(D), 20, 30),
        ]);
        let r = tl.overlap_ratio(D).unwrap();
        assert!(r.abs() < 1e-12, "r={r}");
    }

    #[test]
    fn partial_overlap_ratio() {
        // H2D busy 0..20; compute busy 10..30 ⇒ 10 of 20 DMA ns overlapped.
        let tl = Timeline::new(vec![
            rec(Engine::H2D(D), 0, 20),
            rec(Engine::Compute(D), 10, 30),
        ]);
        let r = tl.overlap_ratio(D).unwrap();
        assert!((r - 0.5).abs() < 1e-12, "r={r}");
    }

    #[test]
    fn h2d_overlapping_d2h_counts() {
        let tl = Timeline::new(vec![rec(Engine::H2D(D), 0, 10), rec(Engine::D2H(D), 0, 10)]);
        assert!((tl.overlap_ratio(D).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_none_without_dma() {
        let tl = Timeline::new(vec![rec(Engine::Compute(D), 0, 10)]);
        assert!(tl.overlap_ratio(D).is_none());
    }

    #[test]
    fn memory_fraction_counts_dma_and_mgmt() {
        let tl = Timeline::new(vec![
            rec(Engine::H2D(D), 0, 30),
            rec(Engine::Compute(D), 30, 40),
            rec(Engine::Runtime(crate::sim::RuntimeId(0)), 40, 50),
        ]);
        // mem = 30 + 10; all = 50.
        assert!((tl.memory_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_by_category() {
        let tl = Timeline::new(vec![
            rec(Engine::H2D(D), 0, 5),
            rec(Engine::H2D(D), 5, 9),
            rec(Engine::Compute(D), 0, 7),
        ]);
        let b = tl.breakdown();
        let h2d = b.iter().find(|(c, _)| *c == Category::H2D).unwrap().1;
        let comp = b.iter().find(|(c, _)| *c == Category::Compute).unwrap().1;
        assert_eq!(h2d, Ns(9));
        assert_eq!(comp, Ns(7));
    }
}

impl Timeline {
    /// Export the timeline as Chrome trace-event JSON (load in
    /// `chrome://tracing` or Perfetto): one row per engine, one complete
    /// event per op. Times are virtual nanoseconds reported as
    /// microseconds (the trace format's unit).
    pub fn to_chrome_trace(&self) -> String {
        use std::fmt::Write as _;
        fn engine_row(e: Engine) -> (u64, String) {
            match e {
                Engine::H2D(d) => (d.0 as u64 * 10 + 1, format!("dev{} H2D", d.0)),
                Engine::D2H(d) => (d.0 as u64 * 10 + 2, format!("dev{} D2H", d.0)),
                Engine::Compute(d) => (d.0 as u64 * 10 + 3, format!("dev{} compute", d.0)),
                Engine::Staging(d) => (d.0 as u64 * 10 + 4, format!("dev{} staging", d.0)),
                Engine::Runtime(r) => (9000 + r.0 as u64, format!("runtime{} lock", r.0)),
                Engine::Host => (9999, "host".to_string()),
            }
        }
        let mut out = String::from("[\n");
        let mut rows: Vec<(u64, String)> =
            self.records.iter().map(|r| engine_row(r.engine)).collect();
        rows.sort();
        rows.dedup();
        for (tid, name) in &rows {
            let _ = writeln!(
                out,
                "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}},"
            );
        }
        for (i, r) in self.records.iter().enumerate() {
            let (tid, _) = engine_row(r.engine);
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "  {{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"bytes\":{}}}}}{comma}",
                r.label.replace('"', "'"),
                r.start.0 as f64 / 1000.0,
                r.duration().0 as f64 / 1000.0,
                r.bytes
            );
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::sim::RuntimeId;

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let tl = Timeline::new(vec![
            OpRecord {
                label: "H2D[0]".into(),
                engine: Engine::H2D(DeviceId(0)),
                start: Ns(0),
                end: Ns(1500),
                bytes: 1024,
                class: None,
            },
            OpRecord {
                label: "alloc \"x\"".into(),
                engine: Engine::Runtime(RuntimeId(0)),
                start: Ns(100),
                end: Ns(300),
                bytes: 0,
                class: None,
            },
        ]);
        let json = tl.to_chrome_trace();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("dev0 H2D"));
        assert!(json.contains("runtime0 lock"));
        // Quotes in labels are sanitized.
        assert!(json.contains("alloc 'x'"));
        // No trailing comma before the closing bracket.
        assert!(!json.contains("},\n]"));
    }

    #[test]
    fn chrome_trace_empty_timeline() {
        let tl = Timeline::new(vec![]);
        let json = tl.to_chrome_trace();
        assert_eq!(json, "[\n]\n");
    }
}
