//! # hpdr-sim — virtual-time machine model
//!
//! The HPDR paper evaluates on NVIDIA and AMD GPUs. This reproduction has
//! no GPU hardware, so the CUDA/HIP device adapters are backed by a
//! **deterministic virtual-time discrete-event simulator**: kernels and
//! DMA copies execute *for real* on the host (payload closures moving real
//! bytes through a [`mem::MemPool`]), while their *timing* is charged
//! against calibrated engine models ([`spec::DeviceSpec`]).
//!
//! This preserves every effect the paper studies:
//!
//! * host↔device transfer vs. compute overlap (two DMA engines + one
//!   compute engine per device, paper Fig. 8);
//! * pipeline depth & chunk-size trade-offs (per-size roofline throughput,
//!   paper Fig. 11 / Algorithm 4);
//! * allocation contention between GPUs sharing one runtime
//!   (a node-wide [`sim::Engine::Runtime`] lock engine, paper §III-B);
//! * launch-order effects (engines execute in submission order, so the
//!   Fig. 9 dependency/ordering optimizations are directly expressible).
//!
//! Everything is single-threaded and deterministic, which makes pipeline
//! schedules unit-testable down to the nanosecond.

pub mod effects;
pub mod horizon;
pub mod mem;
pub mod sim;
pub mod spec;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod verify;

pub use effects::Effects;
pub use horizon::BusyHorizon;
pub use mem::{BufId, MemPool};
pub use sim::{
    kind_of, Cost, DeviceId, Engine, OpAudit, OpId, OpSpec, Payload, QueueId, RuntimeId, Sim,
};
pub use spec::{
    a100, all_gpus, mi250x, rtx3090, v100, Arch, DeviceSpec, KernelClass, ThroughputModel,
};
pub use time::{gbps, Ns};
pub use timeline::{Category, OpRecord, Timeline};
pub use trace::{Recorder, RuntimeStats, SpanEvent, SpanRecord, Trace};
pub use verify::{analyze, Dag, DagOp, Hazard, OpKind, VerifyReport};
