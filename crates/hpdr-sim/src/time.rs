//! Virtual time representation.
//!
//! All simulated activity is accounted in virtual nanoseconds. One byte per
//! nanosecond equals exactly 1 GB/s, which makes bandwidth arithmetic
//! trivially readable: `bytes as f64 / gbps` is a duration in nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A span or instant of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    pub const ZERO: Ns = Ns(0);

    /// Construct from seconds.
    pub fn from_secs_f64(s: f64) -> Ns {
        Ns((s * 1e9).round().max(0.0) as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// The span as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Ns) -> Ns {
        Ns(self.0.saturating_sub(other.0))
    }

    pub fn max(self, other: Ns) -> Ns {
        Ns(self.0.max(other.0))
    }

    pub fn min(self, other: Ns) -> Ns {
        Ns(self.0.min(other.0))
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        Ns(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v >= 1_000_000_000 {
            write!(f, "{:.3}s", v as f64 / 1e9)
        } else if v >= 1_000_000 {
            write!(f, "{:.3}ms", v as f64 / 1e6)
        } else if v >= 1_000 {
            write!(f, "{:.3}us", v as f64 / 1e3)
        } else {
            write!(f, "{v}ns")
        }
    }
}

/// Throughput helper: gigabytes per second over a span.
pub fn gbps(bytes: u64, elapsed: Ns) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    bytes as f64 / elapsed.0 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_display_units() {
        assert_eq!(Ns(12).to_string(), "12ns");
        assert_eq!(Ns(12_000).to_string(), "12.000us");
        assert_eq!(Ns(12_000_000).to_string(), "12.000ms");
        assert_eq!(Ns(12_000_000_000).to_string(), "12.000s");
    }

    #[test]
    fn ns_arithmetic() {
        assert_eq!(Ns(5) + Ns(7), Ns(12));
        assert_eq!(Ns(7) - Ns(5), Ns(2));
        assert_eq!(Ns(5).saturating_sub(Ns(7)), Ns::ZERO);
        assert_eq!(Ns::from_millis(1), Ns(1_000_000));
        assert_eq!(Ns::from_micros(1), Ns(1_000));
        assert_eq!(Ns::from_secs_f64(0.5), Ns(500_000_000));
    }

    #[test]
    fn one_byte_per_ns_is_one_gbps() {
        assert!((gbps(1_000, Ns(1_000)) - 1.0).abs() < 1e-12);
        assert!((gbps(16_000, Ns(1_000)) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn gbps_of_zero_span_is_infinite() {
        assert!(gbps(10, Ns::ZERO).is_infinite());
    }

    #[test]
    fn ns_sum() {
        let total: Ns = [Ns(1), Ns(2), Ns(3)].into_iter().sum();
        assert_eq!(total, Ns(6));
    }
}
