//! Per-device virtual occupancy queue.
//!
//! A [`BusyHorizon`] models one device's launch queue as seen by a
//! scheduler living *above* the op-level simulator: launches are whole
//! `Sim` runs (or any other block of work with a known virtual
//! duration), and the horizon serializes them — a launch starts at
//! `max(now, busy_until)` and occupies the device until `start +
//! duration`. It accumulates the busy integral so per-device utilization
//! over any makespan is exact, and it is plain deterministic arithmetic
//! on [`Ns`], which is what makes scheduler reports byte-reproducible.

use crate::time::Ns;

/// One device's serialized launch horizon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusyHorizon {
    /// Virtual time at which the device next becomes free.
    busy_until: Ns,
    /// Total busy time integrated over all scheduled launches.
    busy: Ns,
    /// Number of launches scheduled.
    launches: u64,
    /// Duration of the most recent launch (the one ending at
    /// `busy_until`), so busy time can be split around an instant.
    last: Ns,
}

impl BusyHorizon {
    pub fn new() -> BusyHorizon {
        BusyHorizon::default()
    }

    /// Schedule a launch of `duration` requested at `now`; returns its
    /// `(start, end)` window. The launch begins when both the requester
    /// and the device are ready.
    pub fn schedule(&mut self, now: Ns, duration: Ns) -> (Ns, Ns) {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy += duration;
        self.launches += 1;
        self.last = duration;
        (start, end)
    }

    /// Busy time accumulated strictly before instant `t`, for sampling
    /// utilization mid-run. Only the most recent launch can straddle
    /// `t`, so this is exact whenever `t` is not earlier than that
    /// launch's start — always the case for the serve scheduler, which
    /// samples at the current virtual time and never dispatches a
    /// launch to start in the future. For older `t` the earlier
    /// launches are not reconstructed and the result over-counts.
    pub fn busy_before(self, t: Ns) -> Ns {
        if self.busy_until <= t {
            return self.busy;
        }
        // The launch in progress at `t` is the last one scheduled;
        // subtract the part of it that lies at or after `t`.
        self.busy
            .saturating_sub((self.busy_until - t).min(self.last))
    }

    /// When the device next becomes free.
    pub fn busy_until(self) -> Ns {
        self.busy_until
    }

    /// Whether the device is free at `now`.
    pub fn is_free_at(self, now: Ns) -> bool {
        self.busy_until <= now
    }

    /// Total busy time scheduled so far.
    pub fn busy(self) -> Ns {
        self.busy
    }

    /// Launches scheduled so far.
    pub fn launches(self) -> u64 {
        self.launches
    }

    /// Busy fraction of `makespan` (0 when no time has passed).
    pub fn utilization(self, makespan: Ns) -> f64 {
        if makespan.is_zero() {
            return 0.0;
        }
        self.busy.0 as f64 / makespan.0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_launches_serialize() {
        let mut h = BusyHorizon::new();
        let (s1, e1) = h.schedule(Ns(100), Ns(50));
        assert_eq!((s1, e1), (Ns(100), Ns(150)));
        // Requested while busy: waits for the device.
        let (s2, e2) = h.schedule(Ns(120), Ns(30));
        assert_eq!((s2, e2), (Ns(150), Ns(180)));
        // Requested after an idle gap: starts immediately.
        let (s3, e3) = h.schedule(Ns(500), Ns(10));
        assert_eq!((s3, e3), (Ns(500), Ns(510)));
        assert_eq!(h.busy(), Ns(90));
        assert_eq!(h.launches(), 3);
        assert_eq!(h.busy_until(), Ns(510));
    }

    #[test]
    fn utilization_is_busy_over_makespan() {
        let mut h = BusyHorizon::new();
        h.schedule(Ns::ZERO, Ns(250));
        assert!((h.utilization(Ns(1000)) - 0.25).abs() < 1e-12);
        assert_eq!(BusyHorizon::new().utilization(Ns::ZERO), 0.0);
    }

    #[test]
    fn busy_before_splits_the_running_launch() {
        // Sampled the way the serve scheduler does: `t` never runs
        // behind the start of the most recent launch.
        let mut h = BusyHorizon::new();
        assert_eq!(h.busy_before(Ns(0)), Ns::ZERO);
        h.schedule(Ns(0), Ns(100)); // busy [0, 100)
        assert_eq!(h.busy_before(Ns(60)), Ns(60), "mid first launch");
        assert_eq!(h.busy_before(Ns(150)), Ns(100), "idle gap");
        h.schedule(Ns(200), Ns(50)); // busy [200, 250)
        assert_eq!(h.busy_before(Ns(200)), Ns(100), "second launch starts");
        assert_eq!(h.busy_before(Ns(225)), Ns(125), "mid second launch");
        assert_eq!(h.busy_before(Ns(250)), Ns(150));
        assert_eq!(h.busy_before(Ns(9_999)), Ns(150), "past the horizon");
    }

    #[test]
    fn freeness_tracks_horizon() {
        let mut h = BusyHorizon::new();
        assert!(h.is_free_at(Ns::ZERO));
        h.schedule(Ns::ZERO, Ns(40));
        assert!(!h.is_free_at(Ns(39)));
        assert!(h.is_free_at(Ns(40)));
    }
}
