//! Per-device virtual occupancy queue.
//!
//! A [`BusyHorizon`] models one device's launch queue as seen by a
//! scheduler living *above* the op-level simulator: launches are whole
//! `Sim` runs (or any other block of work with a known virtual
//! duration), and the horizon serializes them — a launch starts at
//! `max(now, busy_until)` and occupies the device until `start +
//! duration`. It accumulates the busy integral so per-device utilization
//! over any makespan is exact, and it is plain deterministic arithmetic
//! on [`Ns`], which is what makes scheduler reports byte-reproducible.

use crate::time::Ns;

/// One device's serialized launch horizon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusyHorizon {
    /// Virtual time at which the device next becomes free.
    busy_until: Ns,
    /// Total busy time integrated over all scheduled launches.
    busy: Ns,
    /// Number of launches scheduled.
    launches: u64,
}

impl BusyHorizon {
    pub fn new() -> BusyHorizon {
        BusyHorizon::default()
    }

    /// Schedule a launch of `duration` requested at `now`; returns its
    /// `(start, end)` window. The launch begins when both the requester
    /// and the device are ready.
    pub fn schedule(&mut self, now: Ns, duration: Ns) -> (Ns, Ns) {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy += duration;
        self.launches += 1;
        (start, end)
    }

    /// When the device next becomes free.
    pub fn busy_until(self) -> Ns {
        self.busy_until
    }

    /// Whether the device is free at `now`.
    pub fn is_free_at(self, now: Ns) -> bool {
        self.busy_until <= now
    }

    /// Total busy time scheduled so far.
    pub fn busy(self) -> Ns {
        self.busy
    }

    /// Launches scheduled so far.
    pub fn launches(self) -> u64 {
        self.launches
    }

    /// Busy fraction of `makespan` (0 when no time has passed).
    pub fn utilization(self, makespan: Ns) -> f64 {
        if makespan.is_zero() {
            return 0.0;
        }
        self.busy.0 as f64 / makespan.0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_launches_serialize() {
        let mut h = BusyHorizon::new();
        let (s1, e1) = h.schedule(Ns(100), Ns(50));
        assert_eq!((s1, e1), (Ns(100), Ns(150)));
        // Requested while busy: waits for the device.
        let (s2, e2) = h.schedule(Ns(120), Ns(30));
        assert_eq!((s2, e2), (Ns(150), Ns(180)));
        // Requested after an idle gap: starts immediately.
        let (s3, e3) = h.schedule(Ns(500), Ns(10));
        assert_eq!((s3, e3), (Ns(500), Ns(510)));
        assert_eq!(h.busy(), Ns(90));
        assert_eq!(h.launches(), 3);
        assert_eq!(h.busy_until(), Ns(510));
    }

    #[test]
    fn utilization_is_busy_over_makespan() {
        let mut h = BusyHorizon::new();
        h.schedule(Ns::ZERO, Ns(250));
        assert!((h.utilization(Ns(1000)) - 0.25).abs() < 1e-12);
        assert_eq!(BusyHorizon::new().utilization(Ns::ZERO), 0.0);
    }

    #[test]
    fn freeness_tracks_horizon() {
        let mut h = BusyHorizon::new();
        assert!(h.is_free_at(Ns::ZERO));
        h.schedule(Ns::ZERO, Ns(40));
        assert!(!h.is_free_at(Ns(39)));
        assert!(h.is_free_at(Ns(40)));
    }
}
