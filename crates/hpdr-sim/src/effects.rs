//! Declared buffer effects of an operation.
//!
//! Every [`crate::OpSpec`] carries an [`Effects`] set naming the device
//! buffers its payload may touch. The declarations serve two masters:
//!
//! * the **static analyzer** ([`crate::verify`]) derives data-race and
//!   use-after-free hazards from them *before* the DAG executes;
//! * in debug builds the **memory pool** enforces them at payload run
//!   time, panicking on any undeclared access — so a declaration that
//!   drifts from the payload's real behaviour cannot go stale silently.
//!
//! Ops with no payload may still declare effects: a DMA op that models a
//! metadata read, for instance, declares the read so the analyzer orders
//! it against writers even though no host bytes move.

use crate::mem::BufId;

/// The declared buffer-access set of one operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Buffers the op reads.
    pub reads: Vec<BufId>,
    /// Buffers the op writes (includes resize).
    pub writes: Vec<BufId>,
    /// Buffers whose backing store this op logically allocates.
    pub allocs: Vec<BufId>,
    /// Buffers this op frees (the payload calls `mark_freed`).
    pub frees: Vec<BufId>,
}

impl Effects {
    /// An op that touches no device buffer (pure timing, host-side work).
    pub fn none() -> Effects {
        Effects::default()
    }

    /// Start from a single read.
    pub fn read(buf: BufId) -> Effects {
        Effects::none().and_read(buf)
    }

    /// Start from a single write.
    pub fn write(buf: BufId) -> Effects {
        Effects::none().and_write(buf)
    }

    /// Start from a single allocation.
    pub fn alloc(buf: BufId) -> Effects {
        Effects {
            allocs: vec![buf],
            ..Effects::default()
        }
    }

    /// Start from a single free.
    pub fn free(buf: BufId) -> Effects {
        Effects {
            frees: vec![buf],
            ..Effects::default()
        }
    }

    /// Add a read (builder style).
    pub fn and_read(mut self, buf: BufId) -> Effects {
        self.reads.push(buf);
        self
    }

    /// Add a write (builder style).
    pub fn and_write(mut self, buf: BufId) -> Effects {
        self.writes.push(buf);
        self
    }

    /// Whether no buffer is named at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
            && self.writes.is_empty()
            && self.allocs.is_empty()
            && self.frees.is_empty()
    }

    /// Whether the op may observe `buf`'s contents (read or write).
    pub fn may_read(&self, buf: BufId) -> bool {
        self.reads.contains(&buf) || self.writes.contains(&buf)
    }

    /// Whether the op may mutate `buf`'s contents.
    pub fn may_write(&self, buf: BufId) -> bool {
        self.writes.contains(&buf)
    }

    /// Whether the op declares freeing `buf`.
    pub fn may_free(&self, buf: BufId) -> bool {
        self.frees.contains(&buf)
    }

    /// Every buffer named by this effect set, deduplicated.
    pub fn touched(&self) -> Vec<BufId> {
        let mut all: Vec<BufId> = self
            .reads
            .iter()
            .chain(&self.writes)
            .chain(&self.allocs)
            .chain(&self.frees)
            .copied()
            .collect();
        all.sort_by_key(|b| b.index());
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(i: usize) -> BufId {
        BufId::from_index(i)
    }

    #[test]
    fn builders_compose() {
        let fx = Effects::read(buf(1)).and_read(buf(2)).and_write(buf(3));
        assert!(fx.may_read(buf(1)));
        assert!(fx.may_read(buf(3))); // writes imply read permission
        assert!(fx.may_write(buf(3)));
        assert!(!fx.may_write(buf(1)));
        assert_eq!(fx.touched().len(), 3);
    }

    #[test]
    fn none_is_empty() {
        assert!(Effects::none().is_empty());
        assert!(!Effects::free(buf(0)).is_empty());
        assert!(Effects::free(buf(0)).may_free(buf(0)));
    }
}
