//! Static hazard analysis of a submitted op-DAG.
//!
//! The pipeline schedules in this codebase (paper Fig. 9) are correct
//! only if the *declared* event dependencies order every conflicting
//! buffer access — exactly the property a real CUDA/HIP runtime will not
//! check for you. This module verifies it before virtual-time execution:
//!
//! 1. **Structure** — dependencies must point at earlier submissions
//!    (forward/dangling/self deps are launch-order bugs), and the dep
//!    graph must be acyclic (a cycle is a guaranteed deadlock: every op
//!    waits on an event that transitively waits on it).
//! 2. **Happens-before** — from three edge families mirroring the
//!    runtime model: explicit event deps, queue program order, and
//!    engine serialization (each engine executes one op at a time in
//!    submission order, paper §V-B).
//! 3. **Effect conflicts** — two accesses to the same [`BufId`] where at
//!    least one writes/allocs/frees must be HB-ordered; unordered pairs
//!    are **data races**, accesses unordered-with or after a free are
//!    **use-after-free**, double frees and use-before-alloc likewise.
//!
//! The analysis is exact with respect to the machine model (no false
//! positives: an unordered conflicting pair really can interleave under
//! some legal engine timing), and reports a minimal unordered pair per
//! hazard for diagnosis.

use crate::effects::Effects;
use crate::mem::BufId;
use crate::sim::Engine;

/// Coarse operation class, preserved from [`crate::Cost`] for linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// DMA transfer (static or dynamic size).
    Transfer,
    /// Compute kernel.
    Kernel,
    /// Runtime allocator call.
    Alloc,
    /// Runtime free call.
    Free,
    /// Host staging copy.
    HostCopy,
    /// Fixed-duration op.
    Fixed,
}

/// One operation of the DAG under analysis.
#[derive(Debug, Clone)]
pub struct DagOp {
    pub label: String,
    pub engine: Engine,
    /// Queue index, if the op was submitted to a queue.
    pub queue: Option<usize>,
    /// Indices of ops this op waits on (event dependencies).
    pub deps: Vec<usize>,
    pub effects: Effects,
    pub kind: OpKind,
}

/// A submission-ordered op-DAG (index order = submission order).
#[derive(Debug, Clone, Default)]
pub struct Dag {
    pub ops: Vec<DagOp>,
}

impl Dag {
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Label of op `i`, safe on any index.
    pub fn label(&self, i: usize) -> &str {
        self.ops.get(i).map(|o| o.label.as_str()).unwrap_or("?")
    }
}

/// A hazard found by [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// `op` depends on an op submitted after it (illegal in the model:
    /// events can only be recorded on earlier submissions).
    ForwardDep { op: usize, dep: usize },
    /// `op` depends on an index that was never submitted.
    DanglingDep { op: usize, dep: usize },
    /// `op` depends on itself.
    SelfDep { op: usize },
    /// A dependency cycle — guaranteed deadlock. Ops listed in cycle order.
    Deadlock { cycle: Vec<usize> },
    /// Conflicting accesses to `buf` with no happens-before edge.
    DataRace {
        buf: BufId,
        first: usize,
        second: usize,
    },
    /// `access` touches `buf` after — or unordered with — `free`.
    UseAfterFree {
        buf: BufId,
        access: usize,
        free: usize,
        /// True when free →HB→ access (definite); false when unordered.
        definite: bool,
    },
    /// Two frees of the same buffer.
    DoubleFree {
        buf: BufId,
        first: usize,
        second: usize,
    },
    /// `access` touches `buf` before — or unordered with — its `alloc`.
    UseBeforeAlloc {
        buf: BufId,
        access: usize,
        alloc: usize,
    },
}

impl Hazard {
    /// Stable machine-readable kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Hazard::ForwardDep { .. } => "forward-dep",
            Hazard::DanglingDep { .. } => "dangling-dep",
            Hazard::SelfDep { .. } => "self-dep",
            Hazard::Deadlock { .. } => "deadlock",
            Hazard::DataRace { .. } => "data-race",
            Hazard::UseAfterFree { .. } => "use-after-free",
            Hazard::DoubleFree { .. } => "double-free",
            Hazard::UseBeforeAlloc { .. } => "use-before-alloc",
        }
    }

    /// Human-readable diagnostic with op labels.
    pub fn describe(&self, dag: &Dag) -> String {
        match self {
            Hazard::ForwardDep { op, dep } => format!(
                "forward dependency: op #{op} '{}' waits on later submission #{dep} '{}'",
                dag.label(*op),
                dag.label(*dep)
            ),
            Hazard::DanglingDep { op, dep } => format!(
                "dangling dependency: op #{op} '{}' waits on #{dep}, which was never submitted",
                dag.label(*op)
            ),
            Hazard::SelfDep { op } => {
                format!(
                    "self dependency: op #{op} '{}' waits on itself",
                    dag.label(*op)
                )
            }
            Hazard::Deadlock { cycle } => {
                let names: Vec<String> = cycle
                    .iter()
                    .map(|&i| format!("#{i} '{}'", dag.label(i)))
                    .collect();
                format!("dependency cycle (deadlock): {}", names.join(" -> "))
            }
            Hazard::DataRace { buf, first, second } => format!(
                "data race on buffer {}: #{first} '{}' and #{second} '{}' conflict \
                 with no happens-before edge",
                buf.index(),
                dag.label(*first),
                dag.label(*second)
            ),
            Hazard::UseAfterFree {
                buf,
                access,
                free,
                definite,
            } => format!(
                "use-after-free on buffer {}: #{access} '{}' is {} free #{free} '{}'",
                buf.index(),
                dag.label(*access),
                if *definite {
                    "ordered after"
                } else {
                    "unordered with"
                },
                dag.label(*free)
            ),
            Hazard::DoubleFree { buf, first, second } => format!(
                "double free of buffer {}: #{first} '{}' and #{second} '{}'",
                buf.index(),
                dag.label(*first),
                dag.label(*second)
            ),
            Hazard::UseBeforeAlloc { buf, access, alloc } => format!(
                "use-before-alloc on buffer {}: #{access} '{}' is not ordered after \
                 alloc #{alloc} '{}'",
                buf.index(),
                dag.label(*access),
                dag.label(*alloc)
            ),
        }
    }
}

/// Happens-before relation over a structurally valid DAG, as per-op
/// predecessor bitsets (O(N²/64) memory; pipeline DAGs are small).
pub struct Reachability {
    words: usize,
    rows: Vec<u64>,
}

impl Reachability {
    /// Compute HB from explicit deps + queue program order + engine
    /// serialization. Requires deps to point strictly earlier (checked
    /// by the structural pass); returns `None` otherwise.
    pub fn compute(dag: &Dag) -> Option<Reachability> {
        let n = dag.len();
        for (i, op) in dag.ops.iter().enumerate() {
            if op.deps.iter().any(|&d| d >= i) {
                return None;
            }
        }
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        let mut last_on_queue: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut last_on_engine: std::collections::HashMap<Engine, usize> =
            std::collections::HashMap::new();
        for (i, op) in dag.ops.iter().enumerate() {
            let mut preds: Vec<usize> = op.deps.clone();
            if let Some(q) = op.queue {
                if let Some(&p) = last_on_queue.get(&q) {
                    preds.push(p);
                }
                last_on_queue.insert(q, i);
            }
            if let Some(&p) = last_on_engine.get(&op.engine) {
                preds.push(p);
            }
            last_on_engine.insert(op.engine, i);
            for p in preds {
                // row_i |= row_p; row_i |= {p}
                let (lo, hi) = if p < i { (p, i) } else { (i, p) };
                debug_assert!(lo == p);
                let (head, tail) = rows.split_at_mut(hi * words);
                let row_p = &head[lo * words..lo * words + words];
                let row_i = &mut tail[..words];
                for w in 0..words {
                    row_i[w] |= row_p[w];
                }
                row_i[p / 64] |= 1u64 << (p % 64);
            }
        }
        Some(Reachability { words, rows })
    }

    /// Whether op `a` happens-before op `b`.
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        a != b && (self.rows[b * self.words + a / 64] >> (a % 64)) & 1 == 1
    }

    /// Whether `a` and `b` are ordered either way.
    pub fn ordered_either(&self, a: usize, b: usize) -> bool {
        self.ordered(a, b) || self.ordered(b, a)
    }

    /// Number of 64-bit words per predecessor row (bitsets over ops).
    pub fn row_words(&self) -> usize {
        self.words
    }

    /// Predecessor bitset of op `i`: bit `p` is set iff `p` happens-before
    /// `i`. The schedule-space explorer uses these rows to decide which
    /// ops are ready given an executed set.
    pub fn preds(&self, i: usize) -> &[u64] {
        &self.rows[i * self.words..(i + 1) * self.words]
    }
}

/// Cap on reported hazards per buffer (a broken schedule repeats the
/// same pattern for every chunk; the first few pairs tell the story).
const PER_BUFFER_HAZARD_CAP: usize = 4;

/// Result of [`analyze`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    pub hazards: Vec<Hazard>,
    pub num_ops: usize,
    /// Conflicting access pairs that were checked against HB.
    pub checked_pairs: usize,
    /// Hazards suppressed by the per-buffer cap.
    pub truncated: usize,
}

impl VerifyReport {
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }

    /// Multi-line human-readable report.
    pub fn describe(&self, dag: &Dag) -> String {
        if self.is_clean() {
            return format!(
                "schedule verified: {} ops, {} conflicting pairs all ordered",
                self.num_ops, self.checked_pairs
            );
        }
        let mut out = format!(
            "schedule verification FAILED: {} hazard(s) in {} ops",
            self.hazards.len(),
            self.num_ops
        );
        for h in &self.hazards {
            out.push_str("\n  - ");
            out.push_str(&h.describe(dag));
        }
        if self.truncated > 0 {
            out.push_str(&format!(
                "\n  ({} further hazard(s) suppressed by the per-buffer cap)",
                self.truncated
            ));
        }
        out
    }

    /// Machine-readable JSON report (hand-rolled; no serde offline).
    pub fn to_json(&self, dag: &Dag) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut items = Vec::with_capacity(self.hazards.len());
        for h in &self.hazards {
            items.push(format!(
                "{{\"kind\":\"{}\",\"detail\":\"{}\"}}",
                h.kind(),
                esc(&h.describe(dag))
            ));
        }
        format!(
            "{{\"ops\":{},\"checked_pairs\":{},\"hazards\":[{}],\"truncated\":{}}}",
            self.num_ops,
            self.checked_pairs,
            items.join(","),
            self.truncated
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Read,
    Write,
    Alloc,
    Free,
}

/// Run the full static analysis over a DAG.
pub fn analyze(dag: &Dag) -> VerifyReport {
    let mut report = VerifyReport {
        num_ops: dag.len(),
        ..VerifyReport::default()
    };
    structural_hazards(dag, &mut report.hazards);
    if !report.hazards.is_empty() {
        // Ordering is undefined under structural errors; effect analysis
        // would only produce noise on top of the real defect.
        return report;
    }
    let reach = Reachability::compute(dag).expect("structurally valid DAG");
    effect_hazards(dag, &reach, &mut report);
    report
}

fn structural_hazards(dag: &Dag, out: &mut Vec<Hazard>) {
    let n = dag.len();
    for (i, op) in dag.ops.iter().enumerate() {
        for &d in &op.deps {
            if d >= n {
                out.push(Hazard::DanglingDep { op: i, dep: d });
            } else if d == i {
                out.push(Hazard::SelfDep { op: i });
            } else if d > i {
                out.push(Hazard::ForwardDep { op: i, dep: d });
            }
        }
    }
    // Cycle detection over explicit dep edges (only cycles through valid
    // indices can deadlock; dangling deps were reported above).
    if let Some(cycle) = find_cycle(dag) {
        out.push(Hazard::Deadlock { cycle });
    }
}

/// Iterative three-color DFS over dep edges; returns one cycle if any.
fn find_cycle(dag: &Dag) -> Option<Vec<usize>> {
    let n = dag.len();
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        // Stack of (node, next dep index to visit).
        let mut stack = vec![(root, 0usize)];
        color[root] = Color::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let deps = &dag.ops[node].deps;
            if *next >= deps.len() {
                color[node] = Color::Black;
                stack.pop();
                continue;
            }
            let d = deps[*next];
            *next += 1;
            if d >= n {
                continue;
            }
            match color[d] {
                Color::White => {
                    parent[d] = node;
                    color[d] = Color::Grey;
                    stack.push((d, 0));
                }
                Color::Grey => {
                    // Found a back edge node -> d; unwind the cycle.
                    let mut cycle = vec![d];
                    let mut cur = node;
                    while cur != d && cur != usize::MAX {
                        cycle.push(cur);
                        cur = parent[cur];
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
                Color::Black => {}
            }
        }
    }
    None
}

fn effect_hazards(dag: &Dag, reach: &Reachability, report: &mut VerifyReport) {
    use std::collections::HashMap;
    // buf -> [(op, kind)], in submission order.
    let mut accesses: HashMap<BufId, Vec<(usize, AccessKind)>> = HashMap::new();
    for (i, op) in dag.ops.iter().enumerate() {
        let fx = &op.effects;
        let mut push = |buf: BufId, kind: AccessKind| {
            accesses.entry(buf).or_default().push((i, kind));
        };
        for &b in &fx.writes {
            push(b, AccessKind::Write);
        }
        for &b in &fx.reads {
            // A buffer declared in both reads and writes is a write for
            // conflict purposes; skip the duplicate entry.
            if !fx.writes.contains(&b) {
                push(b, AccessKind::Read);
            }
        }
        for &b in &fx.allocs {
            push(b, AccessKind::Alloc);
        }
        for &b in &fx.frees {
            push(b, AccessKind::Free);
        }
    }

    let mut bufs: Vec<&BufId> = accesses.keys().collect();
    bufs.sort_by_key(|b| b.index());
    for buf in bufs {
        let list = &accesses[buf];
        let mut reported_here = 0usize;
        let mut report_hazard = |h: Hazard, report: &mut VerifyReport| {
            if reported_here < PER_BUFFER_HAZARD_CAP {
                report.hazards.push(h);
            } else {
                report.truncated += 1;
            }
            reported_here += 1;
        };
        for (x, &(a, ka)) in list.iter().enumerate() {
            for &(b, kb) in &list[x + 1..] {
                if a == b {
                    continue;
                }
                use AccessKind::*;
                if ka == Read && kb == Read {
                    continue;
                }
                report.checked_pairs += 1;
                match (ka, kb) {
                    (Free, Free) => {
                        report_hazard(
                            Hazard::DoubleFree {
                                buf: *buf,
                                first: a,
                                second: b,
                            },
                            report,
                        );
                    }
                    (Free, _) | (_, Free) => {
                        let (free, access) = if ka == Free { (a, b) } else { (b, a) };
                        // Safe only if the access happens-before the free.
                        if !reach.ordered(access, free) {
                            report_hazard(
                                Hazard::UseAfterFree {
                                    buf: *buf,
                                    access,
                                    free,
                                    definite: reach.ordered(free, access),
                                },
                                report,
                            );
                        }
                    }
                    (Alloc, _) | (_, Alloc) => {
                        let (alloc, access) = if ka == Alloc { (a, b) } else { (b, a) };
                        if !reach.ordered(alloc, access) {
                            report_hazard(
                                Hazard::UseBeforeAlloc {
                                    buf: *buf,
                                    access,
                                    alloc,
                                },
                                report,
                            );
                        }
                    }
                    _ => {
                        if !reach.ordered_either(a, b) {
                            report_hazard(
                                Hazard::DataRace {
                                    buf: *buf,
                                    first: a,
                                    second: b,
                                },
                                report,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::DeviceId;

    fn buf(i: usize) -> BufId {
        BufId::from_index(i)
    }

    fn op(
        label: &str,
        engine: Engine,
        queue: Option<usize>,
        deps: Vec<usize>,
        effects: Effects,
    ) -> DagOp {
        DagOp {
            label: label.into(),
            engine,
            queue,
            deps,
            effects,
            kind: OpKind::Fixed,
        }
    }

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn ordered_chain_is_clean() {
        let dag = Dag {
            ops: vec![
                op(
                    "w",
                    Engine::H2D(dev()),
                    Some(0),
                    vec![],
                    Effects::write(buf(0)),
                ),
                op(
                    "r",
                    Engine::Compute(dev()),
                    Some(0),
                    vec![],
                    Effects::read(buf(0)),
                ),
            ],
        };
        let r = analyze(&dag);
        assert!(r.is_clean(), "{}", r.describe(&dag));
        assert_eq!(r.checked_pairs, 1);
    }

    #[test]
    fn unordered_write_read_races() {
        // Different queues, different engines, no dep.
        let dag = Dag {
            ops: vec![
                op(
                    "w",
                    Engine::H2D(dev()),
                    Some(0),
                    vec![],
                    Effects::write(buf(0)),
                ),
                op(
                    "r",
                    Engine::Compute(dev()),
                    Some(1),
                    vec![],
                    Effects::read(buf(0)),
                ),
            ],
        };
        let r = analyze(&dag);
        assert_eq!(r.hazards.len(), 1);
        assert!(matches!(r.hazards[0], Hazard::DataRace { .. }));
        assert!(r.describe(&dag).contains("data race"));
    }

    #[test]
    fn dep_orders_across_queues() {
        let dag = Dag {
            ops: vec![
                op(
                    "w",
                    Engine::H2D(dev()),
                    Some(0),
                    vec![],
                    Effects::write(buf(0)),
                ),
                op(
                    "r",
                    Engine::Compute(dev()),
                    Some(1),
                    vec![0],
                    Effects::read(buf(0)),
                ),
            ],
        };
        assert!(analyze(&dag).is_clean());
    }

    #[test]
    fn engine_serialization_orders() {
        // Two writes on the same engine from different queues: the engine
        // executes them in submission order, so no race in this model.
        let dag = Dag {
            ops: vec![
                op(
                    "w1",
                    Engine::H2D(dev()),
                    Some(0),
                    vec![],
                    Effects::write(buf(0)),
                ),
                op(
                    "w2",
                    Engine::H2D(dev()),
                    Some(1),
                    vec![],
                    Effects::write(buf(0)),
                ),
            ],
        };
        assert!(analyze(&dag).is_clean());
    }

    #[test]
    fn transitive_order_through_effectless_op() {
        // w -> (dep) barrier -> (dep) r, barrier touches nothing.
        let dag = Dag {
            ops: vec![
                op(
                    "w",
                    Engine::H2D(dev()),
                    Some(0),
                    vec![],
                    Effects::write(buf(0)),
                ),
                op("barrier", Engine::Host, None, vec![0], Effects::none()),
                op(
                    "r",
                    Engine::Compute(dev()),
                    Some(1),
                    vec![1],
                    Effects::read(buf(0)),
                ),
            ],
        };
        assert!(analyze(&dag).is_clean());
    }

    #[test]
    fn use_after_free_detected() {
        let dag = Dag {
            ops: vec![
                op(
                    "f",
                    Engine::Runtime(crate::sim::RuntimeId(0)),
                    Some(0),
                    vec![],
                    Effects::free(buf(3)),
                ),
                op(
                    "r",
                    Engine::Compute(dev()),
                    Some(0),
                    vec![],
                    Effects::read(buf(3)),
                ),
            ],
        };
        let r = analyze(&dag);
        assert_eq!(r.hazards.len(), 1);
        match &r.hazards[0] {
            Hazard::UseAfterFree { definite, .. } => assert!(*definite),
            h => panic!("wrong hazard {h:?}"),
        }
    }

    #[test]
    fn double_free_detected() {
        let dag = Dag {
            ops: vec![
                op("f1", Engine::Host, Some(0), vec![], Effects::free(buf(0))),
                op("f2", Engine::Host, Some(0), vec![0], Effects::free(buf(0))),
            ],
        };
        let r = analyze(&dag);
        assert!(matches!(r.hazards[0], Hazard::DoubleFree { .. }));
    }

    #[test]
    fn forward_and_dangling_deps_detected() {
        let dag = Dag {
            ops: vec![
                op("a", Engine::Host, None, vec![1], Effects::none()),
                op("b", Engine::Host, None, vec![7], Effects::none()),
            ],
        };
        let r = analyze(&dag);
        let kinds: Vec<&str> = r.hazards.iter().map(|h| h.kind()).collect();
        assert!(kinds.contains(&"forward-dep"));
        assert!(kinds.contains(&"dangling-dep"));
    }

    #[test]
    fn cycle_reported_as_deadlock() {
        let dag = Dag {
            ops: vec![
                op("a", Engine::Host, None, vec![1], Effects::none()),
                op("b", Engine::Host, None, vec![0], Effects::none()),
            ],
        };
        let r = analyze(&dag);
        assert!(r.hazards.iter().any(|h| h.kind() == "deadlock"));
    }

    #[test]
    fn use_before_alloc_detected() {
        let dag = Dag {
            ops: vec![
                op(
                    "r",
                    Engine::Compute(dev()),
                    Some(0),
                    vec![],
                    Effects::read(buf(0)),
                ),
                op(
                    "alloc",
                    Engine::Runtime(crate::sim::RuntimeId(0)),
                    Some(1),
                    vec![],
                    Effects::alloc(buf(0)),
                ),
            ],
        };
        let r = analyze(&dag);
        assert!(matches!(r.hazards[0], Hazard::UseBeforeAlloc { .. }));
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let dag = Dag {
            ops: vec![
                op(
                    "w\"x\"",
                    Engine::H2D(dev()),
                    Some(0),
                    vec![],
                    Effects::write(buf(0)),
                ),
                op(
                    "r",
                    Engine::Compute(dev()),
                    Some(1),
                    vec![],
                    Effects::read(buf(0)),
                ),
            ],
        };
        let r = analyze(&dag);
        let json = r.to_json(&dag);
        assert!(json.contains("\"hazards\":[{"));
        assert!(json.contains("data-race"));
        assert!(json.contains("\\\"x\\\""));
    }

    #[test]
    fn per_buffer_cap_truncates() {
        // Six unordered writers to one buffer on six engines/queues.
        let ops: Vec<DagOp> = (0..6)
            .map(|i| {
                op(
                    &format!("w{i}"),
                    Engine::Compute(DeviceId(i)), // distinct engines: no serialization
                    Some(i),
                    vec![],
                    Effects::write(buf(0)),
                )
            })
            .collect();
        let dag = Dag { ops };
        let r = analyze(&dag);
        assert_eq!(r.hazards.len(), super::PER_BUFFER_HAZARD_CAP);
        assert!(r.truncated > 0);
    }
}
