//! Structured span events emitted by the scheduler (the tracing
//! backbone of `hpdr-trace`).
//!
//! When tracing is enabled ([`crate::Sim::set_trace`]), every executed
//! op emits a begin event at its virtual start time and an end event at
//! its virtual end time into a [`Recorder`] — an append-only event
//! buffer, so the recording cost is one `Vec` push per event and zero
//! when disabled. [`Recorder::into_trace`] pairs the events into
//! [`SpanRecord`]s.
//!
//! A span carries everything the observability layer needs and the
//! [`crate::timeline::Timeline`] does not keep: the submission index,
//! queue, explicit dependencies, op kind, declared buffer footprint and
//! the *ready* time (when the op's explicit dependencies were all
//! satisfied — the gap to `start` is engine/queue contention, e.g.
//! allocator-lock wait on [`crate::Engine::Runtime`] ops).

use crate::sim::Engine;
use crate::spec::KernelClass;
use crate::time::Ns;
use crate::verify::OpKind;

/// One scheduler event. Begin carries the op metadata; End carries the
/// buffer footprint, which is sampled after the op's payload ran (so
/// dynamically-sized outputs, e.g. compressed streams, are reflected).
#[derive(Debug, Clone)]
pub enum SpanEvent {
    Begin {
        op: usize,
        t: Ns,
        label: String,
        engine: Engine,
        queue: Option<usize>,
        deps: Vec<usize>,
        kind: OpKind,
        class: Option<KernelClass>,
        bytes: u64,
        /// When all explicit dependencies had finished.
        ready: Ns,
    },
    End {
        op: usize,
        t: Ns,
        /// Total live bytes of the device buffers the op declared it
        /// touches, sampled after its payload executed.
        footprint_bytes: u64,
        /// Real elapsed wall-clock time of the op's payload on the host
        /// (zero for ops without a payload). Unlike the virtual times,
        /// this is measured, not modeled.
        wall: Ns,
    },
}

/// One completed op span, paired from a begin/end event.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Submission index (equals the op's [`crate::OpId`]).
    pub op: usize,
    pub label: String,
    pub engine: Engine,
    pub queue: Option<usize>,
    /// Explicit event dependencies (submission indices).
    pub deps: Vec<usize>,
    pub kind: OpKind,
    pub class: Option<KernelClass>,
    pub start: Ns,
    pub end: Ns,
    /// Bytes moved or processed by the op (0 for alloc/free/fixed).
    pub bytes: u64,
    /// Declared buffer footprint at completion.
    pub footprint_bytes: u64,
    /// When the op's explicit dependencies were satisfied.
    pub ready: Ns,
    /// Measured wall-clock time of the op's payload (zero when the op
    /// had no payload). Lets profiles report real host time next to the
    /// modeled virtual time.
    pub wall: Ns,
}

impl SpanRecord {
    pub fn duration(&self) -> Ns {
        self.end - self.start
    }

    /// Time spent waiting on queue/engine availability after the op was
    /// data-ready (allocator contention, for Runtime-engine ops).
    pub fn wait(&self) -> Ns {
        self.start.saturating_sub(self.ready)
    }
}

/// Low-overhead event sink: an append-only buffer filled by
/// [`crate::Sim::run`] when tracing is on.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<SpanEvent>,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    pub fn emit(&mut self, event: SpanEvent) {
        self.events.push(event);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Pair begin/end events into spans, in submission order.
    ///
    /// Panics if an op has a begin without an end (a truncated stream —
    /// cannot happen for recorders filled by [`crate::Sim::run`]).
    pub fn into_trace(self) -> Trace {
        let mut spans: Vec<SpanRecord> = Vec::with_capacity(self.events.len() / 2);
        let mut open: Vec<Option<usize>> = Vec::new();
        for event in self.events {
            match event {
                SpanEvent::Begin {
                    op,
                    t,
                    label,
                    engine,
                    queue,
                    deps,
                    kind,
                    class,
                    bytes,
                    ready,
                } => {
                    if open.len() <= op {
                        open.resize(op + 1, None);
                    }
                    open[op] = Some(spans.len());
                    spans.push(SpanRecord {
                        op,
                        label,
                        engine,
                        queue,
                        deps,
                        kind,
                        class,
                        start: t,
                        end: t,
                        bytes,
                        footprint_bytes: 0,
                        ready,
                        wall: Ns::ZERO,
                    });
                }
                SpanEvent::End {
                    op,
                    t,
                    footprint_bytes,
                    wall,
                } => {
                    let idx = open
                        .get(op)
                        .copied()
                        .flatten()
                        .unwrap_or_else(|| panic!("end event for op {op} without a begin"));
                    spans[idx].end = t;
                    spans[idx].footprint_bytes = footprint_bytes;
                    spans[idx].wall = wall;
                    open[op] = None;
                }
            }
        }
        assert!(
            open.iter().all(Option::is_none),
            "trace has begin events without matching ends"
        );
        Trace {
            spans,
            runtime: None,
        }
    }
}

/// Execution-runtime counters for one traced run: real wall-clock time
/// plus persistent-worker-pool activity. Filled in by the pipeline layer
/// (this crate models devices and cannot depend on the pool), so the
/// fields are plain data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Measured wall-clock time of the whole traced run.
    pub wall: Ns,
    /// Pool jobs dispatched during the run.
    pub pool_jobs: u64,
    /// Worker wakeups during the run.
    pub pool_wakeups: u64,
    /// Chunk tasks executed during the run.
    pub pool_tasks: u64,
    /// Staging arenas reused without reallocation.
    pub scratch_reuses: u64,
    /// Staging arenas grown (allocations).
    pub scratch_allocs: u64,
}

/// A completed recording: one span per executed op, in submission order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<SpanRecord>,
    runtime: Option<RuntimeStats>,
}

impl Trace {
    /// Build a trace directly from spans (fixtures and tests).
    pub fn from_spans(spans: Vec<SpanRecord>) -> Trace {
        Trace {
            spans,
            runtime: None,
        }
    }

    /// Attach measured runtime counters (see [`RuntimeStats`]).
    pub fn set_runtime_stats(&mut self, stats: RuntimeStats) {
        self.runtime = Some(stats);
    }

    /// Measured runtime counters, when the producer recorded them.
    pub fn runtime_stats(&self) -> Option<RuntimeStats> {
        self.runtime
    }

    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// End of the last span (total virtual time of the traced run).
    pub fn makespan(&self) -> Ns {
        self.spans.iter().map(|s| s.end).max().unwrap_or(Ns::ZERO)
    }

    /// Devices that appear in the trace, ascending.
    pub fn devices(&self) -> Vec<crate::sim::DeviceId> {
        let mut ids: Vec<usize> = self
            .spans
            .iter()
            .filter_map(|s| s.engine.device().map(|d| d.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(crate::sim::DeviceId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::DeviceId;

    fn begin(op: usize, t: u64) -> SpanEvent {
        SpanEvent::Begin {
            op,
            t: Ns(t),
            label: format!("op{op}"),
            engine: Engine::Compute(DeviceId(0)),
            queue: Some(0),
            deps: vec![],
            kind: OpKind::Kernel,
            class: Some(KernelClass::Other),
            bytes: 10,
            ready: Ns(t),
        }
    }

    #[test]
    fn recorder_pairs_begin_end() {
        let mut r = Recorder::new();
        r.emit(begin(0, 0));
        r.emit(SpanEvent::End {
            op: 0,
            t: Ns(100),
            footprint_bytes: 64,
            wall: Ns(7),
        });
        r.emit(begin(1, 50));
        r.emit(SpanEvent::End {
            op: 1,
            t: Ns(150),
            footprint_bytes: 0,
            wall: Ns::ZERO,
        });
        let trace = r.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.spans()[0].duration(), Ns(100));
        assert_eq!(trace.spans()[0].footprint_bytes, 64);
        assert_eq!(trace.spans()[0].wall, Ns(7));
        assert_eq!(trace.spans()[1].start, Ns(50));
        assert_eq!(trace.makespan(), Ns(150));
        assert_eq!(trace.devices(), vec![DeviceId(0)]);
    }

    #[test]
    #[should_panic(expected = "without matching ends")]
    fn unmatched_begin_panics() {
        let mut r = Recorder::new();
        r.emit(begin(0, 0));
        r.into_trace();
    }

    #[test]
    fn wait_is_start_minus_ready() {
        let s = SpanRecord {
            op: 0,
            label: "a".into(),
            engine: Engine::Runtime(crate::sim::RuntimeId(0)),
            queue: None,
            deps: vec![],
            kind: OpKind::Alloc,
            class: None,
            start: Ns(70),
            end: Ns(90),
            bytes: 0,
            footprint_bytes: 0,
            ready: Ns(30),
            wall: Ns::ZERO,
        };
        assert_eq!(s.wait(), Ns(40));
    }
}
