//! Per-level linear quantization (paper Algorithm 1 line 14).
//!
//! Different quantization bin widths are applied to different levels via
//! the Map&Process abstraction: each node's coefficient is quantized with
//! its level's bin. The bound is verified empirically by the property
//! tests in `tests/error_bounds.rs` (including adversarial random fields).
//!
//! Quantized integers become Huffman symbols centred on `dict_size / 2`;
//! codes that fall outside the dictionary are escaped and stored verbatim
//! in an outlier table (flat index + integer), the standard SZ/MGARD
//! outlier scheme.
//!
//! Bin allocation is geometric: level `l` gets `δ_l = eb·2^{-(L-l)}/2.5`,
//! so the finest level (which holds ~2^d/(2^d−1) of all coefficients)
//! receives the bulk of the error budget. Since recomposition propagates
//! per-level errors with operator norm ≈ 1 + c (interpolation is an
//! averaging operator; the correction projection is bounded by c ≈ 1.2),
//! the total is `Σ_l δ_l/2 · (1+c) ≤ (1+c)·eb/2.5 · Σ 2^{-(L-l)}/1
//! < 2.2·2·eb/5 = 0.88·eb`.

use hpdr_core::{DeviceAdapter, SharedSlice};
use parking_lot::Mutex;

/// Elements per SIMD-kernel tile: big enough to amortize dispatch, small
/// enough to stay in L1 (8 KiB of f64 scratch).
const TILE: usize = 1024;

/// Bin width for level `l` (0 = coarsest) of `levels` total with
/// absolute bound `abs_eb`: geometric allocation favouring fine levels.
pub fn level_bin(abs_eb: f64, levels: usize, l: usize) -> f64 {
    let depth = (levels - 1 - l) as i32;
    abs_eb * 2f64.powi(-depth) / 2.5
}

/// Result of quantization.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// Huffman symbols, one per node (escape = `dict_size - 1`).
    pub symbols: Vec<u32>,
    /// Outliers as `(flat_index, quantized_integer)` in ascending index
    /// order.
    pub outliers: Vec<(u64, i64)>,
}

/// The escape symbol for a dictionary of `dict_size`.
pub fn escape_symbol(dict_size: u32) -> u32 {
    dict_size - 1
}

/// Quantize decomposed coefficients. `node_levels[i]` gives each node's
/// level; `bins[l]` the level's bin width.
pub fn quantize(
    adapter: &dyn DeviceAdapter,
    coeffs: &[f64],
    node_levels: &[u8],
    bins: &[f64],
    dict_size: u32,
) -> Quantized {
    assert_eq!(coeffs.len(), node_levels.len());
    assert!(dict_size >= 3, "dictionary too small");
    let n = coeffs.len();
    let radius = (dict_size / 2) as i64;
    let escape = escape_symbol(dict_size);
    let mut symbols = vec![0u32; n];
    let outliers = Mutex::new(Vec::new());
    {
        let sym_sh = SharedSlice::new(&mut symbols);
        let chunks = adapter.info().threads.clamp(1, 64);
        let chunk = n.div_ceil(chunks);
        // The division + round-ties-even inner loop runs through the SIMD
        // dispatch table over L1-sized tiles; the scalar finish handles
        // saturation, symbol mapping, and outlier escapes. Oversubscribed
        // launches stay scalar (see `kernels_for_par`).
        let quotients = hpdr_kernels::kernels_for_par(chunks).quantize_quotients;
        adapter.dem(chunks, &|c| {
            let lo = (c * chunk).min(n);
            let hi = ((c + 1) * chunk).min(n);
            let mut local_outliers: Vec<(u64, i64)> = Vec::new();
            let mut tile = [0.0f64; TILE];
            let mut t = lo;
            while t < hi {
                let te = (t + TILE).min(hi);
                let w = te - t;
                quotients(&coeffs[t..te], &node_levels[t..te], bins, &mut tile[..w]);
                for (j, &quot) in tile[..w].iter().enumerate() {
                    let i = t + j;
                    // Saturate impossible magnitudes rather than wrapping.
                    let q = quot.clamp(-9.0e18, 9.0e18) as i64;
                    let sym = q + radius;
                    let v = if sym >= 0 && (sym as u32) < escape {
                        sym as u32
                    } else {
                        local_outliers.push((i as u64, q));
                        escape
                    };
                    // Safety: chunks write disjoint index ranges.
                    unsafe { sym_sh.write(i, v) };
                }
                t = te;
            }
            if !local_outliers.is_empty() {
                outliers.lock().extend(local_outliers);
            }
        });
    }
    let mut outliers = outliers.into_inner();
    outliers.sort_unstable_by_key(|&(i, _)| i);
    Quantized { symbols, outliers }
}

/// Invert [`quantize`]: rebuild coefficient values.
pub fn dequantize(
    adapter: &dyn DeviceAdapter,
    q: &Quantized,
    node_levels: &[u8],
    bins: &[f64],
    dict_size: u32,
) -> Vec<f64> {
    let n = q.symbols.len();
    assert_eq!(node_levels.len(), n);
    let radius = (dict_size / 2) as i64;
    let escape = escape_symbol(dict_size);
    let mut out = vec![0.0f64; n];
    {
        let out_sh = SharedSlice::new(&mut out);
        let symbols = &q.symbols;
        let chunks = adapter.info().threads.clamp(1, 64);
        let chunk = n.div_ceil(chunks);
        // Vectorized `(sym - radius) * bin` with escape slots written as
        // 0.0 (same as the skipped-write formulation) and patched from the
        // outlier table below. Oversubscribed launches stay scalar.
        let devals = hpdr_kernels::kernels_for_par(chunks).dequantize_vals;
        adapter.dem(chunks, &|c| {
            let lo = (c * chunk).min(n);
            let hi = ((c + 1) * chunk).min(n);
            if lo >= hi {
                return;
            }
            // Safety: chunks write disjoint index ranges.
            let dst = unsafe { out_sh.slice_mut(lo, hi - lo) };
            devals(
                &symbols[lo..hi],
                &node_levels[lo..hi],
                bins,
                radius,
                escape,
                dst,
            );
        });
    }
    for &(idx, qi) in &q.outliers {
        let i = idx as usize;
        out[i] = qi as f64 * bins[node_levels[i] as usize];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    #[test]
    fn quantize_error_within_half_bin() {
        let adapter = SerialAdapter::new();
        let coeffs: Vec<f64> = (0..1000).map(|i| ((i as f64) * 0.7).sin() * 3.0).collect();
        let levels = vec![0u8; 1000];
        let bins = vec![0.01f64];
        let q = quantize(&adapter, &coeffs, &levels, &bins, 4096);
        let back = dequantize(&adapter, &q, &levels, &bins, 4096);
        for (a, b) in coeffs.iter().zip(&back) {
            assert!((a - b).abs() <= 0.005 + 1e-12);
        }
    }

    #[test]
    fn per_level_bins_are_respected() {
        let adapter = SerialAdapter::new();
        let coeffs = vec![1.0f64, 1.0];
        let levels = vec![0u8, 1u8];
        let bins = vec![0.5f64, 0.125];
        let q = quantize(&adapter, &coeffs, &levels, &bins, 4096);
        assert_eq!(q.symbols[0], 2048 + 2); // 1.0 / 0.5
        assert_eq!(q.symbols[1], 2048 + 8); // 1.0 / 0.125
    }

    #[test]
    fn outliers_escape_and_restore() {
        let adapter = CpuParallelAdapter::new(4);
        let mut coeffs = vec![0.0f64; 5000];
        coeffs[123] = 1e9; // way outside the dictionary
        coeffs[4567] = -1e9;
        let levels = vec![0u8; 5000];
        let bins = vec![0.001f64];
        let q = quantize(&adapter, &coeffs, &levels, &bins, 1024);
        assert_eq!(q.outliers.len(), 2);
        assert_eq!(q.symbols[123], escape_symbol(1024));
        let back = dequantize(&adapter, &q, &levels, &bins, 1024);
        assert!((back[123] - 1e9).abs() < 1.0);
        assert!((back[4567] + 1e9).abs() < 1.0);
        // Outliers sorted by index regardless of thread interleaving.
        assert!(q.outliers.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn symbols_deterministic_across_adapters() {
        let coeffs: Vec<f64> = (0..10_000).map(|i| (i % 97) as f64 * 0.01 - 0.5).collect();
        let levels: Vec<u8> = (0..10_000).map(|i| (i % 3) as u8).collect();
        let bins = vec![0.01, 0.005, 0.0025];
        let a = quantize(&SerialAdapter::new(), &coeffs, &levels, &bins, 4096);
        let b = quantize(&CpuParallelAdapter::new(8), &coeffs, &levels, &bins, 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn level_bins_are_geometric_toward_fine_levels() {
        // Finest level gets the largest bin; each coarser level halves.
        let l = 4;
        let fine = level_bin(1.0, l, 3);
        assert!((fine - 1.0 / 2.5).abs() < 1e-12);
        for lev in 0..3 {
            assert!((level_bin(1.0, l, lev) * 2.0 - level_bin(1.0, l, lev + 1)).abs() < 1e-12);
        }
        // Total per-level error budget stays below the bound.
        let total: f64 = (0..l).map(|lev| level_bin(1.0, l, lev) / 2.0).sum();
        assert!(total < 0.5, "budget {total}");
    }
}
