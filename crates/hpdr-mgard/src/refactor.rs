//! Multilevel data refactoring and progressive retrieval.
//!
//! Beyond one-shot compression, MGARD's decomposition supports
//! *refactoring*: the multilevel coefficients are stored grouped by
//! level, so a reader can retrieve a prefix of levels and reconstruct a
//! coarse-but-faithful approximation, adding levels (and bytes) only as
//! more accuracy is needed. This is the "data refactoring" usage the
//! paper's introduction motivates (refs \[23\]–\[25\]) and what MGARD-X
//! ships in production.
//!
//! Layout: a header plus one independently Huffman-coded segment per
//! level. `retrieve(k)` decodes segments `0..=k`, zeroes the rest, and
//! recomposes.

use crate::codec::{context_cache, MgardContext};
use crate::decompose::{decompose, recompose};
use crate::quantize::{dequantize, level_bin, quantize, Quantized};
use hpdr_core::{
    ByteReader, ByteWriter, ContextKey, DeviceAdapter, Float, FrameHeader, HpdrError, KernelClass,
    Result, Shape,
};
use hpdr_huffman::HuffmanConfig;

const FRAME: FrameHeader = FrameHeader::new(0x4D47_5246 /* "MGRF" */, 1, "refactor");

/// Configuration for refactoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefactorConfig {
    /// Finest-level quantizer resolution, expressed as a relative error
    /// bound achieved when *all* levels are retrieved.
    pub rel_bound: f64,
    pub dict_size: u32,
}

impl Default for RefactorConfig {
    fn default() -> Self {
        RefactorConfig {
            rel_bound: 1e-6,
            dict_size: 8192,
        }
    }
}

/// A refactored array: per-level segments retrievable incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct Refactored {
    pub dtype_tag: u8,
    pub shape: Shape,
    pub abs_eb: f64,
    pub levels: usize,
    pub dict_size: u32,
    /// Independently decodable per-level streams (level 0 = coarsest).
    pub segments: Vec<Vec<u8>>,
    /// Outliers (flat index, integer) stored with the coarsest segment.
    outliers: Vec<(u64, i64)>,
}

impl Refactored {
    /// Bytes needed to retrieve levels `0..=k`.
    pub fn bytes_up_to(&self, k: usize) -> usize {
        self.segments[..=k.min(self.levels - 1)]
            .iter()
            .map(|s| s.len())
            .sum::<usize>()
            + self.outliers.len() * 16
    }

    pub fn total_bytes(&self) -> usize {
        self.bytes_up_to(self.levels - 1)
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        FRAME.write(&mut w);
        w.put_u8(self.dtype_tag);
        w.put_u8(self.shape.ndims() as u8);
        for &d in self.shape.dims() {
            w.put_u64(d as u64);
        }
        w.put_f64(self.abs_eb);
        w.put_u32(self.dict_size);
        w.put_u8(self.levels as u8);
        w.put_u64(self.outliers.len() as u64);
        for &(i, q) in &self.outliers {
            w.put_u64(i);
            w.put_i64(q);
        }
        for seg in &self.segments {
            w.put_block(seg);
        }
        w.into_vec()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Refactored> {
        let mut r = ByteReader::new(bytes);
        FRAME.read(&mut r)?;
        let dtype_tag = r.get_u8()?;
        let nd = r.get_u8()? as usize;
        if !(1..=4).contains(&nd) {
            return Err(HpdrError::corrupt("bad rank"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        let shape = Shape::try_new(&dims)?;
        let abs_eb = r.get_f64()?;
        if abs_eb <= 0.0 || !abs_eb.is_finite() {
            return Err(HpdrError::corrupt("bad bound"));
        }
        let dict_size = r.get_u32()?;
        if dict_size < 16 {
            return Err(HpdrError::corrupt("bad dict size"));
        }
        let levels = r.get_u8()? as usize;
        if levels == 0 || levels > 64 {
            return Err(HpdrError::corrupt("bad level count"));
        }
        let n_out = r.get_u64()? as usize;
        if n_out > shape.num_elements() {
            return Err(HpdrError::corrupt("too many outliers"));
        }
        let mut outliers = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            let i = r.get_u64()?;
            if i as usize >= shape.num_elements() {
                return Err(HpdrError::corrupt("outlier out of range"));
            }
            outliers.push((i, r.get_i64()?));
        }
        let mut segments = Vec::with_capacity(levels);
        for _ in 0..levels {
            segments.push(r.get_block()?.to_vec());
        }
        r.expect_exhausted()?;
        Ok(Refactored {
            dtype_tag,
            shape,
            abs_eb,
            dict_size,
            levels,
            segments,
            outliers,
        })
    }
}

fn effective_shape(shape: &Shape) -> Shape {
    let d = shape.dims();
    if d.len() == 4 {
        Shape::new(&[d[0] * d[1], d[2], d[3]])
    } else {
        shape.clone()
    }
}

/// Refactor `data` into per-level segments.
pub fn refactor<T: Float>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    shape: &Shape,
    cfg: &RefactorConfig,
) -> Result<Refactored> {
    if data.len() != shape.num_elements() {
        return Err(HpdrError::invalid("data length does not match shape"));
    }
    if cfg.rel_bound <= 0.0 || !cfg.rel_bound.is_finite() {
        return Err(HpdrError::invalid("bound must be positive"));
    }
    for &v in data {
        if !v.is_finite() {
            return Err(HpdrError::invalid("non-finite input"));
        }
    }
    let (mn, mx) = hpdr_kernels::min_max(adapter, data);
    let range = (mx.to_f64() - mn.to_f64()).max(f64::MIN_POSITIVE);
    let abs_eb = cfg.rel_bound * range;
    let eff = effective_shape(shape);

    let key = ContextKey {
        algorithm: "mgard-refactor",
        dtype: T::DTYPE,
        shape: eff.dims().to_vec(),
        config_hash: 0,
        device: 0,
    };
    let ctx = context_cache().get_or_create(&key, || MgardContext::new(&eff));
    let mut ctx = ctx.lock();
    let levels = ctx.hierarchy.total_levels();
    let MgardContext {
        hierarchy,
        node_levels,
        work,
    } = &mut *ctx;
    work.clear();
    work.extend(data.iter().map(|v| v.to_f64()));
    decompose(adapter, work, hierarchy);

    let bins: Vec<f64> = (0..levels).map(|l| level_bin(abs_eb, levels, l)).collect();
    let q = quantize(adapter, work, node_levels, &bins, cfg.dict_size);

    // Split symbols by level and encode each level independently.
    let hcfg = HuffmanConfig {
        dict_size: cfg.dict_size,
        chunk_elems: 1 << 16,
    };
    let mut segments = Vec::with_capacity(levels);
    for l in 0..levels {
        let level_symbols: Vec<u32> = q
            .symbols
            .iter()
            .zip(node_levels.iter())
            .filter(|(_, &nl)| nl as usize == l)
            .map(|(&s, _)| s)
            .collect();
        segments.push(hpdr_huffman::compress_u32(adapter, &level_symbols, &hcfg)?);
    }
    adapter.charge(KernelClass::Mgard, (data.len() * T::BYTES) as u64);
    Ok(Refactored {
        dtype_tag: T::DTYPE.tag(),
        shape: shape.clone(),
        abs_eb,
        dict_size: cfg.dict_size,
        levels,
        segments,
        outliers: q.outliers,
    })
}

/// Reconstruct using only levels `0..=up_to_level` (coarser levels carry
/// the large-scale structure; adding levels refines). Retrieving all
/// levels reproduces the full-accuracy reconstruction.
pub fn retrieve<T: Float>(
    adapter: &dyn DeviceAdapter,
    refactored: &Refactored,
    up_to_level: usize,
) -> Result<(Vec<T>, Shape)> {
    if refactored.dtype_tag != T::DTYPE.tag() {
        return Err(HpdrError::invalid("dtype mismatch"));
    }
    let shape = refactored.shape.clone();
    let eff = effective_shape(&shape);
    let up_to = up_to_level.min(refactored.levels - 1);

    let key = ContextKey {
        algorithm: "mgard-refactor",
        dtype: T::DTYPE,
        shape: eff.dims().to_vec(),
        config_hash: 0,
        device: 0,
    };
    let ctx = context_cache().get_or_create(&key, || MgardContext::new(&eff));
    let mut ctx = ctx.lock();
    if ctx.hierarchy.total_levels() != refactored.levels {
        return Err(HpdrError::corrupt("level count mismatch with shape"));
    }
    let levels = refactored.levels;
    let MgardContext {
        hierarchy,
        node_levels,
        ..
    } = &mut *ctx;

    // Decode retrieved segments; deeper levels decode to empty (zeros).
    let mut per_level: Vec<Option<Vec<u32>>> = Vec::with_capacity(levels);
    for (l, seg) in refactored.segments.iter().enumerate() {
        if l <= up_to {
            per_level.push(Some(hpdr_huffman::decompress_u32(adapter, seg)?));
        } else {
            per_level.push(None);
        }
    }

    // Reassemble the full symbol array in node order.
    let n = eff.num_elements();
    let mut cursors = vec![0usize; levels];
    let mut symbols = vec![0u32; n];
    let mut suppressed = vec![false; n];
    for i in 0..n {
        let l = node_levels[i] as usize;
        match &per_level[l] {
            Some(syms) => {
                let c = cursors[l];
                let s = *syms
                    .get(c)
                    .ok_or_else(|| HpdrError::corrupt("level segment too short"))?;
                symbols[i] = s;
                cursors[l] += 1;
            }
            None => {
                suppressed[i] = true;
            }
        }
    }
    for (l, p) in per_level.iter().enumerate() {
        if let Some(syms) = p {
            if cursors[l] != syms.len() {
                return Err(HpdrError::corrupt("level segment too long"));
            }
        }
    }

    // Dequantize (suppressed coefficients read as exactly zero).
    let dict_size = refactored.dict_size;
    let bins: Vec<f64> = (0..levels)
        .map(|l| level_bin(refactored.abs_eb, levels, l))
        .collect();
    // Neutralize suppressed nodes: set them to the zero symbol.
    let zero_sym = dict_size / 2;
    for (i, s) in symbols.iter_mut().enumerate() {
        if suppressed[i] {
            *s = zero_sym;
        }
    }
    let outliers: Vec<(u64, i64)> = refactored
        .outliers
        .iter()
        .filter(|&&(i, _)| !suppressed[i as usize])
        .copied()
        .collect();
    let q = Quantized { symbols, outliers };
    let mut coeffs = dequantize(adapter, &q, node_levels, &bins, dict_size);
    recompose(adapter, &mut coeffs, hierarchy);
    adapter.charge(KernelClass::Mgard, (n * T::BYTES) as u64);
    Ok((coeffs.iter().map(|&v| T::from_f64(v)).collect(), shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn smooth(dims: &[usize]) -> (Vec<f64>, Shape) {
        let shape = Shape::new(dims);
        let data = (0..shape.num_elements())
            .map(|i| {
                let idx = shape.unravel(i);
                idx.iter()
                    .enumerate()
                    .map(|(d, &x)| ((x as f64 / dims[d] as f64) * (2.0 + d as f64)).sin())
                    .sum::<f64>()
            })
            .collect();
        (data, shape)
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn full_retrieval_meets_the_bound() {
        let adapter = CpuParallelAdapter::new(4);
        let (data, shape) = smooth(&[17, 17]);
        let cfg = RefactorConfig {
            rel_bound: 1e-4,
            dict_size: 8192,
        };
        let r = refactor(&adapter, &data, &shape, &cfg).unwrap();
        let (out, s) = retrieve::<f64>(&adapter, &r, r.levels - 1).unwrap();
        assert_eq!(s, shape);
        let range = 4.0;
        assert!(
            max_err(&data, &out) <= 1e-4 * range,
            "err {}",
            max_err(&data, &out)
        );
    }

    #[test]
    fn error_decreases_monotonically_with_levels() {
        let adapter = CpuParallelAdapter::new(4);
        let (data, shape) = smooth(&[33, 33]);
        let r = refactor(&adapter, &data, &shape, &RefactorConfig::default()).unwrap();
        let mut last = f64::INFINITY;
        for k in 0..r.levels {
            let (out, _) = retrieve::<f64>(&adapter, &r, k).unwrap();
            let err = max_err(&data, &out);
            assert!(
                err <= last * 1.05,
                "error grew adding level {k}: {err} > {last}"
            );
            last = err;
        }
        // Coarse retrieval is genuinely coarse, full retrieval is tight.
        assert!(last < 1e-5);
    }

    #[test]
    fn progressive_bytes_grow_with_levels() {
        let adapter = SerialAdapter::new();
        let (data, shape) = smooth(&[33, 17]);
        let r = refactor(&adapter, &data, &shape, &RefactorConfig::default()).unwrap();
        let mut last = 0usize;
        for k in 0..r.levels {
            let b = r.bytes_up_to(k);
            assert!(b >= last);
            last = b;
        }
        assert_eq!(last, r.total_bytes());
        // The coarse prefix is a strict subset of the full payload.
        assert!(r.bytes_up_to(0) < r.total_bytes());
    }

    #[test]
    fn container_roundtrip_and_corruption() {
        let adapter = SerialAdapter::new();
        let (data, shape) = smooth(&[9, 9, 9]);
        let r = refactor(&adapter, &data, &shape, &RefactorConfig::default()).unwrap();
        let bytes = r.to_bytes();
        let parsed = Refactored::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, r);
        for cut in [0usize, 4, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(Refactored::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Retrieval from the parsed container still works.
        let (out, _) = retrieve::<f64>(&adapter, &parsed, 0).unwrap();
        assert_eq!(out.len(), data.len());
    }

    #[test]
    fn coarse_retrieval_keeps_large_scale_structure() {
        let adapter = SerialAdapter::new();
        // Linear ramp: perfectly represented by the coarsest level alone.
        let shape = Shape::new(&[33]);
        let data: Vec<f64> = (0..33).map(|i| i as f64).collect();
        let r = refactor(
            &adapter,
            &data,
            &shape,
            &RefactorConfig {
                rel_bound: 1e-8,
                dict_size: 8192,
            },
        )
        .unwrap();
        let (coarse, _) = retrieve::<f64>(&adapter, &r, 0).unwrap();
        // A ramp has zero fine-level coefficients, so level 0 suffices.
        assert!(
            max_err(&data, &coarse) < 1e-3,
            "err {}",
            max_err(&data, &coarse)
        );
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let adapter = SerialAdapter::new();
        let (data, shape) = smooth(&[9, 9]);
        let r = refactor(&adapter, &data, &shape, &RefactorConfig::default()).unwrap();
        assert!(retrieve::<f32>(&adapter, &r, 0).is_err());
    }
}
