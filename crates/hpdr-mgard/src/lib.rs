//! # hpdr-mgard — MGARD-X
//!
//! Portable multigrid error-bounded lossy compressor on the HPDR
//! abstractions (paper §IV-A, Algorithm 1): multilevel decomposition
//! (multilinear-interpolation coefficients + L2-projection corrections
//! via mass-transfer and batched tridiagonal solves), per-level linear
//! quantization via Map&Process, and Huffman entropy coding.
//!
//! Works on 1–4D uniform grids of arbitrary extent (4D folds into 3D),
//! `f32`/`f64`, with relative or absolute L∞ error bounds. Reduction
//! contexts (hierarchy, node-level maps, scratch) are cached through the
//! Context Memory Model.

// The coefficient kernels write disjoint index sets of shared outputs through
// `hpdr_core::SharedSlice` (each site documents its disjointness
// argument) — part of the workspace's sanctioned `unsafe` island under
// `unsafe_code = "deny"`.
#![allow(unsafe_code)]

pub mod codec;
pub mod decompose;
pub mod hierarchy;
pub mod operators;
pub mod quantize;

pub use codec::{compress, context_cache, decompress, ErrorBound, MgardConfig, MgardContext};
pub use hierarchy::Hierarchy;
pub mod reducer;
pub use reducer::MgardReducer;
pub mod refactor;
pub use refactor::{refactor, retrieve, RefactorConfig, Refactored};
