//! MGARD-X end-to-end codec (paper Algorithm 1 / Fig. 5):
//! multilevel decomposition → per-level linear quantization → Huffman.

use crate::decompose::{decompose, recompose};
use crate::hierarchy::Hierarchy;
use crate::quantize::{dequantize, level_bin, quantize, Quantized};
use hpdr_core::{
    ByteReader, ByteWriter, ContextCache, ContextKey, DeviceAdapter, Float, FrameHeader, HpdrError,
    KernelClass, Result, Shape,
};
use hpdr_huffman::HuffmanConfig;

const FRAME: FrameHeader = FrameHeader::new(0x4D47_5831 /* "MGX1" */, 1, "MGARD-X");

/// Error-bound specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Bound relative to the data range: `abs = rel · (max − min)`.
    Relative(f64),
    /// Absolute bound.
    Absolute(f64),
}

/// MGARD-X configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgardConfig {
    pub error_bound: ErrorBound,
    /// Huffman dictionary size for quantized coefficients.
    pub dict_size: u32,
}

impl Default for MgardConfig {
    fn default() -> Self {
        MgardConfig {
            error_bound: ErrorBound::Relative(1e-3),
            dict_size: 8192,
        }
    }
}

impl MgardConfig {
    pub fn relative(eb: f64) -> MgardConfig {
        MgardConfig {
            error_bound: ErrorBound::Relative(eb),
            ..Default::default()
        }
    }

    pub fn absolute(eb: f64) -> MgardConfig {
        MgardConfig {
            error_bound: ErrorBound::Absolute(eb),
            ..Default::default()
        }
    }

    pub fn config_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self.error_bound {
            ErrorBound::Relative(e) => {
                w.put_u8(0);
                w.put_f64(e);
            }
            ErrorBound::Absolute(e) => {
                w.put_u8(1);
                w.put_f64(e);
            }
        }
        w.put_u32(self.dict_size);
        w.into_vec()
    }
}

/// Reusable per-shape reduction context (the CMM payload): hierarchy and
/// node-level map are shape-derived and allocation-heavy, so caching them
/// removes all per-call setup allocations (paper §III-B).
pub struct MgardContext {
    pub hierarchy: Hierarchy,
    pub node_levels: Vec<u8>,
    /// Scratch for the f64 working copy, reused across calls.
    pub work: Vec<f64>,
}

impl MgardContext {
    pub fn new(shape: &Shape) -> MgardContext {
        let hierarchy = Hierarchy::new(shape);
        let node_levels = hierarchy.node_levels();
        MgardContext {
            hierarchy,
            node_levels,
            work: Vec::new(),
        }
    }
}

/// Global context cache shared by all MGARD-X invocations.
pub fn context_cache() -> &'static ContextCache<MgardContext> {
    static CACHE: std::sync::OnceLock<ContextCache<MgardContext>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| ContextCache::new(16))
}

/// Fold 4D shapes into 3D (merge the two slowest dims), matching the
/// ZFP-X convention; decorrelation across the merged boundary is
/// sacrificed, the error bound is not.
fn effective_shape(shape: &Shape) -> Shape {
    let d = shape.dims();
    if d.len() == 4 {
        Shape::new(&[d[0] * d[1], d[2], d[3]])
    } else {
        shape.clone()
    }
}

fn resolve_abs_eb<T: Float>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    bound: ErrorBound,
) -> Result<f64> {
    let abs = match bound {
        ErrorBound::Absolute(e) => e,
        ErrorBound::Relative(rel) => {
            if rel <= 0.0 || !rel.is_finite() {
                return Err(HpdrError::invalid("relative bound must be positive"));
            }
            let (mn, mx) = hpdr_kernels::min_max(adapter, data);
            let range = mx.to_f64() - mn.to_f64();
            if range == 0.0 {
                // Constant data: any positive bound works.
                rel
            } else {
                rel * range
            }
        }
    };
    if abs <= 0.0 || !abs.is_finite() {
        return Err(HpdrError::invalid(
            "error bound must be positive and finite",
        ));
    }
    Ok(abs)
}

/// Compress with MGARD-X. Uses (and populates) the shared context cache.
pub fn compress<T: Float>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    shape: &Shape,
    cfg: &MgardConfig,
) -> Result<Vec<u8>> {
    if data.len() != shape.num_elements() {
        return Err(HpdrError::invalid(format!(
            "data length {} does not match shape {shape}",
            data.len()
        )));
    }
    if cfg.dict_size < 16 {
        return Err(HpdrError::invalid("dict_size must be at least 16"));
    }
    for &v in data.iter() {
        if !v.is_finite() {
            return Err(HpdrError::invalid("non-finite value in MGARD input"));
        }
    }
    let abs_eb = resolve_abs_eb(adapter, data, cfg.error_bound)?;
    let eff = effective_shape(shape);

    // CMM lookup: hierarchy + node-level map keyed by shape & device.
    let key = ContextKey {
        algorithm: "mgard-x",
        dtype: T::DTYPE,
        shape: eff.dims().to_vec(),
        config_hash: hpdr_core::fnv1a(&cfg.config_bytes()),
        device: 0,
    };
    let ctx = context_cache().get_or_create(&key, || MgardContext::new(&eff));
    let mut ctx = ctx.lock();
    let levels = ctx.hierarchy.total_levels();

    // Decompose on an f64 working copy (reused across calls).
    ctx.work.clear();
    ctx.work.extend(data.iter().map(|v| v.to_f64()));
    let MgardContext {
        hierarchy,
        node_levels,
        work,
    } = &mut *ctx;
    decompose(adapter, work, hierarchy);

    // Per-level quantization (Map&Process).
    let bins: Vec<f64> = (0..levels).map(|l| level_bin(abs_eb, levels, l)).collect();
    let q = quantize(adapter, work, node_levels, &bins, cfg.dict_size);

    // Entropy encoding.
    let hcfg = HuffmanConfig {
        dict_size: cfg.dict_size,
        chunk_elems: 1 << 16,
    };
    let encoded = hpdr_huffman::compress_u32(adapter, &q.symbols, &hcfg)?;

    adapter.charge(KernelClass::Mgard, (data.len() * T::BYTES) as u64);

    // Container.
    let mut w = ByteWriter::with_capacity(encoded.len() + 128);
    FRAME.write(&mut w);
    w.put_u8(T::DTYPE.tag());
    w.put_u8(shape.ndims() as u8);
    for &d in shape.dims() {
        w.put_u64(d as u64);
    }
    w.put_f64(abs_eb);
    w.put_u8(levels as u8);
    w.put_u32(cfg.dict_size);
    w.put_u64(q.outliers.len() as u64);
    for &(idx, qi) in &q.outliers {
        w.put_u64(idx);
        w.put_i64(qi);
    }
    w.put_block(&encoded);
    Ok(w.into_vec())
}

/// Decompress an MGARD-X stream.
pub fn decompress<T: Float>(adapter: &dyn DeviceAdapter, bytes: &[u8]) -> Result<(Vec<T>, Shape)> {
    let mut r = ByteReader::new(bytes);
    FRAME.read(&mut r)?;
    if r.get_u8()? != T::DTYPE.tag() {
        return Err(HpdrError::invalid("dtype mismatch in MGARD-X stream"));
    }
    let nd = r.get_u8()? as usize;
    if !(1..=4).contains(&nd) {
        return Err(HpdrError::corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(nd);
    for _ in 0..nd {
        let d = r.get_u64()? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(HpdrError::corrupt("implausible dimension"));
        }
        dims.push(d);
    }
    let shape = Shape::try_new(&dims)?;
    let eff = effective_shape(&shape);
    let abs_eb = r.get_f64()?;
    if abs_eb <= 0.0 || !abs_eb.is_finite() {
        return Err(HpdrError::corrupt("bad error bound in stream"));
    }
    let levels = r.get_u8()? as usize;
    let dict_size = r.get_u32()?;
    if dict_size < 16 {
        return Err(HpdrError::corrupt("bad dictionary size"));
    }
    let n_out = r.get_u64()? as usize;
    if n_out > shape.num_elements() {
        return Err(HpdrError::corrupt("more outliers than elements"));
    }
    let mut outliers = Vec::with_capacity(n_out);
    for _ in 0..n_out {
        let idx = r.get_u64()?;
        let qi = r.get_i64()?;
        if idx as usize >= shape.num_elements() {
            return Err(HpdrError::corrupt("outlier index out of range"));
        }
        outliers.push((idx, qi));
    }
    let encoded = r.get_block()?;
    r.expect_exhausted()?;

    let symbols = hpdr_huffman::decompress_u32(adapter, encoded)?;
    if symbols.len() != shape.num_elements() {
        return Err(HpdrError::corrupt("symbol count does not match shape"));
    }

    let key = ContextKey {
        algorithm: "mgard-x-dec",
        dtype: T::DTYPE,
        shape: eff.dims().to_vec(),
        config_hash: 0,
        device: 0,
    };
    let ctx = context_cache().get_or_create(&key, || MgardContext::new(&eff));
    let mut ctx = ctx.lock();
    if ctx.hierarchy.total_levels() != levels {
        return Err(HpdrError::corrupt("level count mismatch with shape"));
    }
    let bins: Vec<f64> = (0..levels).map(|l| level_bin(abs_eb, levels, l)).collect();
    let q = Quantized { symbols, outliers };
    let MgardContext {
        hierarchy,
        node_levels,
        work,
    } = &mut *ctx;
    let mut coeffs = dequantize(adapter, &q, node_levels, &bins, dict_size);
    recompose(adapter, &mut coeffs, hierarchy);
    let _ = work;

    adapter.charge(KernelClass::Mgard, (coeffs.len() * T::BYTES) as u64);
    let out: Vec<T> = coeffs.iter().map(|&v| T::from_f64(v)).collect();
    Ok((out, shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn smooth_field(dims: &[usize]) -> (Vec<f64>, Shape) {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let idx = shape.unravel(i);
                let mut v = 10.0;
                for (d, &x) in idx.iter().enumerate() {
                    v += ((x as f64 / dims[d] as f64) * (3.0 + d as f64)).sin();
                }
                v
            })
            .collect();
        (data, shape)
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn error_bound_is_honoured_3d() {
        let adapter = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_field(&[20, 20, 20]);
        let range: f64 = {
            let mx = data.iter().cloned().fold(f64::MIN, f64::max);
            let mn = data.iter().cloned().fold(f64::MAX, f64::min);
            mx - mn
        };
        for rel in [1e-1f64, 1e-2, 1e-4] {
            let c = compress(&adapter, &data, &shape, &MgardConfig::relative(rel)).unwrap();
            let (out, s) = decompress::<f64>(&adapter, &c).unwrap();
            assert_eq!(s, shape);
            let err = max_err(&data, &out);
            assert!(err <= rel * range, "rel={rel}: err {err} > {}", rel * range);
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        let adapter = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_field(&[32, 32, 32]);
        let c = compress(&adapter, &data, &shape, &MgardConfig::relative(1e-2)).unwrap();
        let raw = data.len() * 8;
        let ratio = raw as f64 / c.len() as f64;
        assert!(ratio > 8.0, "ratio {ratio:.1} too low for smooth data");
    }

    #[test]
    fn tighter_bound_means_bigger_stream() {
        let adapter = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_field(&[24, 24, 24]);
        let loose = compress(&adapter, &data, &shape, &MgardConfig::relative(1e-1))
            .unwrap()
            .len();
        let tight = compress(&adapter, &data, &shape, &MgardConfig::relative(1e-5))
            .unwrap()
            .len();
        assert!(tight > loose, "tight {tight} <= loose {loose}");
    }

    #[test]
    fn f32_roundtrip_and_bound() {
        let adapter = SerialAdapter::new();
        let shape = Shape::new(&[40, 30]);
        let data: Vec<f32> = (0..shape.num_elements())
            .map(|i| ((i as f32) * 0.01).sin() * 100.0)
            .collect();
        let c = compress(&adapter, &data, &shape, &MgardConfig::relative(1e-3)).unwrap();
        let (out, _) = decompress::<f32>(&adapter, &c).unwrap();
        let err = data
            .iter()
            .zip(&out)
            .map(|(x, y)| (x - y).abs() as f64)
            .fold(0.0, f64::max);
        assert!(err <= 1e-3 * 200.0 * 1.01, "err {err}");
    }

    #[test]
    fn absolute_bound_mode() {
        let adapter = SerialAdapter::new();
        let (data, shape) = smooth_field(&[25, 17]);
        let c = compress(&adapter, &data, &shape, &MgardConfig::absolute(0.05)).unwrap();
        let (out, _) = decompress::<f64>(&adapter, &c).unwrap();
        assert!(max_err(&data, &out) <= 0.05);
    }

    #[test]
    fn constant_and_tiny_inputs() {
        let adapter = SerialAdapter::new();
        let data = vec![7.25f64; 64];
        let shape = Shape::new(&[4, 4, 4]);
        let c = compress(&adapter, &data, &shape, &MgardConfig::relative(1e-3)).unwrap();
        let (out, _) = decompress::<f64>(&adapter, &c).unwrap();
        assert!(max_err(&data, &out) < 1e-3);

        let tiny = vec![1.0f64, 2.0];
        let c = compress(
            &adapter,
            &tiny,
            &Shape::new(&[2]),
            &MgardConfig::relative(1e-2),
        )
        .unwrap();
        let (out, _) = decompress::<f64>(&adapter, &c).unwrap();
        assert!(max_err(&tiny, &out) <= 1e-2);
    }

    #[test]
    fn four_d_input_is_folded() {
        let adapter = SerialAdapter::new();
        let shape = Shape::new(&[2, 3, 10, 8]);
        let data: Vec<f64> = (0..shape.num_elements())
            .map(|i| (i as f64 * 0.1).cos())
            .collect();
        let c = compress(&adapter, &data, &shape, &MgardConfig::relative(1e-3)).unwrap();
        let (out, s) = decompress::<f64>(&adapter, &c).unwrap();
        assert_eq!(s, shape);
        assert!(max_err(&data, &out) <= 2.0 * 1e-3 * 1.01);
    }

    #[test]
    fn adapter_independent_streams() {
        let (data, shape) = smooth_field(&[15, 15]);
        let cfg = MgardConfig::relative(1e-3);
        let a = compress(&SerialAdapter::new(), &data, &shape, &cfg).unwrap();
        let b = compress(&CpuParallelAdapter::new(8), &data, &shape, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_input() {
        let adapter = SerialAdapter::new();
        let shape = Shape::new(&[4, 4]);
        assert!(compress(&adapter, &[1.0f64; 3], &shape, &MgardConfig::default()).is_err());
        let mut nan = vec![0.0f64; 16];
        nan[5] = f64::NAN;
        assert!(compress(&adapter, &nan, &shape, &MgardConfig::default()).is_err());
        assert!(compress(
            &adapter,
            &[1.0f64; 16],
            &shape,
            &MgardConfig::relative(-1.0)
        )
        .is_err());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let adapter = SerialAdapter::new();
        let (data, shape) = smooth_field(&[9, 9]);
        let good = compress(&adapter, &data, &shape, &MgardConfig::relative(1e-2)).unwrap();
        for cut in [0, 5, 12, 30, good.len() / 2, good.len() - 1] {
            assert!(
                decompress::<f64>(&adapter, &good[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut bad = good.clone();
        bad[0] ^= 1;
        assert!(decompress::<f64>(&adapter, &bad).is_err());
        assert!(decompress::<f32>(&adapter, &good).is_err());
    }

    #[test]
    fn context_cache_hits_on_repeat() {
        let adapter = SerialAdapter::new();
        let (data, shape) = smooth_field(&[21, 13]);
        let cfg = MgardConfig::relative(1e-2);
        let before = context_cache().stats();
        compress(&adapter, &data, &shape, &cfg).unwrap();
        compress(&adapter, &data, &shape, &cfg).unwrap();
        compress(&adapter, &data, &shape, &cfg).unwrap();
        let after = context_cache().stats();
        assert!(after.hits >= before.hits + 2, "{before:?} -> {after:?}");
    }
}
