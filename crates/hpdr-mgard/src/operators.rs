//! 1-D building blocks of the MGARD decomposition, all non-uniform-aware
//! (node coordinates are the original grid indices; only the trailing
//! interval of a level can be shorter).
//!
//! The level-(l → l−1) correction is the L2 projection of the coefficient
//! function onto the coarse space:
//!
//! ```text
//! correction = M_c⁻¹ · Pᵀ · M_f · w
//! ```
//!
//! applied dimension by dimension (paper Alg. 1 lines 7–9: `mass_trans`
//! via the Locality abstraction, `tridiag` via the Iterative abstraction).

use crate::hierarchy::{role_of, NodeRole};

/// Interpolation weights of a new node at fine position `pos` (odd) w.r.t.
/// its coarse neighbours at `pos - 1` / `pos + 1`: `(w_left, w_right)`.
pub fn interp_weights(coords: &[usize], pos: usize) -> (f64, f64) {
    let xa = coords[pos - 1] as f64;
    let xm = coords[pos] as f64;
    let xb = coords[pos + 1] as f64;
    let h = xb - xa;
    ((xb - xm) / h, (xm - xa) / h)
}

/// Fine-grid mass-matrix multiply along one line: `out = M_f · vals`.
/// `coords` are the fine node coordinates.
pub fn mass_apply(vals: &[f64], coords: &[usize], out: &mut [f64]) {
    let n = vals.len();
    debug_assert_eq!(coords.len(), n);
    debug_assert_eq!(out.len(), n);
    if n == 1 {
        out[0] = vals[0];
        return;
    }
    for i in 0..n {
        let hl = if i > 0 {
            (coords[i] - coords[i - 1]) as f64
        } else {
            0.0
        };
        let hr = if i + 1 < n {
            (coords[i + 1] - coords[i]) as f64
        } else {
            0.0
        };
        let mut acc = vals[i] * (hl + hr) / 3.0;
        if i > 0 {
            acc += vals[i - 1] * hl / 6.0;
        }
        if i + 1 < n {
            acc += vals[i + 1] * hr / 6.0;
        }
        out[i] = acc;
    }
}

/// Restriction `out = Pᵀ · fine`: coarse nodes keep their own entry plus
/// the interpolation-weighted contributions of adjacent new nodes.
#[allow(clippy::needless_range_loop)] // `pos` is classified by role_of
pub fn restrict(fine: &[f64], coords: &[usize], out: &mut [f64]) {
    let n = fine.len();
    out.fill(0.0);
    if n <= 2 {
        out[..n].copy_from_slice(fine);
        return;
    }
    for pos in 0..n {
        match role_of(pos, n) {
            NodeRole::Coarse { coarse_pos } => out[coarse_pos] += fine[pos],
            NodeRole::New => {
                let (wl, wr) = interp_weights(coords, pos);
                let NodeRole::Coarse { coarse_pos: cl } = role_of(pos - 1, n) else {
                    unreachable!("neighbour of a new node is coarse");
                };
                let NodeRole::Coarse { coarse_pos: cr } = role_of(pos + 1, n) else {
                    unreachable!("neighbour of a new node is coarse");
                };
                out[cl] += wl * fine[pos];
                out[cr] += wr * fine[pos];
            }
        }
    }
}

/// Solve the coarse mass system `M_c · x = b` in place (Thomas algorithm).
/// `coords` are the *coarse* node coordinates. `scratch` must hold at
/// least `b.len()` values.
pub fn mass_solve(b: &mut [f64], coords: &[usize], scratch: &mut [f64]) {
    let n = b.len();
    debug_assert_eq!(coords.len(), n);
    if n == 1 {
        // M = [h_total/3]? A single node means a degenerate dim: identity.
        return;
    }
    let h = |i: usize| (coords[i + 1] - coords[i]) as f64;
    let diag = |i: usize| {
        let hl = if i > 0 { h(i - 1) } else { 0.0 };
        let hr = if i + 1 < n { h(i) } else { 0.0 };
        (hl + hr) / 3.0
    };
    let off = |i: usize| h(i) / 6.0; // coupling between i and i+1
                                     // Forward sweep.
    let cp = scratch;
    cp[0] = off(0) / diag(0);
    b[0] /= diag(0);
    for i in 1..n {
        let m = diag(i) - off(i - 1) * cp[i - 1];
        if i + 1 < n {
            cp[i] = off(i) / m;
        }
        b[i] = (b[i] - off(i - 1) * b[i - 1]) / m;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        b[i] -= cp[i] * b[i + 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mass(coords: &[usize]) -> Vec<Vec<f64>> {
        let n = coords.len();
        let mut m = vec![vec![0.0; n]; n];
        let h = |i: usize| (coords[i + 1] - coords[i]) as f64;
        for i in 0..n {
            let hl = if i > 0 { h(i - 1) } else { 0.0 };
            let hr = if i + 1 < n { h(i) } else { 0.0 };
            m[i][i] = (hl + hr) / 3.0;
            if i > 0 {
                m[i][i - 1] = h(i - 1) / 6.0;
            }
            if i + 1 < n {
                m[i][i + 1] = h(i) / 6.0;
            }
        }
        m
    }

    #[test]
    fn mass_apply_matches_dense() {
        let coords = [0usize, 2, 4, 6, 8];
        let vals = [1.0, -2.0, 3.0, 0.5, 4.0];
        let mut out = [0.0; 5];
        mass_apply(&vals, &coords, &mut out);
        let m = dense_mass(&coords);
        for i in 0..5 {
            let expect: f64 = (0..5).map(|j| m[i][j] * vals[j]).sum();
            assert!((out[i] - expect).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn mass_solve_inverts_mass_apply() {
        for coords in [
            vec![0usize, 1, 2, 3, 4, 5],
            vec![0, 4, 6],
            vec![0, 8],
            vec![0, 2, 4, 5],
        ] {
            let n = coords.len();
            let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 1.7).sin() + 0.3).collect();
            let mut b = vec![0.0; n];
            mass_apply(&vals, &coords, &mut b);
            let mut scratch = vec![0.0; n];
            mass_solve(&mut b, &coords, &mut scratch);
            for i in 0..n {
                assert!((b[i] - vals[i]).abs() < 1e-10, "coords={coords:?} i={i}");
            }
        }
    }

    #[test]
    fn interp_weights_uniform_are_halves() {
        let coords = [0usize, 1, 2, 3, 4];
        let (wl, wr) = interp_weights(&coords, 1);
        assert!((wl - 0.5).abs() < 1e-15 && (wr - 0.5).abs() < 1e-15);
    }

    #[test]
    fn interp_weights_nonuniform_tail() {
        // Fine list [0, 4, 6]: new node 4 sits 4/6 of the way to 6.
        let coords = [0usize, 4, 6];
        let (wl, wr) = interp_weights(&coords, 1);
        assert!((wl - (2.0 / 6.0)).abs() < 1e-15);
        assert!((wr - (4.0 / 6.0)).abs() < 1e-15);
    }

    #[test]
    fn restrict_passes_coarse_values_through() {
        // Fine values only at coarse positions (new = 0) restrict to
        // themselves.
        let coords = [0usize, 1, 2, 3, 4];
        let fine = [5.0, 0.0, -3.0, 0.0, 7.0];
        let mut out = [0.0; 3];
        restrict(&fine, &coords, &mut out);
        assert_eq!(out, [5.0, -3.0, 7.0]);
    }

    #[test]
    fn restrict_distributes_new_node_mass() {
        let coords = [0usize, 1, 2];
        let fine = [0.0, 4.0, 0.0];
        let mut out = [0.0; 2];
        restrict(&fine, &coords, &mut out);
        assert_eq!(out, [2.0, 2.0]);
    }

    #[test]
    fn restrict_even_length_list() {
        // len 4 → coarse [p0, p2, p3]; new node p1 splits between p0, p2.
        let coords = [0usize, 2, 4, 6];
        let fine = [1.0, 8.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        restrict(&fine, &coords, &mut out);
        assert_eq!(out, [1.0 + 4.0, 2.0 + 4.0, 3.0]);
    }

    #[test]
    fn single_node_ops_are_identity() {
        let coords = [0usize];
        let vals = [3.5];
        let mut out = [0.0];
        mass_apply(&vals, &coords, &mut out);
        assert_eq!(out, [3.5]);
        let mut b = [2.5];
        let mut s = [0.0];
        mass_solve(&mut b, &coords, &mut s);
        assert_eq!(b, [2.5]);
    }
}
