//! Multilevel grid hierarchy (paper §IV-A).
//!
//! MGARD treats the data as a piecewise-multilinear function and
//! decomposes it level by level. Each dimension's node set coarsens by
//! keeping every other node *and always the last* (so arbitrary — not
//! just 2^k+1 — sizes work; the trailing interval simply becomes
//! non-uniform, which all 1-D operators handle via true node
//! coordinates). A dimension stops coarsening once it has two nodes.
//!
//! Level `L` (finest) is the input grid; level `0` is the coarsest.

use hpdr_core::Shape;

/// Per-dimension, per-level node index lists.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// `nodes[l][dim]` = sorted node indices of level `l` along `dim`.
    nodes: Vec<Vec<Vec<usize>>>,
    shape: Shape,
}

/// Coarsen one dimension's node list: even positions plus the last node.
fn coarsen(list: &[usize]) -> Vec<usize> {
    if list.len() <= 2 {
        return list.to_vec();
    }
    let mut out: Vec<usize> = list.iter().copied().step_by(2).collect();
    if *out.last().unwrap() != *list.last().unwrap() {
        out.push(*list.last().unwrap());
    }
    out
}

impl Hierarchy {
    pub fn new(shape: &Shape) -> Hierarchy {
        let mut levels: Vec<Vec<Vec<usize>>> = Vec::new();
        let mut current: Vec<Vec<usize>> = shape
            .dims()
            .iter()
            .map(|&n| (0..n).collect::<Vec<usize>>())
            .collect();
        levels.push(current.clone());
        // Coarsen until every dimension bottoms out.
        while current.iter().any(|l| l.len() > 2) {
            current = current.iter().map(|l| coarsen(l)).collect();
            levels.push(current.clone());
        }
        levels.reverse(); // index 0 = coarsest
        Hierarchy {
            nodes: levels,
            shape: shape.clone(),
        }
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of levels (`L + 1`).
    pub fn total_levels(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the finest level (`L`).
    pub fn finest(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Node list of `level` along `dim`.
    pub fn dim_nodes(&self, level: usize, dim: usize) -> &[usize] {
        &self.nodes[level][dim]
    }

    /// Grid extents (list lengths per dim) at `level`.
    pub fn level_dims(&self, level: usize) -> Vec<usize> {
        self.nodes[level].iter().map(|l| l.len()).collect()
    }

    /// Number of grid nodes at `level`.
    pub fn level_nodes(&self, level: usize) -> usize {
        self.nodes[level].iter().map(|l| l.len()).product()
    }

    /// For every full-resolution flat index, the level at which that node
    /// first appears (its coefficient level). Level 0 nodes are the
    /// coarsest values; level `l >= 1` nodes are new at `l`.
    pub fn node_levels(&self) -> Vec<u8> {
        let dims = self.shape.dims();
        let nd = dims.len();
        // Per-dim map: index -> first level containing it.
        let mut dim_level: Vec<Vec<u8>> = (0..nd).map(|d| vec![0u8; dims[d]]).collect();
        for d in 0..nd {
            // Walk from coarsest up; first time an index appears wins.
            let mut assigned = vec![false; dims[d]];
            for (l, level) in self.nodes.iter().enumerate() {
                for &idx in &level[d] {
                    if !assigned[idx] {
                        assigned[idx] = true;
                        dim_level[d][idx] = l as u8;
                    }
                }
            }
            debug_assert!(assigned.into_iter().all(|a| a));
        }
        // A node's level is the max of its per-dim levels.
        let n = self.shape.num_elements();
        let strides = self.shape.strides();
        let mut out = vec![0u8; n];
        for (flat, slot) in out.iter_mut().enumerate() {
            let mut rem = flat;
            let mut lvl = 0u8;
            for d in 0..nd {
                let idx = rem / strides[d];
                rem %= strides[d];
                lvl = lvl.max(dim_level[d][idx]);
            }
            *slot = lvl;
        }
        out
    }

    /// Number of coefficients attributed to each level (sums to the total
    /// element count) — the subset sizes for Map&Process quantization.
    pub fn level_coefficient_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.total_levels()];
        for l in self.node_levels() {
            counts[l as usize] += 1;
        }
        counts
    }
}

/// Position classification of a fine-list position within one dimension's
/// coarsening step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Also present on the coarse level (even position or the last node).
    Coarse {
        /// Position in the coarse list.
        coarse_pos: usize,
    },
    /// New at this level: interpolated from fine-list neighbours
    /// `pos - 1` and `pos + 1` (both coarse).
    New,
}

/// Classify position `pos` of a fine list of length `len`.
pub fn role_of(pos: usize, len: usize) -> NodeRole {
    debug_assert!(pos < len);
    if len <= 2 {
        return NodeRole::Coarse { coarse_pos: pos };
    }
    if pos == len - 1 {
        // Last node is always kept.
        let evens = len.div_ceil(2);
        let coarse_pos = if (len - 1).is_multiple_of(2) {
            evens - 1
        } else {
            evens // appended after the even positions
        };
        return NodeRole::Coarse { coarse_pos };
    }
    if pos.is_multiple_of(2) {
        NodeRole::Coarse {
            coarse_pos: pos / 2,
        }
    } else {
        NodeRole::New
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarsen_odd_and_even_lengths() {
        assert_eq!(coarsen(&[0, 1, 2, 3, 4, 5, 6]), vec![0, 2, 4, 6]);
        assert_eq!(coarsen(&[0, 2, 4, 6]), vec![0, 4, 6]);
        assert_eq!(coarsen(&[0, 4, 6]), vec![0, 6]);
        assert_eq!(coarsen(&[0, 6]), vec![0, 6]);
        assert_eq!(coarsen(&[0]), vec![0]);
    }

    #[test]
    fn hierarchy_levels_for_power_of_two_plus_one() {
        let h = Hierarchy::new(&Shape::new(&[9]));
        assert_eq!(h.total_levels(), 4); // 9 → 5 → 3 → 2
        assert_eq!(h.dim_nodes(3, 0), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(h.dim_nodes(2, 0), &[0, 2, 4, 6, 8]);
        assert_eq!(h.dim_nodes(1, 0), &[0, 4, 8]);
        assert_eq!(h.dim_nodes(0, 0), &[0, 8]);
    }

    #[test]
    fn hierarchy_handles_arbitrary_sizes() {
        for n in [2usize, 3, 5, 7, 100, 511, 513] {
            let h = Hierarchy::new(&Shape::new(&[n]));
            // Coarsest level has exactly 2 nodes (or n if n < 3).
            let coarsest = h.dim_nodes(0, 0);
            assert!(coarsest.len() <= 2, "n={n}: {coarsest:?}");
            assert_eq!(*coarsest.first().unwrap(), 0);
            assert_eq!(*coarsest.last().unwrap(), n - 1);
            // Every level's nodes are a superset of the coarser level's.
            for l in 1..h.total_levels() {
                let fine = h.dim_nodes(l, 0);
                let coarse = h.dim_nodes(l - 1, 0);
                for c in coarse {
                    assert!(fine.contains(c), "n={n} l={l}");
                }
            }
            // Finest level is the full grid.
            assert_eq!(h.dim_nodes(h.finest(), 0).len(), n);
        }
    }

    #[test]
    fn mixed_dims_coarsen_together() {
        let h = Hierarchy::new(&Shape::new(&[17, 5]));
        // Dim 1 bottoms out earlier and then stays at 2 nodes.
        assert_eq!(h.dim_nodes(h.finest(), 1).len(), 5);
        assert_eq!(h.dim_nodes(0, 1).len(), 2);
        assert_eq!(h.dim_nodes(0, 0).len(), 2);
    }

    #[test]
    fn node_levels_partition_all_nodes() {
        let shape = Shape::new(&[9, 5]);
        let h = Hierarchy::new(&shape);
        let counts = h.level_coefficient_counts();
        assert_eq!(counts.iter().sum::<usize>(), 45);
        // Coarsest level: 2x2 corners.
        assert_eq!(counts[0], 4);
        // All counts positive except possibly intermediate saturated dims.
        assert!(counts[h.finest()] > 0);
    }

    #[test]
    fn role_classification() {
        // len 7: coarse at 0,2,4,6.
        assert_eq!(role_of(0, 7), NodeRole::Coarse { coarse_pos: 0 });
        assert_eq!(role_of(1, 7), NodeRole::New);
        assert_eq!(role_of(6, 7), NodeRole::Coarse { coarse_pos: 3 });
        // len 4 ([0,2,4,6] → [0,4,6]): pos 3 (last) coarse at coarse_pos 2.
        assert_eq!(role_of(0, 4), NodeRole::Coarse { coarse_pos: 0 });
        assert_eq!(role_of(1, 4), NodeRole::New);
        assert_eq!(role_of(2, 4), NodeRole::Coarse { coarse_pos: 1 });
        assert_eq!(role_of(3, 4), NodeRole::Coarse { coarse_pos: 2 });
        // len 2: both coarse.
        assert_eq!(role_of(0, 2), NodeRole::Coarse { coarse_pos: 0 });
        assert_eq!(role_of(1, 2), NodeRole::Coarse { coarse_pos: 1 });
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `pos` is the classified position
    fn roles_match_coarsen_output() {
        for len in 3usize..40 {
            let list: Vec<usize> = (0..len).collect();
            let coarse = coarsen(&list);
            for pos in 0..len {
                match role_of(pos, len) {
                    NodeRole::Coarse { coarse_pos } => {
                        assert_eq!(coarse[coarse_pos], list[pos], "len={len} pos={pos}");
                    }
                    NodeRole::New => {
                        assert!(!coarse.contains(&list[pos]), "len={len} pos={pos}");
                    }
                }
            }
        }
    }

    #[test]
    fn three_d_hierarchy_shapes() {
        let h = Hierarchy::new(&Shape::new(&[17, 17, 17]));
        assert_eq!(h.total_levels(), 5);
        assert_eq!(h.level_nodes(h.finest()), 17 * 17 * 17);
        assert_eq!(h.level_nodes(0), 8);
        assert_eq!(h.level_dims(2), vec![5, 5, 5]);
    }
}
