//! Multilevel decomposition / recomposition (paper Algorithm 1, lines
//! 5–13, and its inverse).
//!
//! Per level `l → l−1`:
//! 1. **Coefficients** (Locality + `lerp`): every node new at level `l`
//!    becomes `mc = u − multilinear-interp(coarse neighbours)`, in place.
//! 2. **Correction** (Locality `mass_trans` + Iterative `tridiag`): the
//!    L2 projection of the coefficient function onto the coarse grid,
//!    computed dimension by dimension (`M_c⁻¹ · Pᵀ · M_f`).
//! 3. **Apply** (Locality `add`): `u[coarse] += correction`.
//!
//! Recomposition runs the exact same correction computation (the
//! coefficients are still in `u`), subtracts it, then re-interpolates.

use crate::hierarchy::{role_of, Hierarchy, NodeRole};
use crate::operators::{interp_weights, mass_apply, mass_solve, restrict};
use hpdr_core::{DeviceAdapter, Iterative, SharedSlice};

/// Multi-index decomposition of a flat position in row-major `dims`.
#[inline]
fn unravel(mut flat: usize, dims: &[usize], out: &mut [usize]) {
    for d in (0..dims.len()).rev() {
        out[d] = flat % dims[d];
        flat /= dims[d];
    }
}

fn strides_of(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for d in (0..dims.len().saturating_sub(1)).rev() {
        s[d] = s[d + 1] * dims[d + 1];
    }
    s
}

/// Full-array flat index of grid position `pos` on the level grid.
#[inline]
fn full_index(pos: &[usize], lists: &[&[usize]], full_strides: &[usize]) -> usize {
    pos.iter()
        .zip(lists)
        .zip(full_strides)
        .map(|((&p, l), &s)| l[p] * s)
        .sum()
}

/// Multilinear interpolation at a (partially) new node; coarse neighbour
/// values are read through `get(full_index)`.
fn interp_at(
    get: &dyn Fn(usize) -> f64,
    pos: &[usize],
    lists: &[&[usize]],
    full_strides: &[usize],
) -> f64 {
    let nd = pos.len();
    let mut new_dims = [0usize; 4];
    let mut n_new = 0;
    for (d, &p) in pos.iter().enumerate() {
        if matches!(role_of(p, lists[d].len()), NodeRole::New) {
            new_dims[n_new] = d;
            n_new += 1;
        }
    }
    debug_assert!(n_new > 0);
    let mut corner = [0usize; 4];
    let mut acc = 0.0;
    for mask in 0..(1usize << n_new) {
        corner[..nd].copy_from_slice(pos);
        let mut weight = 1.0;
        for (bit, &d) in new_dims[..n_new].iter().enumerate() {
            let (wl, wr) = interp_weights(lists[d], pos[d]);
            if mask >> bit & 1 == 0 {
                corner[d] = pos[d] - 1;
                weight *= wl;
            } else {
                corner[d] = pos[d] + 1;
                weight *= wr;
            }
        }
        acc += weight * get(full_index(&corner[..nd], lists, full_strides));
    }
    acc
}

/// Compute the level-`l` correction field from the coefficients currently
/// stored in `u`. Returns the correction on the level-(l−1) grid
/// (row-major over the coarse per-dim list lengths).
fn compute_correction(
    adapter: &dyn DeviceAdapter,
    u: &[f64],
    h: &Hierarchy,
    l: usize,
    full_strides: &[usize],
) -> Vec<f64> {
    let nd = h.shape().ndims();
    let fine_lists: Vec<&[usize]> = (0..nd).map(|d| h.dim_nodes(l, d)).collect();
    let coarse_lists: Vec<&[usize]> = (0..nd).map(|d| h.dim_nodes(l - 1, d)).collect();
    let fine_dims: Vec<usize> = fine_lists.iter().map(|l| l.len()).collect();

    // w = coefficient function on the fine grid (0 at coarse nodes).
    let total = fine_dims.iter().product::<usize>();
    let mut w = vec![0.0f64; total];
    {
        let w_sh = SharedSlice::new(&mut w);
        adapter.dem(total, &|flat| {
            let mut pos = [0usize; 4];
            unravel(flat, &fine_dims, &mut pos[..nd]);
            let is_new = pos[..nd]
                .iter()
                .zip(&fine_lists)
                .any(|(&p, l)| matches!(role_of(p, l.len()), NodeRole::New));
            if is_new {
                let v = u[full_index(&pos[..nd], &fine_lists, full_strides)];
                // Safety: each flat position writes only itself.
                unsafe { w_sh.write(flat, v) };
            }
        });
    }

    // Dimension-by-dimension projection; saturated dims (identical
    // fine/coarse lists) are the identity and are skipped.
    let mut cur_dims = fine_dims.clone();
    for k in 0..nd {
        if fine_lists[k].len() == coarse_lists[k].len() {
            continue;
        }
        let fine_len = fine_lists[k].len();
        let coarse_len = coarse_lists[k].len();
        let mut out_dims = cur_dims.clone();
        out_dims[k] = coarse_len;
        let in_strides = strides_of(&cur_dims);
        let out_strides = strides_of(&out_dims);
        let mut out = vec![0.0f64; out_dims.iter().product()];
        let num_lines: usize = cur_dims.iter().product::<usize>() / cur_dims[k];
        let line_dims: Vec<usize> = (0..nd).filter(|&d| d != k).map(|d| cur_dims[d]).collect();
        {
            let out_sh = SharedSlice::new(&mut out);
            let w_ref = &w;
            // Iterative abstraction: one tridiagonal system per line
            // (paper Alg. 1 line 9).
            Iterative::new(num_lines, 8).run(adapter, &|line, _| {
                let mut li = [0usize; 3];
                unravel(line, &line_dims, &mut li[..line_dims.len()]);
                let mut base_in = 0usize;
                let mut base_out = 0usize;
                let mut j = 0;
                for d in 0..nd {
                    if d == k {
                        continue;
                    }
                    base_in += li[j] * in_strides[d];
                    base_out += li[j] * out_strides[d];
                    j += 1;
                }
                let mut vals = vec![0.0f64; fine_len];
                for (p, v) in vals.iter_mut().enumerate() {
                    *v = w_ref[base_in + p * in_strides[k]];
                }
                let mut massed = vec![0.0f64; fine_len];
                mass_apply(&vals, fine_lists[k], &mut massed);
                let mut b = vec![0.0f64; coarse_len];
                restrict(&massed, fine_lists[k], &mut b);
                let mut scratch = vec![0.0f64; coarse_len];
                mass_solve(&mut b, coarse_lists[k], &mut scratch);
                for (p, &v) in b.iter().enumerate() {
                    // Safety: lines write disjoint output positions.
                    unsafe { out_sh.write(base_out + p * out_strides[k], v) };
                }
            });
        }
        w = out;
        cur_dims = out_dims;
    }
    w
}

/// Visit every level-`l` grid node that has at least one new dimension
/// and apply `f(full_index, interpolated_value)`. Reads coarse nodes,
/// writes new nodes — disjoint sets, hence safe shared access.
fn for_each_new_node(
    adapter: &dyn DeviceAdapter,
    u: &mut [f64],
    h: &Hierarchy,
    l: usize,
    full_strides: &[usize],
    apply: &(dyn Fn(f64, f64) -> f64 + Sync),
) {
    let nd = h.shape().ndims();
    let fine_lists: Vec<&[usize]> = (0..nd).map(|d| h.dim_nodes(l, d)).collect();
    let fine_dims: Vec<usize> = fine_lists.iter().map(|l| l.len()).collect();
    let total: usize = fine_dims.iter().product();
    let u_sh = SharedSlice::new(u);
    adapter.dem(total, &|flat| {
        let mut pos = [0usize; 4];
        unravel(flat, &fine_dims, &mut pos[..nd]);
        let any_new = pos[..nd]
            .iter()
            .zip(&fine_lists)
            .any(|(&p, l)| matches!(role_of(p, l.len()), NodeRole::New));
        if !any_new {
            return;
        }
        // Safety: interp reads only all-coarse corners; the write targets
        // this (new) node. New and coarse node sets are disjoint.
        let get = |idx: usize| unsafe { u_sh.read(idx) };
        let interp = interp_at(&get, &pos[..nd], &fine_lists, full_strides);
        let idx = full_index(&pos[..nd], &fine_lists, full_strides);
        // SAFETY: `idx` is this invocation's own (new) node; no other
        // invocation touches it (new nodes are pairwise distinct).
        let old = unsafe { u_sh.read(idx) };
        // SAFETY: same exclusive index as the read above.
        unsafe { u_sh.write(idx, apply(old, interp)) };
    });
}

/// Add/subtract a coarse-grid field into the full array at coarse nodes.
fn apply_on_coarse(
    adapter: &dyn DeviceAdapter,
    u: &mut [f64],
    h: &Hierarchy,
    l: usize,
    full_strides: &[usize],
    corr: &[f64],
    sign: f64,
) {
    let nd = h.shape().ndims();
    let coarse_lists: Vec<&[usize]> = (0..nd).map(|d| h.dim_nodes(l - 1, d)).collect();
    let coarse_dims: Vec<usize> = coarse_lists.iter().map(|l| l.len()).collect();
    let total: usize = coarse_dims.iter().product();
    debug_assert_eq!(corr.len(), total);
    let u_sh = SharedSlice::new(u);
    adapter.dem(total, &|flat| {
        let mut pos = [0usize; 4];
        unravel(flat, &coarse_dims, &mut pos[..nd]);
        let idx = full_index(&pos[..nd], &coarse_lists, full_strides);
        // Safety: coarse positions are distinct full-array indices.
        unsafe {
            let old = u_sh.read(idx);
            u_sh.write(idx, old + sign * corr[flat]);
        }
    });
}

/// Full multilevel decomposition, in place: after this call, `u` holds
/// coarsest-level values at level-0 nodes and multilevel coefficients
/// everywhere else.
pub fn decompose(adapter: &dyn DeviceAdapter, u: &mut [f64], h: &Hierarchy) {
    let full_strides = h.shape().strides();
    for l in (1..=h.finest()).rev() {
        // 1. Coefficients: u[new] -= interp(coarse).
        for_each_new_node(adapter, u, h, l, &full_strides, &|old, interp| old - interp);
        // 2–3. Correction onto the coarse grid.
        let corr = compute_correction(adapter, u, h, l, &full_strides);
        apply_on_coarse(adapter, u, h, l, &full_strides, &corr, 1.0);
    }
}

/// Full multilevel recomposition, in place (inverse of [`decompose`]).
pub fn recompose(adapter: &dyn DeviceAdapter, u: &mut [f64], h: &Hierarchy) {
    let full_strides = h.shape().strides();
    for l in 1..=h.finest() {
        let corr = compute_correction(adapter, u, h, l, &full_strides);
        apply_on_coarse(adapter, u, h, l, &full_strides, &corr, -1.0);
        // u[new] = mc + interp(coarse).
        for_each_new_node(adapter, u, h, l, &full_strides, &|old, interp| old + interp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter, Shape};

    fn roundtrip_check(shape: &Shape, data: &[f64], tol: f64) {
        let adapter = CpuParallelAdapter::new(4);
        let h = Hierarchy::new(shape);
        let mut u = data.to_vec();
        decompose(&adapter, &mut u, &h);
        recompose(&adapter, &mut u, &h);
        let max_err = data
            .iter()
            .zip(&u)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < tol, "shape {shape}: roundtrip err {max_err}");
    }

    #[test]
    fn roundtrip_1d_various_sizes() {
        for n in [2usize, 3, 5, 9, 17, 100, 257] {
            let data: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() * 100.0).collect();
            roundtrip_check(&Shape::new(&[n]), &data, 1e-8);
        }
    }

    #[test]
    fn roundtrip_2d_and_3d() {
        let shape = Shape::new(&[17, 13]);
        let data: Vec<f64> = (0..shape.num_elements())
            .map(|i| ((i as f64) * 0.13).cos() * 50.0 + i as f64 * 0.01)
            .collect();
        roundtrip_check(&shape, &data, 1e-8);

        let shape = Shape::new(&[9, 10, 11]);
        let data: Vec<f64> = (0..shape.num_elements())
            .map(|i| ((i as f64) * 0.029).sin() * 10.0)
            .collect();
        roundtrip_check(&shape, &data, 1e-8);
    }

    #[test]
    fn linear_function_has_negligible_fine_coefficients() {
        // A multilinear function is exactly representable at every level:
        // all multilevel coefficients vanish (up to fp noise).
        let n = 17;
        let shape = Shape::new(&[n, n]);
        let mut u: Vec<f64> = (0..n * n)
            .map(|f| {
                let (i, j) = (f / n, f % n);
                3.0 * i as f64 - 2.0 * j as f64 + 5.0
            })
            .collect();
        let h = Hierarchy::new(&shape);
        let adapter = SerialAdapter::new();
        decompose(&adapter, &mut u, &h);
        let levels = h.node_levels();
        for (flat, &lvl) in levels.iter().enumerate() {
            if lvl > 0 {
                assert!(
                    u[flat].abs() < 1e-9,
                    "coefficient at {flat} (level {lvl}) = {}",
                    u[flat]
                );
            }
        }
    }

    #[test]
    fn smooth_data_coefficients_decay_with_level() {
        let n = 65;
        let shape = Shape::new(&[n]);
        let mut u: Vec<f64> = (0..n).map(|i| (i as f64 / 8.0).sin()).collect();
        let h = Hierarchy::new(&shape);
        let adapter = SerialAdapter::new();
        decompose(&adapter, &mut u, &h);
        let levels = h.node_levels();
        // Mean |coefficient| at the finest level should be much smaller
        // than at mid levels (smoothness ⇒ fine-scale detail is tiny).
        let mean = |lvl: u8| {
            let v: Vec<f64> = levels
                .iter()
                .zip(&u)
                .filter(|(l, _)| **l == lvl)
                .map(|(_, &x)| x.abs())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let fine = mean(h.finest() as u8);
        let mid = mean(2);
        assert!(fine < mid, "fine {fine} mid {mid}");
    }

    #[test]
    fn serial_and_parallel_decompositions_agree() {
        let shape = Shape::new(&[33, 12]);
        let data: Vec<f64> = (0..shape.num_elements())
            .map(|i| ((i * 2654435761usize % 1000) as f64) / 7.0)
            .collect();
        let h = Hierarchy::new(&shape);
        let mut a = data.clone();
        let mut b = data.clone();
        decompose(&SerialAdapter::new(), &mut a, &h);
        decompose(&CpuParallelAdapter::new(8), &mut b, &h);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "bitwise determinism required");
        }
    }

    #[test]
    fn decompose_preserves_coarsest_mean_roughly() {
        // The level-0 values approximate the function (projection), so
        // they must stay within the data range for smooth input.
        let n = 33;
        let shape = Shape::new(&[n]);
        let mut u: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64 / 5.0).sin()).collect();
        let h = Hierarchy::new(&shape);
        decompose(&SerialAdapter::new(), &mut u, &h);
        assert!(u[0] > 5.0 && u[0] < 15.0);
        assert!(u[n - 1] > 5.0 && u[n - 1] < 15.0);
    }
}
