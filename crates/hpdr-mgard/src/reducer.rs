//! [`Reducer`] implementation for MGARD-X.

use crate::codec::{compress, decompress, MgardConfig};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter, Float, HpdrError, KernelClass, Reducer, Result};

/// MGARD-X as a byte-level reduction pipeline.
#[derive(Debug, Clone, Copy)]
pub struct MgardReducer(pub MgardConfig);

fn peek_dtype(stream: &[u8]) -> Result<DType> {
    let tag = *stream
        .get(5)
        .ok_or_else(|| HpdrError::corrupt("stream too short for header"))?;
    DType::from_tag(tag).ok_or_else(|| HpdrError::corrupt("unknown dtype tag"))
}

impl Reducer for MgardReducer {
    fn name(&self) -> &'static str {
        "mgard-x"
    }

    fn kernel_class(&self) -> KernelClass {
        KernelClass::Mgard
    }

    fn is_lossless(&self) -> bool {
        false
    }

    fn compress(
        &self,
        adapter: &dyn DeviceAdapter,
        bytes: &[u8],
        meta: &ArrayMeta,
    ) -> Result<Vec<u8>> {
        if bytes.len() != meta.num_bytes() {
            return Err(HpdrError::invalid("byte length does not match metadata"));
        }
        match meta.dtype {
            DType::F32 => compress(adapter, &f32::bytes_to_vec(bytes), &meta.shape, &self.0),
            DType::F64 => compress(adapter, &f64::bytes_to_vec(bytes), &meta.shape, &self.0),
        }
    }

    fn decompress(
        &self,
        adapter: &dyn DeviceAdapter,
        stream: &[u8],
    ) -> Result<(Vec<u8>, ArrayMeta)> {
        match peek_dtype(stream)? {
            DType::F32 => {
                let (data, shape) = decompress::<f32>(adapter, stream)?;
                Ok((
                    f32::slice_to_bytes(&data),
                    ArrayMeta::new(DType::F32, shape),
                ))
            }
            DType::F64 => {
                let (data, shape) = decompress::<f64>(adapter, stream)?;
                Ok((
                    f64::slice_to_bytes(&data),
                    ArrayMeta::new(DType::F64, shape),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{SerialAdapter, Shape};

    #[test]
    fn byte_level_roundtrip_f32() {
        let adapter = SerialAdapter::new();
        let shape = Shape::new(&[12, 10]);
        let data: Vec<f32> = (0..120).map(|i| (i as f32 * 0.3).sin()).collect();
        let meta = ArrayMeta::new(DType::F32, shape.clone());
        let r = MgardReducer(MgardConfig::relative(1e-3));
        let stream = r
            .compress(&adapter, &f32::slice_to_bytes(&data), &meta)
            .unwrap();
        let (bytes, meta2) = r.decompress(&adapter, &stream).unwrap();
        assert_eq!(meta2, meta);
        let out = f32::bytes_to_vec(&bytes);
        let err = data
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err <= 2.0 * 1e-3 * 1.01);
    }

    #[test]
    fn rejects_length_mismatch() {
        let adapter = SerialAdapter::new();
        let meta = ArrayMeta::new(DType::F64, Shape::new(&[4]));
        let r = MgardReducer(MgardConfig::default());
        assert!(r.compress(&adapter, &[0u8; 7], &meta).is_err());
    }
}
