//! Exhaustive-interleaving checks (up to the preemption bound) for the
//! three concurrency protocols `hpdr-core` relies on:
//!
//! * the [`WorkerPool`] single-job-slot publish/join/drain handoff and
//!   its panic-capture poisoning (`pool.rs`),
//! * [`SharedSlice`]-style unsynchronized disjoint writes (`shared.rs`),
//! * [`ContextCache`] check-then-insert atomicity and idle/acquire
//!   accounting (`cmm.rs`).
//!
//! These are *protocol models*, not calls into the production types:
//! the production code hardwires `parking_lot`/`std::thread`, so each
//! test re-states the protocol in loom primitives, step for step, and
//! asserts the invariants the production comments promise. The models
//! must be kept in sync with the production code by hand — each one
//! cites the lines it mirrors.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p hpdr-core --test loom`
//! (plain `cargo test` compiles this file to nothing).

#![cfg(loom)]
// The SharedSlice model reproduces the production type's raw-pointer
// writes; this test crate is a sanctioned unsafe island like shared.rs.
#![allow(unsafe_code)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

// ---------------------------------------------------------------------------
// WorkerPool protocol model (pool.rs)
// ---------------------------------------------------------------------------

/// Mirror of `pool::Job`: dynamic-schedule counter, participant count,
/// poison flag and first-failure slot. `hits` tracks per-index
/// execution counts so every schedule can assert exactly-once coverage.
struct Job {
    n: usize,
    next: AtomicUsize,
    active: AtomicUsize,
    poisoned: AtomicBool,
    failure: Mutex<Option<usize>>,
    hits: [AtomicUsize; 2],
}

impl Job {
    fn new(n: usize) -> Job {
        Job {
            n,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            failure: Mutex::new(None),
            hits: [AtomicUsize::new(0), AtomicUsize::new(0)],
        }
    }
}

/// Mirror of `pool::Dispatch`: the single job slot.
struct Dispatch {
    job: Option<Arc<Job>>,
    seq: u64,
    joiners_left: usize,
    shutdown: bool,
}

struct Shared {
    disp: Mutex<Dispatch>,
    work_cv: Condvar,
    idle_cv: Condvar,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            disp: Mutex::new(Dispatch {
                job: None,
                seq: 0,
                joiners_left: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        }
    }
}

/// Mirror of `pool::execute`: claim chunks until drained or poisoned.
/// A "panic" at `fail_at` is modeled as a value (the unwinding
/// mechanics are std's business, already covered by pool.rs's own
/// tests; the protocol under check is poison-then-record-first).
fn execute(job: &Job, fail_at: Option<usize>) {
    while !job.poisoned.load(Ordering::Relaxed) {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            break;
        }
        if fail_at == Some(i) {
            job.poisoned.store(true, Ordering::Relaxed);
            let mut slot = job.failure.lock().unwrap();
            if slot.is_none() {
                *slot = Some(i);
            }
        } else {
            job.hits[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Mirror of `pool::worker_loop`: join each published job at most once
/// (seq check), participate, and pair the last-leaver notify with a
/// disp lock/unlock so the submitter's check-then-wait can't lose it.
fn worker_loop(shared: &Shared, fail_at: Option<usize>) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut d = shared.disp.lock().unwrap();
            loop {
                if d.shutdown {
                    return;
                }
                if let Some(job) = d.job.as_ref().map(Arc::clone) {
                    if d.seq != last_seq {
                        last_seq = d.seq;
                        if d.joiners_left > 0 {
                            d.joiners_left -= 1;
                            job.active.fetch_add(1, Ordering::AcqRel);
                            break job;
                        }
                    }
                }
                d = shared.work_cv.wait(d).unwrap();
            }
        };
        execute(&job, fail_at);
        if job.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(shared.disp.lock().unwrap());
            shared.idle_cv.notify_all();
        }
    }
}

/// Mirror of `pool::WorkerPool::submit`: publish to the slot (or fall
/// back inline), participate, retract the job and drain participants.
/// Returns the captured failure, like `submit` returns `PoolPanic`.
fn submit(shared: &Shared, job: &Arc<Job>, fail_at: Option<usize>) -> Option<usize> {
    let published = {
        let mut d = shared.disp.lock().unwrap();
        if d.job.is_none() && !d.shutdown {
            d.seq = d.seq.wrapping_add(1);
            d.joiners_left = 1;
            d.job = Some(Arc::clone(job));
            shared.work_cv.notify_all();
            true
        } else {
            false
        }
    };
    execute(job, fail_at);
    if published {
        let mut d = shared.disp.lock().unwrap();
        if d.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, job)) {
            d.job = None;
            d.joiners_left = 0;
        }
        while job.active.load(Ordering::Acquire) > 0 {
            d = shared.idle_cv.wait(d).unwrap();
        }
    }
    job.failure.lock().unwrap().take()
}

fn shutdown(shared: &Shared) {
    {
        let mut d = shared.disp.lock().unwrap();
        d.shutdown = true;
    }
    shared.work_cv.notify_all();
}

/// The pool models need ≥3 preemptions to reach their deepest hazard
/// (publish → worker joins → submitter drains → worker's last-leaver
/// notify racing the check-then-wait), so don't rely on the default
/// bound of 2: removing the lock-pairing from `worker_loop` must make
/// these tests fail, and at bound 2 it does not.
fn pool_model<F: Fn() + Send + Sync + 'static>(f: F) {
    let mut b = loom::model::Builder::new();
    b.preemption_bound = b.preemption_bound.max(3);
    b.check(f);
}

#[test]
fn pool_handoff_covers_every_index_once_and_drains() {
    pool_model(|| {
        let shared = Arc::new(Shared::new());
        let worker = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&shared, None))
        };
        let job = Arc::new(Job::new(2));
        let failure = submit(&shared, &job, None);
        assert_eq!(failure, None);
        // The drain wait returned: in *every* schedule all work is done
        // exactly once and no participant still touches the job (the
        // borrowed-body soundness invariant from the pool module docs).
        assert_eq!(job.hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(job.hits[1].load(Ordering::Relaxed), 1);
        assert_eq!(job.active.load(Ordering::Relaxed), 0);
        shutdown(&shared);
        worker.join().unwrap();
    });
}

#[test]
fn pool_panic_capture_poisons_and_reports_first_failure() {
    pool_model(|| {
        let shared = Arc::new(Shared::new());
        let worker = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&shared, Some(0)))
        };
        let job = Arc::new(Job::new(2));
        let failure = submit(&shared, &job, Some(0));
        // Whichever participant claimed index 0 "panicked"; the
        // submitter must observe it after the drain, exactly once.
        assert_eq!(failure, Some(0));
        assert!(job.poisoned.load(Ordering::Relaxed));
        assert_eq!(job.hits[0].load(Ordering::Relaxed), 0);
        // Index 1 ran at most once (it may be abandoned to poisoning).
        assert!(job.hits[1].load(Ordering::Relaxed) <= 1);
        assert_eq!(job.active.load(Ordering::Relaxed), 0);
        shutdown(&shared);
        worker.join().unwrap();
    });
}

#[test]
fn pool_contended_submission_falls_back_inline() {
    pool_model(|| {
        // Two submitters, no workers: at most one wins the slot, the
        // other must run inline, and neither may deadlock waiting for
        // participants that never join (joiners_left is retracted).
        let shared = Arc::new(Shared::new());
        let other = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let job = Arc::new(Job::new(2));
                let failure = submit(&shared, &job, None);
                assert_eq!(failure, None);
                assert_eq!(job.hits[0].load(Ordering::Relaxed), 1);
                assert_eq!(job.hits[1].load(Ordering::Relaxed), 1);
            })
        };
        let job = Arc::new(Job::new(2));
        let failure = submit(&shared, &job, None);
        assert_eq!(failure, None);
        assert_eq!(job.hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(job.hits[1].load(Ordering::Relaxed), 1);
        other.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// SharedSlice model (shared.rs)
// ---------------------------------------------------------------------------

/// Mirror of `shared::SharedSlice`: a shared buffer written through raw
/// pointers with *caller-promised* disjointness and no synchronization.
struct SharedBuf(UnsafeCell<[usize; 4]>);

// SAFETY: the model's two writers touch disjoint index sets (0..2 and
// 2..4), exactly the contract SharedSlice imposes on its callers, so no
// location is accessed concurrently from two threads.
unsafe impl Sync for SharedBuf {}

#[test]
fn shared_slice_disjoint_writes_land_in_all_interleavings() {
    loom::model(|| {
        let buf = Arc::new(SharedBuf(UnsafeCell::new([0usize; 4])));
        let writer = {
            let buf = Arc::clone(&buf);
            thread::spawn(move || {
                for i in 0..2 {
                    // SAFETY: this thread owns indices 0..2 exclusively.
                    buf.0.with_mut(|p| unsafe { (*p)[i] = i + 1 });
                }
            })
        };
        for i in 2..4 {
            // SAFETY: this thread owns indices 2..4 exclusively.
            buf.0.with_mut(|p| unsafe { (*p)[i] = i + 1 });
        }
        writer.join().unwrap();
        // SAFETY: both writers finished (join): no concurrent access.
        let seen = buf.0.with(|p| unsafe { *p });
        assert_eq!(seen, [1, 2, 3, 4]);
    });
}

// ---------------------------------------------------------------------------
// ContextCache model (cmm.rs)
// ---------------------------------------------------------------------------

type CacheMap = Mutex<Vec<(u8, Arc<Mutex<u64>>)>>;

/// Mirror of `cmm::ContextCache::get_or_create`: check-then-insert
/// under one lock tenure (a Vec stands in for the HashMap — loom model
/// bodies must be deterministic, and HashMap iteration order is not).
fn get_or_create(map: &CacheMap, key: u8, inits: &AtomicUsize) -> Arc<Mutex<u64>> {
    let mut m = map.lock().unwrap();
    if let Some((_, ctx)) = m.iter().find(|(k, _)| *k == key) {
        return Arc::clone(ctx);
    }
    inits.fetch_add(1, Ordering::Relaxed);
    let ctx = Arc::new(Mutex::new(0u64));
    m.push((key, Arc::clone(&ctx)));
    ctx
}

/// Mirror of `cmm::ContextCache::idle_count`: entries whose only strong
/// reference is the cache's own.
fn idle_count(map: &CacheMap) -> usize {
    map.lock()
        .unwrap()
        .iter()
        .filter(|(_, ctx)| Arc::strong_count(ctx) == 1)
        .count()
}

#[test]
fn context_cache_initializes_once_and_idle_accounting_settles() {
    loom::model(|| {
        let map: Arc<CacheMap> = Arc::new(Mutex::new(Vec::new()));
        let inits = Arc::new(AtomicUsize::new(0));
        let racer = {
            let (map, inits) = (Arc::clone(&map), Arc::clone(&inits));
            thread::spawn(move || {
                let ctx = get_or_create(&map, 7, &inits);
                *ctx.lock().unwrap() += 1;
            })
        };
        let ctx = get_or_create(&map, 7, &inits);
        *ctx.lock().unwrap() += 1;
        // While this caller holds its Arc the entry cannot be idle.
        assert_eq!(idle_count(&map), 0);
        drop(ctx);
        racer.join().unwrap();
        // Racing getters agreed on one context: a single init, both
        // increments on it, and — every borrower released — the cache
        // holds the only reference again (idle == len).
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        let m = map.lock().unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(*m[0].1.lock().unwrap(), 2);
        assert_eq!(Arc::strong_count(&m[0].1), 1);
    });
}
