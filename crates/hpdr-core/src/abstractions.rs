//! The four parallelization abstractions (paper §III-A, Fig. 3) and their
//! lowering onto the execution models (Table I):
//!
//! | Abstraction   | Execution model | Mapping                     |
//! |---------------|-----------------|-----------------------------|
//! | Locality      | GEM             | block → group               |
//! | Iterative     | GEM             | B vectors → group           |
//! | Map & Process | DEM             | all subsets → whole domain  |
//! | Global        | DEM             | domain → whole domain       |
//!
//! Reduction algorithms (MGARD-X / ZFP-X / Huffman-X) are written purely
//! in terms of these calls, which is what makes them portable across the
//! device adapters.

use crate::adapter::{DeviceAdapter, ScratchPolicy};
use crate::error::Result;

/// Locality abstraction: the input domain is decomposed into `blocks`
/// blocks (with algorithm-chosen size/halo handled inside the body); a
/// group of threads cooperatively executes `f` on each block with
/// exclusive staging memory.
#[derive(Debug, Clone, Copy)]
pub struct Locality {
    pub blocks: usize,
    /// Bytes of per-block fast-memory staging.
    pub staging_bytes: usize,
    /// Staging initialization contract (zeroed by default; see
    /// [`ScratchPolicy`] for when `Dirty` is sound).
    pub policy: ScratchPolicy,
}

impl Locality {
    pub fn new(blocks: usize) -> Locality {
        Locality {
            blocks,
            staging_bytes: 0,
            policy: ScratchPolicy::Zeroed,
        }
    }

    pub fn with_staging(mut self, bytes: usize) -> Locality {
        self.staging_bytes = bytes;
        self
    }

    /// Opt out of per-block staging zeroing. The block body must fully
    /// overwrite any staging byte before reading it.
    pub fn with_dirty_staging(mut self) -> Locality {
        self.policy = ScratchPolicy::Dirty;
        self
    }

    /// Run `f(block_id, staging)` for every block. Lowered to GEM.
    /// Re-raises worker panics; see [`Locality::try_run`].
    pub fn run(&self, adapter: &dyn DeviceAdapter, f: &(dyn Fn(usize, &mut [u8]) + Sync)) {
        if let Err(e) = self.try_run(adapter, f) {
            panic!("{e}");
        }
    }

    /// Run `f(block_id, staging)` for every block, surfacing worker
    /// panics as [`HpdrError::WorkerPanic`](crate::HpdrError::WorkerPanic)
    /// with the failing block index.
    pub fn try_run(
        &self,
        adapter: &dyn DeviceAdapter,
        f: &(dyn Fn(usize, &mut [u8]) + Sync),
    ) -> Result<()> {
        adapter.try_gem(self.blocks, self.staging_bytes, self.policy, f)
    }
}

/// Iterative abstraction: `vectors` independent 1-D systems are processed
/// iteratively (e.g. tridiagonal solves); every `batch` (the paper's *B*)
/// vectors are organized into one group so a worker exploits memory
/// locality across neighbouring vectors.
#[derive(Debug, Clone, Copy)]
pub struct Iterative {
    pub vectors: usize,
    pub batch: usize,
    pub staging_bytes: usize,
}

impl Iterative {
    pub fn new(vectors: usize, batch: usize) -> Iterative {
        Iterative {
            vectors,
            batch: batch.max(1),
            staging_bytes: 0,
        }
    }

    pub fn with_staging(mut self, bytes: usize) -> Iterative {
        self.staging_bytes = bytes;
        self
    }

    pub fn groups(&self) -> usize {
        self.vectors.div_ceil(self.batch)
    }

    /// Run `f(vector_id, staging)` for every vector; vectors of the same
    /// group share one worker and its staging. Lowered to GEM (B:1).
    pub fn run(&self, adapter: &dyn DeviceAdapter, f: &(dyn Fn(usize, &mut [u8]) + Sync)) {
        let vectors = self.vectors;
        let batch = self.batch;
        adapter.gem(self.groups(), self.staging_bytes, &|g, staging| {
            let start = g * batch;
            let end = (start + batch).min(vectors);
            for v in start..end {
                f(v, staging);
            }
        });
    }
}

/// Map-and-process abstraction: the domain is mapped into `subsets`
/// (e.g. MGARD level coefficients), each processed with a possibly
/// different function. Lowered to a single DEM stage across the union.
#[derive(Debug, Clone)]
pub struct MapAndProcess {
    /// Element count per subset.
    pub subset_sizes: Vec<usize>,
    prefix: Vec<usize>,
}

impl MapAndProcess {
    pub fn new(subset_sizes: Vec<usize>) -> MapAndProcess {
        let mut prefix = Vec::with_capacity(subset_sizes.len() + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for &s in &subset_sizes {
            acc += s;
            prefix.push(acc);
        }
        MapAndProcess {
            subset_sizes,
            prefix,
        }
    }

    pub fn total(&self) -> usize {
        *self.prefix.last().unwrap()
    }

    /// Subset owning global element `i`, and the offset within it.
    pub fn locate(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.total());
        // partition_point returns the first subset whose end exceeds i.
        let subset = self.prefix.partition_point(|&p| p <= i) - 1;
        (subset, i - self.prefix[subset])
    }

    /// Run `f(subset, index_in_subset)` across all subsets at once.
    pub fn run(&self, adapter: &dyn DeviceAdapter, f: &(dyn Fn(usize, usize) + Sync)) {
        let this = self;
        adapter.dem(self.total(), &move |i| {
            let (s, j) = this.locate(i);
            f(s, j);
        });
    }
}

/// One stage of a global pipeline: a whole-domain parallel-for.
pub struct GlobalStage<'a> {
    pub name: &'static str,
    pub items: usize,
    pub body: &'a (dyn Fn(usize) + Sync),
}

/// Global pipeline abstraction: all threads process the whole domain with
/// global synchronization between stages (histogramming, parallel
/// serialization). Lowered to consecutive DEM stages.
pub fn global_pipeline(adapter: &dyn DeviceAdapter, stages: &[GlobalStage<'_>]) {
    for stage in stages {
        adapter.dem(stage.items, stage.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{CpuParallelAdapter, SerialAdapter};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn locality_runs_every_block() {
        let a = SerialAdapter::new();
        let n = AtomicUsize::new(0);
        Locality::new(13).with_staging(8).run(&a, &|_, st| {
            assert_eq!(st.len(), 8);
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 13);
    }

    #[test]
    fn iterative_covers_all_vectors_in_batches() {
        let a = CpuParallelAdapter::new(4);
        let it = Iterative::new(103, 8);
        assert_eq!(it.groups(), 13);
        let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        it.run(&a, &|v, _| {
            hits[v].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_and_process_locates_subsets() {
        let m = MapAndProcess::new(vec![3, 0, 5, 2]);
        assert_eq!(m.total(), 10);
        assert_eq!(m.locate(0), (0, 0));
        assert_eq!(m.locate(2), (0, 2));
        assert_eq!(m.locate(3), (2, 0)); // empty subset 1 skipped
        assert_eq!(m.locate(7), (2, 4));
        assert_eq!(m.locate(8), (3, 0));
        assert_eq!(m.locate(9), (3, 1));
    }

    #[test]
    fn map_and_process_runs_each_element_once() {
        let a = CpuParallelAdapter::new(4);
        let m = MapAndProcess::new(vec![10, 20, 30]);
        let per_subset: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        m.run(&a, &|s, _| {
            per_subset[s].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(per_subset[0].load(Ordering::Relaxed), 10);
        assert_eq!(per_subset[1].load(Ordering::Relaxed), 20);
        assert_eq!(per_subset[2].load(Ordering::Relaxed), 30);
    }

    #[test]
    fn global_pipeline_stage_order_is_barriered() {
        // Stage 2 must observe all of stage 1's writes.
        let a = CpuParallelAdapter::new(4);
        let n = 10_000;
        let data: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let ok = AtomicUsize::new(0);
        global_pipeline(
            &a,
            &[
                GlobalStage {
                    name: "fill",
                    items: n,
                    body: &|i| {
                        data[i].store(i + 1, Ordering::Relaxed);
                    },
                },
                GlobalStage {
                    name: "check",
                    items: n,
                    body: &|i| {
                        if data[i].load(Ordering::Relaxed) == i + 1 {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                },
            ],
        );
        assert_eq!(ok.load(Ordering::Relaxed), n);
    }
}
