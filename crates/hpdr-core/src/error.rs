//! Error type shared across the HPDR crates.

use std::fmt;

/// Errors produced by HPDR codecs, adapters and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpdrError {
    /// The input stream is truncated, has a bad magic/version, or fails a
    /// structural invariant. Decoders must return this instead of panicking.
    CorruptStream(String),
    /// A requested feature/parameter combination is not supported.
    Unsupported(String),
    /// An argument is out of range or inconsistent (e.g. shape/data mismatch).
    InvalidArgument(String),
    /// An underlying (real) I/O error while reading or writing files.
    Io(String),
    /// A stage body panicked on a pool worker; carries the failing
    /// GEM group / DEM item index. The pool itself stays reusable.
    WorkerPanic { group: usize, message: String },
}

impl HpdrError {
    pub fn corrupt(msg: impl Into<String>) -> HpdrError {
        HpdrError::CorruptStream(msg.into())
    }
    pub fn unsupported(msg: impl Into<String>) -> HpdrError {
        HpdrError::Unsupported(msg.into())
    }
    pub fn invalid(msg: impl Into<String>) -> HpdrError {
        HpdrError::InvalidArgument(msg.into())
    }
}

impl fmt::Display for HpdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpdrError::CorruptStream(m) => write!(f, "corrupt stream: {m}"),
            HpdrError::Unsupported(m) => write!(f, "unsupported: {m}"),
            HpdrError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            HpdrError::Io(m) => write!(f, "i/o error: {m}"),
            HpdrError::WorkerPanic { group, message } => {
                write!(f, "worker panic at group {group}: {message}")
            }
        }
    }
}

impl From<crate::pool::PoolPanic> for HpdrError {
    fn from(p: crate::pool::PoolPanic) -> Self {
        HpdrError::WorkerPanic {
            group: p.group,
            message: p.message,
        }
    }
}

impl std::error::Error for HpdrError {}

impl From<std::io::Error> for HpdrError {
    fn from(e: std::io::Error) -> Self {
        HpdrError::Io(e.to_string())
    }
}

/// Result alias used throughout HPDR.
pub type Result<T> = std::result::Result<T, HpdrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(HpdrError::corrupt("x").to_string().contains("corrupt"));
        assert!(HpdrError::unsupported("x")
            .to_string()
            .contains("unsupported"));
        assert!(HpdrError::invalid("x").to_string().contains("invalid"));
    }

    #[test]
    fn from_io_error() {
        let e: HpdrError = std::io::Error::other("boom").into();
        assert!(matches!(e, HpdrError::Io(_)));
    }

    #[test]
    fn from_pool_panic() {
        let e: HpdrError = crate::pool::PoolPanic {
            group: 7,
            message: "kaboom".into(),
        }
        .into();
        assert!(matches!(e, HpdrError::WorkerPanic { group: 7, .. }));
        assert!(e.to_string().contains("group 7"));
        assert!(e.to_string().contains("kaboom"));
    }
}
