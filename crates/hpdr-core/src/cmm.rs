//! Context Memory Model (paper §III-B).
//!
//! Data-reduction pipelines are memory-bound, so per-call allocation of
//! "reduction context" (device workspaces, hierarchies, codebook scratch)
//! can dominate cost — and on dense multi-GPU nodes every allocation takes
//! the runtime's shared allocator lock, wrecking scalability. The CMM
//! caches contexts in a hash map keyed by the data characteristics of the
//! call, so repeated reductions with similar inputs reuse persistent
//! allocations and perform **zero** allocator operations.

use crate::float::DType;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key identifying a reusable reduction context.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContextKey {
    /// Algorithm id (e.g. "mgard-x").
    pub algorithm: &'static str,
    pub dtype: DType,
    pub shape: Vec<usize>,
    /// Hash of codec configuration (error bound, rate, dict size…).
    pub config_hash: u64,
    /// Device ordinal the context's buffers live on.
    pub device: usize,
}

/// FNV-1a — small, deterministic config hashing for [`ContextKey`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmmStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// The context cache. `C` is the algorithm-specific context type.
pub struct ContextCache<C> {
    map: Mutex<HashMap<ContextKey, Arc<Mutex<C>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

impl<C> ContextCache<C> {
    /// A cache holding at most `capacity` contexts (evicting arbitrarily
    /// beyond that — contexts are interchangeable across "similar" calls,
    /// so precise LRU is not needed for the paper's workloads).
    pub fn new(capacity: usize) -> ContextCache<C> {
        ContextCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Fetch the context for `key`, creating it with `init` on miss.
    /// `init` is where all allocations happen; on a hit no allocation
    /// (and no shared-runtime lock traffic) occurs.
    pub fn get_or_create(&self, key: &ContextKey, init: impl FnOnce() -> C) -> Arc<Mutex<C>> {
        let mut map = self.map.lock();
        if let Some(ctx) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(ctx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if map.len() >= self.capacity {
            // Evict one arbitrary entry to stay within capacity.
            if let Some(k) = map.keys().next().cloned() {
                map.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ctx = Arc::new(Mutex::new(init()));
        map.insert(key.clone(), Arc::clone(&ctx));
        ctx
    }

    /// Drop every cached context.
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Cached contexts not currently attached to any caller — i.e. the
    /// cache itself holds the only strong reference. A scheduler that
    /// releases contexts correctly (including on cancellation/timeout)
    /// sees `idle_count() == len()` whenever no job is in flight.
    pub fn idle_count(&self) -> usize {
        self.map
            .lock()
            .values()
            .filter(|ctx| Arc::strong_count(ctx) == 1)
            .count()
    }

    /// Evict one specific context (e.g. after the job family that used
    /// it was cancelled). Returns whether the key was present.
    pub fn remove(&self, key: &ContextKey) -> bool {
        let removed = self.map.lock().remove(key).is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CmmStats {
        CmmStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(device: usize, shape: &[usize]) -> ContextKey {
        ContextKey {
            algorithm: "test",
            dtype: DType::F32,
            shape: shape.to_vec(),
            config_hash: fnv1a(&[1, 2, 3]),
            device,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache: ContextCache<Vec<u8>> = ContextCache::new(8);
        let k = key(0, &[64, 64]);
        let a = cache.get_or_create(&k, || vec![0u8; 128]);
        let b = cache.get_or_create(&k, || panic!("must not re-init"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn different_keys_miss() {
        let cache: ContextCache<u32> = ContextCache::new(8);
        cache.get_or_create(&key(0, &[4]), || 0);
        cache.get_or_create(&key(1, &[4]), || 0); // different device
        cache.get_or_create(&key(0, &[8]), || 0); // different shape
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn capacity_evicts() {
        let cache: ContextCache<u32> = ContextCache::new(2);
        cache.get_or_create(&key(0, &[1]), || 0);
        cache.get_or_create(&key(0, &[2]), || 0);
        cache.get_or_create(&key(0, &[3]), || 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn idle_count_tracks_attachment() {
        let cache: ContextCache<u32> = ContextCache::new(4);
        let k1 = key(0, &[1]);
        let k2 = key(0, &[2]);
        let held = cache.get_or_create(&k1, || 0);
        cache.get_or_create(&k2, || 0);
        // k1 is attached (we hold an Arc), k2 is idle.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.idle_count(), 1);
        drop(held);
        assert_eq!(cache.idle_count(), 2);
    }

    #[test]
    fn remove_evicts_one_key() {
        let cache: ContextCache<u32> = ContextCache::new(4);
        let k = key(0, &[1]);
        cache.get_or_create(&k, || 0);
        assert!(cache.remove(&k));
        assert!(!cache.remove(&k));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clear_empties() {
        let cache: ContextCache<u32> = ContextCache::new(4);
        cache.get_or_create(&key(0, &[1]), || 7);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn fnv1a_is_stable_and_distinguishing() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn contexts_are_shared_across_threads() {
        let cache: Arc<ContextCache<u64>> = Arc::new(ContextCache::new(4));
        let k = key(0, &[16]);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let k = k.clone();
                s.spawn(move |_| {
                    let ctx = cache.get_or_create(&k, || 0);
                    *ctx.lock() += 1;
                });
            }
        })
        .unwrap();
        let ctx = cache.get_or_create(&k, || unreachable!());
        assert_eq!(*ctx.lock(), 8);
        assert_eq!(cache.stats().misses, 1);
    }
}
