//! Scalar abstraction over the two floating-point element types the paper's
//! datasets use (FP32 and FP64, Table III).

// Bulk byte/float conversions on little-endian targets are raw memcpys.
#![allow(unsafe_code)]

use std::fmt::Debug;

/// Element data type of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    F32,
    F64,
}

impl DType {
    pub fn size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
        }
    }

    pub fn from_tag(tag: u8) -> Option<DType> {
        match tag {
            0 => Some(DType::F32),
            1 => Some(DType::F64),
            _ => None,
        }
    }

    pub fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F64 => 1,
        }
    }
}

/// Floating-point scalar usable by the portable kernels.
pub trait Float:
    Copy + Clone + Send + Sync + PartialOrd + PartialEq + Debug + Default + 'static
{
    /// Same-width unsigned integer type for bit-level codecs.
    type Bits: Copy + Send + Sync + Debug + Eq;

    const DTYPE: DType;
    const BYTES: usize;
    /// Number of mantissa bits (excluding the implicit leading 1).
    const MANTISSA_BITS: u32;
    const ZERO: Self;
    const ONE: Self;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn to_bits_u64(self) -> u64;
    fn from_bits_u64(bits: u64) -> Self;
    fn abs(self) -> Self;
    fn maxf(self, other: Self) -> Self;
    fn minf(self, other: Self) -> Self;
    fn is_finite(self) -> bool;
    /// IEEE-754 exponent via frexp-style decomposition: returns e such that
    /// `|self| < 2^e` and `|self| >= 2^(e-1)` for normal values.
    fn exponent(self) -> i32;

    fn write_le(self, out: &mut Vec<u8>);
    fn read_le(bytes: &[u8]) -> Self;

    /// View a typed slice as raw little-endian bytes (copy).
    fn slice_to_bytes(data: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() * Self::BYTES);
        for &v in data {
            v.write_le(&mut out);
        }
        out
    }

    /// Parse raw little-endian bytes into a typed vector.
    fn bytes_to_vec(bytes: &[u8]) -> Vec<Self> {
        assert_eq!(
            bytes.len() % Self::BYTES,
            0,
            "byte length not a multiple of element size"
        );
        bytes
            .chunks_exact(Self::BYTES)
            .map(|c| Self::read_le(c))
            .collect()
    }

    /// Identity view of a typed slice when `Self` is `f32` — lets generic
    /// code hand slices to width-specific kernels without unsafe casts.
    fn as_f32_slice(_data: &[Self]) -> Option<&[f32]> {
        None
    }

    /// Identity view of a typed slice when `Self` is `f64`.
    fn as_f64_slice(_data: &[Self]) -> Option<&[f64]> {
        None
    }
}

impl Float for f32 {
    type Bits = u32;
    const DTYPE: DType = DType::F32;
    const BYTES: usize = 4;
    const MANTISSA_BITS: u32 = 23;
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;

    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_bits_u64(bits: u64) -> f32 {
        f32::from_bits(bits as u32)
    }
    fn abs(self) -> f32 {
        f32::abs(self)
    }
    fn maxf(self, other: f32) -> f32 {
        f32::max(self, other)
    }
    fn minf(self, other: f32) -> f32 {
        f32::min(self, other)
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    fn exponent(self) -> i32 {
        frexp_exp(self as f64)
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> f32 {
        f32::from_le_bytes(bytes[..4].try_into().unwrap())
    }
    #[cfg(target_endian = "little")]
    fn slice_to_bytes(data: &[f32]) -> Vec<u8> {
        pod_to_bytes(data)
    }
    #[cfg(target_endian = "little")]
    fn bytes_to_vec(bytes: &[u8]) -> Vec<f32> {
        pod_from_bytes(bytes)
    }
    fn as_f32_slice(data: &[f32]) -> Option<&[f32]> {
        Some(data)
    }
}

impl Float for f64 {
    type Bits = u64;
    const DTYPE: DType = DType::F64;
    const BYTES: usize = 8;
    const MANTISSA_BITS: u32 = 52;
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    fn from_f64(v: f64) -> f64 {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    fn from_bits_u64(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    fn maxf(self, other: f64) -> f64 {
        f64::max(self, other)
    }
    fn minf(self, other: f64) -> f64 {
        f64::min(self, other)
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    fn exponent(self) -> i32 {
        frexp_exp(self)
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> f64 {
        f64::from_le_bytes(bytes[..8].try_into().unwrap())
    }
    #[cfg(target_endian = "little")]
    fn slice_to_bytes(data: &[f64]) -> Vec<u8> {
        pod_to_bytes(data)
    }
    #[cfg(target_endian = "little")]
    fn bytes_to_vec(bytes: &[u8]) -> Vec<f64> {
        pod_from_bytes(bytes)
    }
    fn as_f64_slice(data: &[f64]) -> Option<&[f64]> {
        Some(data)
    }
}

/// Bulk-copy a POD float slice to its little-endian byte image (the two
/// representations coincide on LE targets, so this is one memcpy instead
/// of a per-element encode loop).
#[cfg(target_endian = "little")]
fn pod_to_bytes<T: Float>(data: &[T]) -> Vec<u8> {
    let nbytes = std::mem::size_of_val(data);
    let mut out = Vec::<u8>::with_capacity(nbytes);
    // SAFETY: T is a POD float; reading its in-memory bytes is valid, and
    // the destination has `nbytes` of reserved capacity.
    unsafe {
        std::ptr::copy_nonoverlapping(data.as_ptr() as *const u8, out.as_mut_ptr(), nbytes);
        out.set_len(nbytes);
    }
    out
}

/// Inverse of [`pod_to_bytes`]: one memcpy from LE bytes to a typed vec.
#[cfg(target_endian = "little")]
fn pod_from_bytes<T: Float>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::BYTES,
        0,
        "byte length not a multiple of element size"
    );
    let n = bytes.len() / T::BYTES;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: every bit pattern is a valid float, the copy fills exactly
    // the `n` reserved elements, and `Vec`'s buffer is suitably aligned.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

/// frexp-style exponent: smallest e with |v| < 2^e (0 for v == 0).
fn frexp_exp(v: f64) -> i32 {
    if v == 0.0 || !v.is_finite() {
        return 0;
    }
    // log2-based frexp; exact because ilogb on normal doubles is exact.
    let a = v.abs();
    let mut e = a.log2().floor() as i32 + 1;
    // Guard against rounding at exact powers of two.
    while 2f64.powi(e - 1) > a {
        e -= 1;
    }
    while 2f64.powi(e) <= a {
        e += 1;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_roundtrip_tags() {
        for d in [DType::F32, DType::F64] {
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
        assert_eq!(DType::from_tag(9), None);
    }

    #[test]
    fn le_roundtrip_f32() {
        let mut buf = Vec::new();
        1.5f32.write_le(&mut buf);
        assert_eq!(f32::read_le(&buf), 1.5);
    }

    #[test]
    fn le_roundtrip_f64() {
        let mut buf = Vec::new();
        (-0.125f64).write_le(&mut buf);
        assert_eq!(f64::read_le(&buf), -0.125);
    }

    #[test]
    fn slice_bytes_roundtrip() {
        let data = vec![1.0f32, -2.5, 0.0, 3.25e10];
        let bytes = f32::slice_to_bytes(&data);
        assert_eq!(bytes.len(), 16);
        assert_eq!(f32::bytes_to_vec(&bytes), data);
    }

    #[test]
    fn exponent_matches_frexp_semantics() {
        // |v| in [2^(e-1), 2^e)
        for (v, e) in [
            (1.0f64, 1),
            (0.5, 0),
            (0.75, 0),
            (2.0, 2),
            (3.9, 2),
            (4.0, 3),
        ] {
            assert_eq!(v.exponent(), e, "v={v}");
            assert_eq!((-v).exponent(), e, "v={v}");
        }
        assert_eq!(0.0f64.exponent(), 0);
    }

    #[test]
    fn exponent_bounds_value() {
        for &v in &[1e-20f64, 3.7e-5, 0.1, 1.0, 123.456, 7.9e18] {
            let e = v.exponent();
            assert!(v.abs() < 2f64.powi(e));
            assert!(v.abs() >= 2f64.powi(e - 1));
        }
    }

    #[test]
    fn bits_roundtrip() {
        let v = -123.456f64;
        assert_eq!(f64::from_bits_u64(v.to_bits_u64()), v);
        let w = 9.5f32;
        assert_eq!(f32::from_bits_u64(w.to_bits_u64()), w);
    }
}
