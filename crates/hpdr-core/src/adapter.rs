//! Device adapters (paper §III-C, Table II).
//!
//! A [`DeviceAdapter`] executes the two machine-abstraction execution
//! models on one processor:
//!
//! * **GEM** (Group Execution Model): independent groups, each with
//!   exclusive *staging* memory (GPU shared memory / CPU cache analogue);
//!   the group body observes barrier semantics between its internal
//!   stages because it runs on one worker.
//! * **DEM** (Domain Execution Model): whole-domain parallel stages with a
//!   global barrier between stages (grid sync / omp barrier analogue).
//!
//! Three adapters are provided: [`SerialAdapter`] (the "most compatible
//! processor" baseline), [`CpuParallelAdapter`] (the OpenMP row of
//! Table II) and [`crate::gpu_sim::GpuSimAdapter`] (the CUDA/HIP rows,
//! executing on host workers while charging calibrated virtual time — see
//! the crate docs of `hpdr-sim` for why this substitution is faithful).
//!
//! New processors are supported by implementing this trait — the same
//! extension recipe the paper describes for Kokkos/SYCL back-ends.

use crate::error::Result;
use crate::pool::WorkerPool;
use hpdr_sim::{KernelClass, Ns};
use parking_lot::Mutex;
use std::time::Instant;

/// Staging-memory initialization contract for GEM execution.
///
/// Worker scratch arenas are **persistent** (allocated once per pool
/// worker, reused across every subsequent GEM call), so "what's in the
/// staging buffer when my group body starts?" is a real contract:
///
/// * [`ScratchPolicy::Zeroed`] — the runtime zero-fills the staging slice
///   before every group body invocation. This matches GPU shared-memory
///   semantics only by convention (CUDA shared memory is *not* zeroed);
///   it is the safe default and what [`DeviceAdapter::gem`] promises.
/// * [`ScratchPolicy::Dirty`] — the group body receives whatever bytes
///   the worker's arena currently holds (typically the previous group's
///   leavings; zeros only on a freshly grown arena). Algorithms that
///   fully overwrite their staging before reading it opt in to skip the
///   per-group `memset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScratchPolicy {
    /// Zero the staging slice before each group body runs.
    #[default]
    Zeroed,
    /// Hand each group the arena as-is; the body must not read bytes it
    /// has not written this invocation.
    Dirty,
}

/// Which family of adapter this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdapterKind {
    /// Single-core CPU reference.
    Serial,
    /// Multi-core CPU (OpenMP analogue).
    CpuParallel,
    /// Simulated CUDA device.
    CudaSim,
    /// Simulated HIP device.
    HipSim,
}

impl AdapterKind {
    pub fn name(self) -> &'static str {
        match self {
            AdapterKind::Serial => "serial",
            AdapterKind::CpuParallel => "openmp",
            AdapterKind::CudaSim => "cuda-sim",
            AdapterKind::HipSim => "hip-sim",
        }
    }
}

/// Description of an adapter instance.
#[derive(Debug, Clone)]
pub struct AdapterInfo {
    /// Human-readable device name (e.g. "V100", "EPYC-64").
    pub device: String,
    pub kind: AdapterKind,
    /// Worker threads used for real execution.
    pub threads: usize,
}

/// One recorded [`DeviceAdapter::charge`] call — the adapter-level view
/// of kernel activity, consumed by the observability layer when a trace
/// of the surrounding pipeline isn't available (standalone kernel runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCharge {
    pub class: KernelClass,
    pub bytes: u64,
    /// Virtual duration charged for the call.
    pub dur: Ns,
}

/// Portable execution interface for the HPDR parallel abstractions.
pub trait DeviceAdapter: Send + Sync {
    fn info(&self) -> AdapterInfo;

    /// Execute the Group Execution Model: `groups` independent groups,
    /// each invoked exactly once with `staging_bytes` of exclusive
    /// scratch ("faster memory tier" in paper Fig. 3), initialized per
    /// `policy` (see [`ScratchPolicy`] for the dirty-scratch contract).
    ///
    /// A panicking group body is reported as
    /// [`HpdrError::WorkerPanic`](crate::HpdrError::WorkerPanic) with the
    /// failing group index; the adapter (and the pool beneath it) remain
    /// usable afterwards.
    fn try_gem(
        &self,
        groups: usize,
        staging_bytes: usize,
        policy: ScratchPolicy,
        body: &(dyn Fn(usize, &mut [u8]) + Sync),
    ) -> Result<()>;

    /// Execute one Domain Execution Model stage: a global parallel-for
    /// over `n` items. Returning implies a whole-domain barrier. Panics
    /// in the body surface as `HpdrError::WorkerPanic` (see
    /// [`DeviceAdapter::try_gem`]).
    fn try_dem(&self, n: usize, body: &(dyn Fn(usize) + Sync)) -> Result<()>;

    /// Infallible GEM with [`ScratchPolicy::Zeroed`] staging — the
    /// historical API. Re-raises worker panics on the calling thread.
    fn gem(&self, groups: usize, staging_bytes: usize, body: &(dyn Fn(usize, &mut [u8]) + Sync)) {
        if let Err(e) = self.try_gem(groups, staging_bytes, ScratchPolicy::Zeroed, body) {
            panic!("{e}");
        }
    }

    /// Infallible DEM — the historical API. Re-raises worker panics on
    /// the calling thread.
    fn dem(&self, n: usize, body: &(dyn Fn(usize) + Sync)) {
        if let Err(e) = self.try_dem(n, body) {
            panic!("{e}");
        }
    }

    /// Charge the virtual cost of one reduction kernel over `bytes` of
    /// input. No-op on real-time (CPU) adapters.
    fn charge(&self, class: KernelClass, bytes: u64);

    /// Reset the adapter's kernel clock (virtual or wall, see
    /// [`DeviceAdapter::uses_virtual_time`]).
    fn clock_reset(&self);

    /// Time elapsed on the kernel clock since the last reset.
    fn clock_elapsed(&self) -> Ns;

    /// Whether [`DeviceAdapter::clock_elapsed`] reports virtual time.
    fn uses_virtual_time(&self) -> bool {
        false
    }

    /// The kernel charges recorded since construction, in call order.
    /// Empty on adapters that don't keep a log (the CPU adapters charge
    /// nothing).
    fn kernel_log(&self) -> Vec<KernelCharge> {
        Vec::new()
    }
}

/// Wall-clock implementation shared by the CPU adapters.
#[derive(Debug)]
pub(crate) struct WallClock {
    start: Mutex<Instant>,
}

impl WallClock {
    pub(crate) fn new() -> WallClock {
        WallClock {
            start: Mutex::new(Instant::now()),
        }
    }
    pub(crate) fn reset(&self) {
        *self.start.lock() = Instant::now();
    }
    pub(crate) fn elapsed(&self) -> Ns {
        Ns(self.start.lock().elapsed().as_nanos() as u64)
    }
}

/// Single-core reference adapter — the maximally-compatible processor the
/// paper says users fall back to without portability support.
pub struct SerialAdapter {
    name: String,
    clock: WallClock,
}

impl SerialAdapter {
    pub fn new() -> SerialAdapter {
        SerialAdapter {
            name: "serial-cpu".to_string(),
            clock: WallClock::new(),
        }
    }
}

impl Default for SerialAdapter {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceAdapter for SerialAdapter {
    fn info(&self) -> AdapterInfo {
        AdapterInfo {
            device: self.name.clone(),
            kind: AdapterKind::Serial,
            threads: 1,
        }
    }

    fn try_gem(
        &self,
        groups: usize,
        staging_bytes: usize,
        policy: ScratchPolicy,
        body: &(dyn Fn(usize, &mut [u8]) + Sync),
    ) -> Result<()> {
        WorkerPool::global()
            .run_with_scratch(
                1,
                groups,
                staging_bytes,
                policy == ScratchPolicy::Zeroed,
                body,
            )
            .map_err(Into::into)
    }

    fn try_dem(&self, n: usize, body: &(dyn Fn(usize) + Sync)) -> Result<()> {
        WorkerPool::global()
            .run(1, n, usize::MAX, body)
            .map_err(Into::into)
    }

    fn charge(&self, _class: KernelClass, _bytes: u64) {}

    fn clock_reset(&self) {
        self.clock.reset();
    }

    fn clock_elapsed(&self) -> Ns {
        self.clock.elapsed()
    }
}

/// Multi-core CPU adapter — the Table II "OMP" column: groups are
/// parallelized across cores, each group's workload runs sequentially on
/// its core (exploiting cache locality within the group); DEM stages
/// parallelize the whole domain across all cores.
pub struct CpuParallelAdapter {
    name: String,
    threads: usize,
    /// Dynamic-schedule grain for DEM loops.
    grain: usize,
    clock: WallClock,
}

impl CpuParallelAdapter {
    pub fn new(threads: usize) -> CpuParallelAdapter {
        CpuParallelAdapter {
            name: format!("cpu-{threads}core"),
            threads: threads.max(1),
            grain: 1024,
            clock: WallClock::new(),
        }
    }

    pub fn with_defaults() -> CpuParallelAdapter {
        Self::new(crate::pool::default_threads())
    }

    pub fn named(mut self, name: &str) -> CpuParallelAdapter {
        self.name = name.to_string();
        self
    }
}

impl DeviceAdapter for CpuParallelAdapter {
    fn info(&self) -> AdapterInfo {
        AdapterInfo {
            device: self.name.clone(),
            kind: AdapterKind::CpuParallel,
            threads: self.threads,
        }
    }

    fn try_gem(
        &self,
        groups: usize,
        staging_bytes: usize,
        policy: ScratchPolicy,
        body: &(dyn Fn(usize, &mut [u8]) + Sync),
    ) -> Result<()> {
        WorkerPool::global()
            .run_with_scratch(
                self.threads,
                groups,
                staging_bytes,
                policy == ScratchPolicy::Zeroed,
                body,
            )
            .map_err(Into::into)
    }

    fn try_dem(&self, n: usize, body: &(dyn Fn(usize) + Sync)) -> Result<()> {
        WorkerPool::global()
            .run(self.threads, n, self.grain, body)
            .map_err(Into::into)
    }

    fn charge(&self, _class: KernelClass, _bytes: u64) {}

    fn clock_reset(&self) {
        self.clock.reset();
    }

    fn clock_elapsed(&self) -> Ns {
        self.clock.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn exercise(adapter: &dyn DeviceAdapter) {
        // GEM: all groups run once with zeroed staging.
        let count = AtomicUsize::new(0);
        adapter.gem(17, 32, &|_, staging| {
            assert_eq!(staging.len(), 32);
            assert!(staging.iter().all(|&b| b == 0));
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
        // DEM: all items run once.
        let count = AtomicUsize::new(0);
        adapter.dem(1000, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn serial_adapter_executes_models() {
        let a = SerialAdapter::new();
        exercise(&a);
        assert_eq!(a.info().threads, 1);
        assert!(!a.uses_virtual_time());
    }

    #[test]
    fn cpu_adapter_executes_models() {
        let a = CpuParallelAdapter::new(4);
        exercise(&a);
        assert_eq!(a.info().threads, 4);
        assert_eq!(a.info().kind, AdapterKind::CpuParallel);
    }

    #[test]
    fn wall_clock_advances() {
        let a = SerialAdapter::new();
        a.clock_reset();
        std::hint::black_box((0..100_000).sum::<u64>());
        assert!(a.clock_elapsed() > Ns::ZERO);
    }

    #[test]
    fn try_gem_propagates_panic_and_stays_usable() {
        let a = CpuParallelAdapter::new(4);
        let err = a
            .try_gem(16, 8, ScratchPolicy::Zeroed, &|g, _| {
                if g == 3 {
                    panic!("injected");
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            crate::HpdrError::WorkerPanic { group: 3, .. }
        ));
        // Adapter still fully functional afterwards.
        exercise(&a);
    }

    #[test]
    fn try_dem_propagates_panic() {
        let a = SerialAdapter::new();
        let err = a
            .try_dem(10, &|i| {
                if i == 7 {
                    panic!("dem failure");
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            crate::HpdrError::WorkerPanic { group: 7, .. }
        ));
    }

    #[test]
    fn dirty_policy_skips_zeroing_on_serial() {
        let a = SerialAdapter::new();
        // Serial adapter runs groups in order on one participant, so the
        // dirty arena deterministically carries the previous group's fill.
        a.try_gem(4, 8, ScratchPolicy::Dirty, &|g, st| {
            if g > 0 {
                assert!(st.iter().all(|&b| b == g as u8));
            }
            st.fill(g as u8 + 1);
        })
        .expect("dirty gem");
    }

    #[test]
    fn kind_names() {
        assert_eq!(AdapterKind::Serial.name(), "serial");
        assert_eq!(AdapterKind::CpuParallel.name(), "openmp");
        assert_eq!(AdapterKind::CudaSim.name(), "cuda-sim");
        assert_eq!(AdapterKind::HipSim.name(), "hip-sim");
    }
}
