//! Simulated GPU device adapter (the CUDA/HIP rows of paper Table II).
//!
//! Kernels run for real on host worker threads — groups map to simulated
//! SMs/CUs, staging maps to shared memory — while a virtual clock
//! accumulates calibrated kernel time from the device's
//! [`hpdr_sim::DeviceSpec`]. Standalone kernel throughput measurements
//! (paper Fig. 12) read this virtual clock; pipelined execution instead
//! charges the same cost model through `hpdr-sim` ops so overlap is
//! modeled device-wide.

use crate::adapter::{AdapterInfo, AdapterKind, DeviceAdapter, KernelCharge, ScratchPolicy};
use crate::error::Result;
use crate::pool::{default_threads, WorkerPool};
use hpdr_sim::{Arch, DeviceSpec, KernelClass, Ns};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Device adapter backed by a simulated GPU.
pub struct GpuSimAdapter {
    spec: DeviceSpec,
    threads: usize,
    accumulated: AtomicU64,
    mark: AtomicU64,
    charges: AtomicU64,
    log: Mutex<Vec<KernelCharge>>,
}

impl GpuSimAdapter {
    pub fn new(spec: DeviceSpec) -> GpuSimAdapter {
        GpuSimAdapter {
            spec,
            threads: default_threads(),
            accumulated: AtomicU64::new(0),
            mark: AtomicU64::new(0),
            charges: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    pub fn with_threads(mut self, threads: usize) -> GpuSimAdapter {
        self.threads = threads.max(1);
        self
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Number of kernel charges since construction (diagnostics).
    pub fn charge_count(&self) -> u64 {
        self.charges.load(Ordering::Relaxed)
    }

    /// Total virtual kernel time since construction.
    pub fn total_virtual(&self) -> Ns {
        Ns(self.accumulated.load(Ordering::Relaxed))
    }
}

impl DeviceAdapter for GpuSimAdapter {
    fn info(&self) -> AdapterInfo {
        AdapterInfo {
            device: self.spec.name.to_string(),
            kind: match self.spec.arch {
                Arch::CudaSim => AdapterKind::CudaSim,
                Arch::HipSim => AdapterKind::HipSim,
            },
            threads: self.threads,
        }
    }

    fn try_gem(
        &self,
        groups: usize,
        staging_bytes: usize,
        policy: ScratchPolicy,
        body: &(dyn Fn(usize, &mut [u8]) + Sync),
    ) -> Result<()> {
        // Groups → SMs/CUs; staging → shared memory (Table II).
        WorkerPool::global()
            .run_with_scratch(
                self.threads,
                groups,
                staging_bytes,
                policy == ScratchPolicy::Zeroed,
                body,
            )
            .map_err(Into::into)
    }

    fn try_dem(&self, n: usize, body: &(dyn Fn(usize) + Sync)) -> Result<()> {
        // Whole domain across all cores; returning = grid sync.
        WorkerPool::global()
            .run(self.threads, n, 1024, body)
            .map_err(Into::into)
    }

    fn charge(&self, class: KernelClass, bytes: u64) {
        let dur = self.spec.kernel_duration(class, bytes);
        self.accumulated.fetch_add(dur.0, Ordering::Relaxed);
        self.charges.fetch_add(1, Ordering::Relaxed);
        self.log.lock().push(KernelCharge { class, bytes, dur });
    }

    fn clock_reset(&self) {
        self.mark
            .store(self.accumulated.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn clock_elapsed(&self) -> Ns {
        Ns(self.accumulated.load(Ordering::Relaxed) - self.mark.load(Ordering::Relaxed))
    }

    fn uses_virtual_time(&self) -> bool {
        true
    }

    fn kernel_log(&self) -> Vec<KernelCharge> {
        self.log.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::spec::{a100, v100};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn virtual_clock_accumulates_charges() {
        let a = GpuSimAdapter::new(v100());
        a.clock_reset();
        a.charge(KernelClass::Zfp, 1 << 26);
        let expect = v100().kernel_duration(KernelClass::Zfp, 1 << 26);
        assert_eq!(a.clock_elapsed(), expect);
        a.charge(KernelClass::Zfp, 1 << 26);
        assert_eq!(a.clock_elapsed(), Ns(expect.0 * 2));
        assert_eq!(a.charge_count(), 2);
    }

    #[test]
    fn clock_reset_zeroes_elapsed_not_total() {
        let a = GpuSimAdapter::new(v100());
        a.charge(KernelClass::Mgard, 1 << 20);
        a.clock_reset();
        assert_eq!(a.clock_elapsed(), Ns::ZERO);
        assert!(a.total_virtual() > Ns::ZERO);
    }

    #[test]
    fn executes_real_work() {
        let a = GpuSimAdapter::new(a100()).with_threads(4);
        let count = AtomicUsize::new(0);
        a.gem(32, 64, &|_, st| {
            assert_eq!(st.len(), 64);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
        let count = AtomicUsize::new(0);
        a.dem(5000, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn reports_virtual_time_and_arch() {
        let a = GpuSimAdapter::new(v100());
        assert!(a.uses_virtual_time());
        assert_eq!(a.info().kind, AdapterKind::CudaSim);
        let h = GpuSimAdapter::new(hpdr_sim::spec::mi250x());
        assert_eq!(h.info().kind, AdapterKind::HipSim);
    }

    #[test]
    fn kernel_log_records_charges_in_order() {
        let a = GpuSimAdapter::new(v100());
        a.charge(KernelClass::Mgard, 1 << 20);
        a.charge(KernelClass::Huffman, 1 << 16);
        let log = a.kernel_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].class, KernelClass::Mgard);
        assert_eq!(log[0].bytes, 1 << 20);
        assert_eq!(
            log[0].dur,
            v100().kernel_duration(KernelClass::Mgard, 1 << 20)
        );
        assert_eq!(log[1].class, KernelClass::Huffman);
        // CPU adapters keep no log.
        assert!(crate::SerialAdapter::new().kernel_log().is_empty());
    }

    #[test]
    fn virtual_throughput_matches_model_at_saturation() {
        let a = GpuSimAdapter::new(a100());
        let bytes = 512u64 << 20; // well past saturation
        a.clock_reset();
        a.charge(KernelClass::Huffman, bytes);
        let t = a.clock_elapsed();
        let gbps = bytes as f64 / t.0 as f64;
        let model = a100().kernel_model(KernelClass::Huffman).saturated_gbps;
        assert!(
            (gbps - model).abs() / model < 0.02,
            "got {gbps} want {model}"
        );
    }
}
