//! Little-endian binary serialization helpers.
//!
//! All HPDR stream formats are fixed little-endian so compressed data is
//! portable across architectures — part of the paper's portability claim.

use crate::error::{HpdrError, Result};

/// Append-only little-endian writer over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    /// Length-prefixed byte block (u64 length).
    pub fn put_block(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.put_bytes(v);
    }
    /// Length-prefixed UTF-8 string (u32 length).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.put_bytes(s.as_bytes());
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// A `u32` magic + `u8` version frame shared by the HPDR container
/// formats (MGARD-X streams, refactor containers, BP metadata indices,
/// the progressive component manifest). Each format declares one
/// constant `FrameHeader` and uses it on both sides, so the framing —
/// and the corruption error wording — stays identical everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub magic: u32,
    pub version: u8,
    /// Container family name used in error messages ("refactor", …).
    pub what: &'static str,
}

impl FrameHeader {
    pub const fn new(magic: u32, version: u8, what: &'static str) -> FrameHeader {
        FrameHeader {
            magic,
            version,
            what,
        }
    }

    /// Number of bytes the frame occupies at the head of a stream.
    pub const LEN: usize = 5;

    /// Emit the magic + version prefix.
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_u32(self.magic);
        w.put_u8(self.version);
    }

    /// Consume and check the prefix, distinguishing a foreign stream
    /// (bad magic) from a future format revision (bad version).
    pub fn read(&self, r: &mut ByteReader<'_>) -> Result<()> {
        if r.get_u32()? != self.magic {
            return Err(HpdrError::corrupt(format!("bad {} magic", self.what)));
        }
        if r.get_u8()? != self.version {
            return Err(HpdrError::corrupt(format!(
                "unsupported {} version",
                self.what
            )));
        }
        Ok(())
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.pos + n > self.buf.len() {
            Err(HpdrError::corrupt(format!(
                "unexpected end of stream at offset {} (need {} of {} bytes)",
                self.pos,
                n,
                self.buf.len()
            )))
        } else {
            Ok(())
        }
    }

    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    pub fn get_u16(&mut self) -> Result<u16> {
        self.need(2)?;
        let v = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        Ok(v)
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a u64-length-prefixed block (with a sanity cap against
    /// maliciously-huge lengths in corrupt streams).
    pub fn get_block(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u64()? as usize;
        if n > self.remaining() {
            return Err(HpdrError::corrupt(format!(
                "block length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        self.get_bytes(n)
    }

    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_u32()? as usize;
        let bytes = self.get_bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| HpdrError::corrupt("invalid utf-8 in string field"))
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the stream was fully consumed.
    pub fn expect_exhausted(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(HpdrError::corrupt(format!(
                "{} trailing bytes after stream end",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_str("hpdr");
        w.put_block(&[1, 2, 3]);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.get_str().unwrap(), "hpdr");
        assert_eq!(r.get_block().unwrap(), &[1, 2, 3]);
        assert!(r.expect_exhausted().is_ok());
    }

    #[test]
    fn underflow_errors() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf);
        assert!(r.get_u64().is_err());
        assert_eq!(r.get_u16().unwrap(), 0x0201);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn oversized_block_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(1 << 50); // lies about length
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(r.get_block().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [0u8; 3];
        let mut r = ByteReader::new(&buf);
        r.get_u8().unwrap();
        assert!(r.expect_exhausted().is_err());
    }

    #[test]
    fn frame_header_roundtrip_and_rejections() {
        const FRAME: FrameHeader = FrameHeader::new(0xABCD_0102, 3, "test");
        let mut w = ByteWriter::new();
        FRAME.write(&mut w);
        w.put_u8(9);
        let buf = w.into_vec();
        assert_eq!(buf.len(), FrameHeader::LEN + 1);
        let mut r = ByteReader::new(&buf);
        FRAME.read(&mut r).unwrap();
        assert_eq!(r.get_u8().unwrap(), 9);

        // Wrong magic names the family.
        let mut r = ByteReader::new(&buf);
        let err = FrameHeader::new(0xABCD_0103, 3, "test")
            .read(&mut r)
            .unwrap_err();
        assert!(err.to_string().contains("bad test magic"), "{err}");
        // Wrong version is a distinct error.
        let mut r = ByteReader::new(&buf);
        let err = FrameHeader::new(0xABCD_0102, 4, "test")
            .read(&mut r)
            .unwrap_err();
        assert!(
            err.to_string().contains("unsupported test version"),
            "{err}"
        );
        // Truncated stream fails cleanly.
        let mut r = ByteReader::new(&buf[..3]);
        assert!(FRAME.read(&mut r).is_err());
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(r.get_str().is_err());
    }
}
