//! # hpdr-core — the HPDR framework layers
//!
//! Implements the three bottom layers of the HPDR stack (paper Fig. 2):
//!
//! 1. **Parallelization abstractions** ([`abstractions`]): Locality,
//!    Iterative, Map&Process, Global-Pipeline — the vocabulary reduction
//!    algorithms are written in.
//! 2. **Machine abstraction**: the Group and Domain Execution Models are
//!    the two entry points of the [`adapter::DeviceAdapter`] trait; the
//!    Context Memory Model lives in [`cmm`]. (The Host-Device Execution
//!    Model is the `hpdr-pipeline` crate.)
//! 3. **Device adapters** ([`adapter`], [`gpu_sim`]): Serial,
//!    CPU-parallel (OpenMP analogue) and simulated CUDA/HIP devices.
//!
//! Plus the shared plumbing every algorithm crate needs: scalar/type
//! abstractions ([`float`]), shapes ([`shape`]), little-endian stream I/O
//! ([`bytesio`]), disjoint-write shared slices ([`shared`]) and the error
//! type ([`error`]).

pub mod abstractions;
pub mod adapter;
pub mod bytesio;
pub mod cmm;
pub mod error;
pub mod float;
pub mod gpu_sim;
pub mod pool;
pub mod reducer;
pub mod shape;
pub mod shared;

pub use abstractions::{global_pipeline, GlobalStage, Iterative, Locality, MapAndProcess};
pub use adapter::{
    AdapterInfo, AdapterKind, CpuParallelAdapter, DeviceAdapter, KernelCharge, ScratchPolicy,
    SerialAdapter,
};
pub use bytesio::{ByteReader, ByteWriter, FrameHeader};
pub use cmm::{fnv1a, CmmStats, ContextCache, ContextKey};
pub use error::{HpdrError, Result};
pub use float::{DType, Float};
pub use gpu_sim::GpuSimAdapter;
pub use pool::{PoolPanic, PoolStats, WorkerPool};
pub use reducer::Reducer;
pub use shape::{ArrayMeta, Shape};
pub use shared::SharedSlice;

// Re-exported so algorithm crates can charge kernel costs without a
// direct hpdr-sim dependency.
pub use hpdr_sim::{KernelClass, Ns};
