//! Persistent worker pool shared by every CPU-executing device adapter.
//!
//! The original implementation opened a fresh `crossbeam::thread::scope`
//! per GEM/DEM stage — an OS-thread spawn + join on *every* stage
//! invocation, hundreds of times per multi-chunk pipeline. This module
//! replaces that with a process-wide pool of long-lived workers woken
//! through a `parking_lot` mutex/condvar pair:
//!
//! * **Dynamic chunked scheduling is preserved** — participants pull
//!   `grain`-sized chunks off a shared atomic counter, the OpenMP
//!   `schedule(dynamic, grain)` analogue, exactly as before.
//! * **Scratch arenas persist** — each worker owns one reusable staging
//!   buffer (the GEM "faster memory tier"), grown on demand and re-zeroed
//!   per group only when the caller asks for [`zeroed`] semantics. The
//!   old code allocated *and* zero-filled a fresh buffer per worker per
//!   call.
//! * **Panics propagate as values** — a panicking body poisons the job
//!   (remaining chunks are abandoned), and the submitter gets back
//!   [`PoolPanic`] with the failing group index instead of the process
//!   aborting through a bare `.expect`. The pool stays reusable.
//!
//! # How borrowed bodies stay sound
//!
//! Pool workers are `'static` threads but stage bodies capture locals by
//! reference. The borrow's lifetime is erased into a raw trait-object
//! pointer ([`BodyPtr`]) when a job is published; soundness rests on one
//! invariant: **the submitting thread does not return from
//! [`WorkerPool::run`]/[`WorkerPool::run_with_scratch`] until every
//! participant has finished executing the job** (it blocks until the
//! job's `active` count reaches zero). Workers never touch a job after
//! decrementing `active`, so no erased pointer outlives the borrow it
//! came from. This is the same reasoning `crossbeam::scope` encodes in
//! its API, applied to a single always-alive pool — and the reason this
//! file is one of the workspace's few sanctioned `unsafe` islands.
//!
//! Nested or contended submissions (a body that itself calls into the
//! pool, or two threads submitting at once) execute inline on the calling
//! thread — dynamic scheduling makes that a pure performance fallback,
//! never a correctness change, and it keeps the single-job-slot design
//! deadlock-free.
//!
//! [`zeroed`]: WorkerPool::run_with_scratch

#![allow(unsafe_code)]

use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Number of workers to use by default (logical cores).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A panic captured inside a pool worker, returned to the submitter as a
/// structured error instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// Index (DEM item or GEM group) whose body panicked.
    pub group: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker body panicked at group {}: {}",
            self.group, self.message
        )
    }
}

impl std::error::Error for PoolPanic {}

/// Cumulative pool activity counters (monotonic since pool creation).
///
/// Consumers snapshot before/after a region and diff with
/// [`PoolStats::since`]; the pipeline runner records the delta into trace
/// runtime stats so `hpdr profile` can report scheduler behaviour next to
/// virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted (one per GEM/DEM stage invocation).
    pub jobs: u64,
    /// Times a pooled worker woke up and joined a job.
    pub wakeups: u64,
    /// Chunks claimed off job counters (by workers and submitters).
    pub tasks: u64,
    /// Participations that reused an already-large-enough scratch arena.
    pub scratch_reuses: u64,
    /// Participations that had to grow a scratch arena.
    pub scratch_allocs: u64,
}

impl PoolStats {
    /// Component-wise difference against an earlier snapshot.
    pub fn since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            scratch_reuses: self.scratch_reuses.saturating_sub(earlier.scratch_reuses),
            scratch_allocs: self.scratch_allocs.saturating_sub(earlier.scratch_allocs),
        }
    }

    /// Fraction of scratch-arena participations that reused an existing
    /// arena instead of growing one (1.0 when no participations — no
    /// allocation pressure).
    pub fn scratch_reuse_ratio(self) -> f64 {
        let total = self.scratch_reuses + self.scratch_allocs;
        if total == 0 {
            1.0
        } else {
            self.scratch_reuses as f64 / total as f64
        }
    }
}

/// Lifetime-erased pointer to a stage body. See the module docs for the
/// invariant that keeps dereferencing these sound.
#[derive(Clone, Copy)]
enum BodyPtr {
    Plain(*const (dyn Fn(usize) + Sync)),
    Scratch(*const (dyn Fn(usize, &mut [u8]) + Sync)),
}

/// One published unit of work. Lives in the dispatch slot while workers
/// may still join, and in each participant's hand (via `Arc`) while they
/// execute.
struct Job {
    body: BodyPtr,
    n: usize,
    grain: usize,
    scratch_bytes: usize,
    zero_scratch: bool,
    /// Next un-claimed index (dynamic schedule counter).
    next: AtomicUsize,
    /// Participants currently executing this job.
    active: AtomicUsize,
    /// Set on first panic; stops further chunk claims.
    poisoned: AtomicBool,
    panic: Mutex<Option<PoolPanic>>,
}

// SAFETY: `Job` is shared across threads only between publication and the
// submitter's final `active == 0` wait, during which the erased body
// borrow is alive (module-docs invariant). The bodies themselves are
// `Sync`, so concurrent invocation is sound.
unsafe impl Send for Job {}
// SAFETY: see the `Send` justification above.
unsafe impl Sync for Job {}

#[derive(Default)]
struct Dispatch {
    /// The single job slot. One queued job at a time; contended
    /// submissions run inline instead.
    job: Option<Arc<Job>>,
    /// Bumped per published job so a worker joins each job at most once.
    seq: u64,
    /// Remaining worker join slots for the current job.
    joiners_left: usize,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    disp: Mutex<Dispatch>,
    /// Workers park here waiting for a job (or shutdown).
    work_cv: Condvar,
    /// Submitters park here waiting for their job's participants.
    idle_cv: Condvar,
    jobs: AtomicU64,
    wakeups: AtomicU64,
    tasks: AtomicU64,
    scratch_reuses: AtomicU64,
    scratch_allocs: AtomicU64,
}

std::thread_local! {
    /// True on pool worker threads; nested submissions from a worker run
    /// inline (joining the pool again would deadlock the single slot).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// The submitting thread's persistent scratch arena (workers each own
    /// one in their loop; submitters participate too and need their own).
    static SUBMIT_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Participate in `job`: pull chunks until the counter is drained or the
/// job is poisoned. Shared by workers and submitting threads.
fn execute(shared: &Shared, job: &Job, scratch: &mut Vec<u8>) {
    let want = job.scratch_bytes;
    if matches!(job.body, BodyPtr::Scratch(_)) {
        if scratch.len() < want {
            // `resize` zero-fills the grown tail, so even `Dirty` callers
            // see deterministic zeros on a fresh arena.
            scratch.resize(want, 0);
            shared.scratch_allocs.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.scratch_reuses.fetch_add(1, Ordering::Relaxed);
        }
    }
    while !job.poisoned.load(Ordering::Relaxed) {
        let start = job.next.fetch_add(job.grain, Ordering::Relaxed);
        if start >= job.n {
            break;
        }
        let end = start.saturating_add(job.grain).min(job.n);
        shared.tasks.fetch_add(1, Ordering::Relaxed);
        // Tracks the in-flight index so a panic can report *which* group
        // failed without a catch_unwind per element.
        let current = Cell::new(start);
        let result = catch_unwind(AssertUnwindSafe(|| match job.body {
            BodyPtr::Plain(p) => {
                // SAFETY: the submitter blocks until `active == 0` before
                // returning, so the borrow behind `p` is alive for the
                // whole participation (module-docs invariant).
                let f = unsafe { &*p };
                while current.get() < end {
                    f(current.get());
                    current.set(current.get() + 1);
                }
            }
            BodyPtr::Scratch(p) => {
                // SAFETY: as above.
                let f = unsafe { &*p };
                while current.get() < end {
                    let slice = &mut scratch[..want];
                    if job.zero_scratch {
                        slice.fill(0);
                    }
                    f(current.get(), slice);
                    current.set(current.get() + 1);
                }
            }
        }));
        if let Err(payload) = result {
            job.poisoned.store(true, Ordering::Relaxed);
            let mut slot = job.panic.lock();
            if slot.is_none() {
                *slot = Some(PoolPanic {
                    group: current.get(),
                    message: panic_message(payload.as_ref()),
                });
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_POOL.with(|f| f.set(true));
    let mut scratch: Vec<u8> = Vec::new();
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut d = shared.disp.lock();
            loop {
                if d.shutdown {
                    return;
                }
                if let Some(job) = d.job.as_ref().map(Arc::clone) {
                    if d.seq != last_seq {
                        last_seq = d.seq;
                        if d.joiners_left > 0 {
                            d.joiners_left -= 1;
                            job.active.fetch_add(1, Ordering::AcqRel);
                            break job;
                        }
                    }
                }
                shared.work_cv.wait(&mut d);
            }
        };
        shared.wakeups.fetch_add(1, Ordering::Relaxed);
        execute(&shared, &job, &mut scratch);
        if job.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Lock/unlock pairs this notify with the submitter's
            // check-then-wait so the wakeup cannot be lost.
            drop(shared.disp.lock());
            shared.idle_cv.notify_all();
        }
    }
}

/// A persistent pool of `threads - 1` workers (the submitting thread is
/// always the remaining participant). Most callers want the process-wide
/// [`WorkerPool::global`] instance; dedicated pools exist for tests and
/// benchmarks.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Build a pool with capacity for `threads` total participants
    /// (spawning `threads - 1` workers).
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(Shared::default());
        let handles = (0..threads.max(1) - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hpdr-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn hpdr pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// The process-wide pool, sized to [`default_threads`] on first use.
    /// All device adapters dispatch through this instance.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
    }

    /// Number of spawned worker threads (total parallelism is one more:
    /// the submitter always participates).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Snapshot of the cumulative activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            scratch_reuses: self.shared.scratch_reuses.load(Ordering::Relaxed),
            scratch_allocs: self.shared.scratch_allocs.load(Ordering::Relaxed),
        }
    }

    /// Dynamic-schedule parallel for: invoke `body(i)` for every
    /// `i in 0..n` on up to `workers` participants, `grain` indices per
    /// claim. Returns the first captured panic, if any, once **all**
    /// participants have stopped (the pool remains reusable).
    pub fn run(
        &self,
        workers: usize,
        n: usize,
        grain: usize,
        body: &(dyn Fn(usize) + Sync),
    ) -> Result<(), PoolPanic> {
        // SAFETY: lifetime erasure only — same fat-pointer layout; the
        // submit/wait protocol keeps the borrow alive (module docs).
        let erased = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                body,
            )
        };
        self.submit(workers, n, grain, 0, false, BodyPtr::Plain(erased))
    }

    /// GEM-style parallel for with persistent per-worker scratch arenas.
    /// Each group id `0..groups` runs exactly once with `scratch_bytes`
    /// of staging exclusive to its worker for the duration of the body.
    ///
    /// When `zero_scratch` is true every group observes zeroed staging;
    /// when false the arena is handed over *dirty* (whatever the worker's
    /// previous group left there — deterministic zeros only on a freshly
    /// grown arena). See `DeviceAdapter::try_gem` for the contract.
    pub fn run_with_scratch(
        &self,
        workers: usize,
        groups: usize,
        scratch_bytes: usize,
        zero_scratch: bool,
        body: &(dyn Fn(usize, &mut [u8]) + Sync),
    ) -> Result<(), PoolPanic> {
        // SAFETY: lifetime erasure only, as in `run`.
        let erased = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, &mut [u8]) + Sync + '_),
                *const (dyn Fn(usize, &mut [u8]) + Sync),
            >(body)
        };
        self.submit(
            workers,
            groups,
            1,
            scratch_bytes,
            zero_scratch,
            BodyPtr::Scratch(erased),
        )
    }

    fn submit(
        &self,
        workers: usize,
        n: usize,
        grain: usize,
        scratch_bytes: usize,
        zero_scratch: bool,
        body: BodyPtr,
    ) -> Result<(), PoolPanic> {
        if n == 0 {
            return Ok(());
        }
        let grain = grain.max(1).min(n);
        let participants = workers.clamp(1, n.div_ceil(grain));
        self.shared.jobs.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            body,
            n,
            grain,
            scratch_bytes,
            zero_scratch,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        // Publish to workers unless this is a serial job, a nested call
        // from a worker, or the slot is already taken (inline fallback —
        // see module docs).
        let published =
            participants > 1 && !self.handles.is_empty() && !IN_POOL.with(Cell::get) && {
                let mut d = self.shared.disp.lock();
                if d.job.is_none() && !d.shutdown {
                    d.seq = d.seq.wrapping_add(1);
                    d.joiners_left = participants - 1;
                    d.job = Some(Arc::clone(&job));
                    self.shared.work_cv.notify_all();
                    true
                } else {
                    false
                }
            };
        // The submitter always participates (taking its thread-local
        // arena out so a nested inline submit sees an empty slot instead
        // of a RefCell conflict).
        let mut scratch = SUBMIT_SCRATCH.with(|c| std::mem::take(&mut *c.borrow_mut()));
        execute(&self.shared, &job, &mut scratch);
        SUBMIT_SCRATCH.with(|c| *c.borrow_mut() = scratch);
        if published {
            let mut d = self.shared.disp.lock();
            if d.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
                d.job = None;
                d.joiners_left = 0;
            }
            // The borrow behind `body` must outlive every participant:
            // block until the last one leaves.
            while job.active.load(Ordering::Acquire) > 0 {
                self.shared.idle_cv.wait(&mut d);
            }
        }
        let captured = job.panic.lock().take();
        match captured {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut d = self.shared.disp.lock();
            d.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Dynamic-schedule parallel for on the [global](WorkerPool::global)
/// pool. Re-raises captured worker panics on the calling thread (callers
/// that want them as values use [`WorkerPool::run`]).
pub fn parallel_for(threads: usize, n: usize, grain: usize, body: &(dyn Fn(usize) + Sync)) {
    if let Err(p) = WorkerPool::global().run(threads, n, grain, body) {
        panic!("{p}");
    }
}

/// Parallel for with zeroed per-worker scratch (the GEM "staging"
/// memory) on the [global](WorkerPool::global) pool. Re-raises captured
/// worker panics; see [`WorkerPool::run_with_scratch`] for the
/// value-returning, dirty-scratch-capable form.
pub fn parallel_for_with_scratch(
    threads: usize,
    groups: usize,
    scratch_bytes: usize,
    body: &(dyn Fn(usize, &mut [u8]) + Sync),
) {
    if let Err(p) =
        WorkerPool::global().run_with_scratch(threads, groups, scratch_bytes, true, body)
    {
        panic!("{p}");
    }
}

/// The pre-pool reference implementation: spawn-per-call over a fresh
/// `crossbeam::thread::scope`. Kept as the baseline `hpdr bench`
/// measures the persistent pool against; not used by any adapter.
pub fn spawning_parallel_for(
    threads: usize,
    n: usize,
    grain: usize,
    body: &(dyn Fn(usize) + Sync),
) {
    let grain = grain.max(1);
    if n == 0 {
        return;
    }
    let workers = threads.clamp(1, n.div_ceil(grain));
    if workers == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let start = next.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + grain).min(n);
                for i in start..end {
                    body(i);
                }
            });
        }
    })
    .expect("worker panicked in spawning_parallel_for");
}

/// Spawn-per-call GEM baseline (fresh scratch per worker per call) —
/// the allocation behaviour this PR removed; kept for benchmarking.
pub fn spawning_parallel_for_with_scratch(
    threads: usize,
    groups: usize,
    scratch_bytes: usize,
    body: &(dyn Fn(usize, &mut [u8]) + Sync),
) {
    if groups == 0 {
        return;
    }
    let workers = threads.clamp(1, groups);
    if workers == 1 {
        let mut scratch = vec![0u8; scratch_bytes];
        for g in 0..groups {
            scratch.fill(0);
            body(g, &mut scratch);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| {
                let mut scratch = vec![0u8; scratch_bytes];
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= groups {
                        break;
                    }
                    scratch.fill(0);
                    body(g, &mut scratch);
                }
            });
        }
    })
    .expect("worker panicked in spawning_parallel_for_with_scratch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_all_indices_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        parallel_for(4, 1000, 7, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_is_noop() {
        parallel_for(4, 0, 1, &|_| panic!("must not be called"));
        parallel_for_with_scratch(4, 0, 16, &|_, _| panic!("must not be called"));
    }

    #[test]
    fn single_thread_path() {
        let sum = AtomicU64::new(0);
        parallel_for(1, 10, 100, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn scratch_is_zeroed_per_group() {
        let bad = AtomicU64::new(0);
        parallel_for_with_scratch(3, 50, 8, &|g, scratch| {
            if scratch.iter().any(|&b| b != 0) {
                bad.fetch_add(1, Ordering::Relaxed);
            }
            scratch.fill(g as u8 + 1);
        });
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn groups_each_run_once() {
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        parallel_for_with_scratch(8, 64, 4, &|g, _| {
            hits[g].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn panic_returns_err_with_group_and_pool_stays_usable() {
        let pool = WorkerPool::new(4);
        let err = pool
            .run(4, 100, 1, &|i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
            })
            .unwrap_err();
        assert_eq!(err.group, 37);
        assert!(err.message.contains("boom"));
        // The same pool keeps working after the panic.
        let sum = AtomicU64::new(0);
        pool.run(4, 100, 8, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        })
        .expect("pool reusable after panic");
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn scratch_panic_reports_failing_group() {
        let pool = WorkerPool::new(2);
        let err = pool
            .run_with_scratch(2, 16, 8, true, &|g, _| {
                if g == 5 {
                    panic!("scratch group failure");
                }
            })
            .unwrap_err();
        assert_eq!(err.group, 5);
        pool.run_with_scratch(2, 16, 8, true, &|_, s| {
            assert!(s.iter().all(|&b| b == 0));
        })
        .expect("reusable");
    }

    #[test]
    fn dirty_scratch_skips_rezero_and_reuses_arena() {
        let pool = WorkerPool::new(1); // single participant: deterministic
        let before = pool.stats();
        pool.run_with_scratch(1, 4, 16, false, &|g, s| {
            if g == 0 {
                assert!(s.iter().all(|&b| b == 0), "fresh arena starts zeroed");
            } else {
                assert!(s.iter().all(|&b| b == g as u8), "dirty arena persists");
            }
            s.fill(g as u8 + 1);
        })
        .expect("dirty run");
        // Second call on the same thread reuses the grown arena.
        pool.run_with_scratch(1, 1, 16, false, &|_, s| {
            assert!(s.iter().all(|&b| b == 4), "arena survives across calls");
        })
        .expect("reuse run");
        let d = pool.stats().since(before);
        assert_eq!(d.jobs, 2);
        assert_eq!(d.scratch_allocs, 1, "one growth on first participation");
        assert_eq!(d.scratch_reuses, 1, "second call reuses");
    }

    #[test]
    fn nested_submission_runs_inline_without_deadlock() {
        let pool = WorkerPool::global();
        let total = AtomicU64::new(0);
        pool.run(4, 8, 1, &|_| {
            // Nested call from inside a body: must fall back inline.
            let inner = AtomicU64::new(0);
            WorkerPool::global()
                .run(4, 10, 1, &|j| {
                    inner.fetch_add(j as u64, Ordering::Relaxed);
                })
                .expect("nested run");
            total.fetch_add(inner.load(Ordering::Relaxed), Ordering::Relaxed);
        })
        .expect("outer run");
        assert_eq!(total.load(Ordering::Relaxed), 8 * 45);
    }

    #[test]
    fn stats_count_jobs_and_tasks() {
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        pool.run(2, 100, 10, &|_| {}).expect("run");
        let d = pool.stats().since(before);
        assert_eq!(d.jobs, 1);
        assert!(
            d.tasks >= 10,
            "at least n/grain chunk claims, got {}",
            d.tasks
        );
    }

    #[test]
    fn spawning_baselines_still_work() {
        let sum = AtomicU64::new(0);
        spawning_parallel_for(4, 100, 8, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        let hits: Vec<AtomicU64> = (0..32).map(|_| AtomicU64::new(0)).collect();
        spawning_parallel_for_with_scratch(4, 32, 8, &|g, s| {
            assert!(s.iter().all(|&b| b == 0));
            hits[g].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
