//! Worker-pool primitives used by the CPU device adapters.
//!
//! Work distribution is a chunked atomic-counter loop over scoped threads —
//! the OpenMP `schedule(dynamic, grain)` analogue. Scoped threads keep the
//! API borrow-friendly (bodies may capture locals by reference).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers to use by default (logical cores).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Dynamic-schedule parallel for: invoke `body(i)` for every `i in 0..n`
/// using up to `threads` workers, pulling `grain` indices at a time.
pub fn parallel_for(threads: usize, n: usize, grain: usize, body: &(dyn Fn(usize) + Sync)) {
    let grain = grain.max(1);
    if n == 0 {
        return;
    }
    let workers = threads.clamp(1, n.div_ceil(grain));
    if workers == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let start = next.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + grain).min(n);
                for i in start..end {
                    body(i);
                }
            });
        }
    })
    .expect("worker panicked in parallel_for");
}

/// Parallel for with per-worker scratch buffers (the GEM "staging" memory).
/// Each group id `0..groups` is executed exactly once by some worker; the
/// scratch is exclusive to the worker for the duration of the group body,
/// mirroring GPU shared memory / per-core cache staging (paper Table II).
pub fn parallel_for_with_scratch(
    threads: usize,
    groups: usize,
    scratch_bytes: usize,
    body: &(dyn Fn(usize, &mut [u8]) + Sync),
) {
    if groups == 0 {
        return;
    }
    let workers = threads.clamp(1, groups);
    if workers == 1 {
        let mut scratch = vec![0u8; scratch_bytes];
        for g in 0..groups {
            scratch.fill(0);
            body(g, &mut scratch);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| {
                let mut scratch = vec![0u8; scratch_bytes];
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= groups {
                        break;
                    }
                    scratch.fill(0);
                    body(g, &mut scratch);
                }
            });
        }
    })
    .expect("worker panicked in parallel_for_with_scratch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_all_indices_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        parallel_for(4, 1000, 7, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_is_noop() {
        parallel_for(4, 0, 1, &|_| panic!("must not be called"));
        parallel_for_with_scratch(4, 0, 16, &|_, _| panic!("must not be called"));
    }

    #[test]
    fn single_thread_path() {
        let sum = AtomicU64::new(0);
        parallel_for(1, 10, 100, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn scratch_is_zeroed_per_group() {
        let bad = AtomicU64::new(0);
        parallel_for_with_scratch(3, 50, 8, &|g, scratch| {
            if scratch.iter().any(|&b| b != 0) {
                bad.fetch_add(1, Ordering::Relaxed);
            }
            scratch.fill(g as u8 + 1);
        });
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn groups_each_run_once() {
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        parallel_for_with_scratch(8, 64, 4, &|g, _| {
            hits[g].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
